#include "core/session.hpp"

#include <cmath>
#include <stdexcept>

#include "core/serialize.hpp"

namespace pufatt::core {

const char* to_string(SessionStatus status) {
  switch (status) {
    case SessionStatus::kAccepted: return "accepted";
    case SessionStatus::kRejected: return "rejected";
    case SessionStatus::kTimeout: return "timeout";
    case SessionStatus::kTransportCorrupted: return "transport corrupted";
    case SessionStatus::kRetriesExhausted: return "retries exhausted";
  }
  return "?";
}

std::optional<VerifyStatus> SessionOutcome::last_verify() const {
  for (auto it = attempts.rbegin(); it != attempts.rend(); ++it) {
    if (it->verify) return it->verify;
  }
  return std::nullopt;
}

AttestationSession::AttestationSession(const Verifier& verifier,
                                       FaultyChannel& channel,
                                       const SessionPolicy& policy)
    : verifier_(&verifier), channel_(&channel), policy_(policy) {
  if (policy.max_attempts == 0) {
    throw std::invalid_argument("AttestationSession: zero attempts");
  }
  if (policy.response_timeout_us <= 0.0 || policy.backoff_base_us < 0.0 ||
      policy.backoff_factor < 1.0 || policy.backoff_jitter < 0.0 ||
      policy.backoff_jitter > 1.0) {
    throw std::invalid_argument("AttestationSession: bad policy");
  }
}

SessionOutcome AttestationSession::run(const Responder& responder,
                                       support::Xoshiro256pp& rng,
                                       const obs::TraceScope& trace) {
  obs::Span run_span = trace.span("session.run");
  SessionOutcome out = run_impl(responder, rng, run_span);
  if (run_span.active()) {
    run_span.note("attempts", static_cast<double>(out.attempts.size()));
    run_span.note("total_us", out.total_us);
    run_span.note("status", static_cast<double>(out.status));
  }
  return out;
}

SessionOutcome AttestationSession::run_impl(const Responder& responder,
                                            support::Xoshiro256pp& rng,
                                            obs::Span& run_span) {
  SessionOutcome out;
  for (std::size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    obs::Span attempt_span = run_span.child("session.attempt");
    AttemptRecord rec;
    // Everything the δ argument and the fault model produced for this
    // attempt, flushed onto the span at every exit below.
    std::uint64_t flips = 0;
    double deadline_us = -1.0;
    const auto note_attempt = [&] {
      if (!attempt_span.active()) return;
      attempt_span.note("backoff_us", rec.backoff_us);
      attempt_span.note("elapsed_us", rec.elapsed_us);
      attempt_span.note("flips", static_cast<double>(flips));
      attempt_span.note("delivered", rec.response_delivered ? 1.0 : 0.0);
      if (deadline_us >= 0.0) attempt_span.note("deadline_us", deadline_us);
      if (rec.verify) {
        attempt_span.note("verify", static_cast<double>(*rec.verify));
      }
    };
    if (attempt > 0) {
      const double nominal =
          policy_.backoff_base_us *
          std::pow(policy_.backoff_factor, static_cast<double>(attempt - 1));
      rec.backoff_us =
          nominal * (1.0 + policy_.backoff_jitter * (2.0 * rng.uniform() - 1.0));
      out.total_us += rec.backoff_us;
    }

    // Fresh nonce per attempt: the time bound is per-challenge.
    const AttestationRequest request = verifier_->make_request(rng);
    rec.nonce = request.nonce;

    auto request_frame = serialize_request(request);
    const auto request_delivery =
        channel_->transmit(request_frame, sizeof(request.nonce));
    bool request_ok = request_delivery.delivered;
    flips += request_delivery.bits_flipped;
    if (request_ok) {
      // A corrupted request fails the prover's CRC and is discarded there:
      // from the verifier's side it is indistinguishable from a loss.
      try {
        (void)deserialize_request(request_frame);
      } catch (const SerializationError&) {
        rec.request_corrupted = true;
        request_ok = false;
      }
    }
    rec.request_delivered = request_ok;
    if (!request_ok) {
      rec.elapsed_us = policy_.response_timeout_us;
      out.total_us += policy_.response_timeout_us;
      out.attempts.push_back(rec);
      note_attempt();
      continue;
    }

    const ProverReply reply = responder(request);
    const std::size_t wire_bytes = reply.response.wire_bytes();
    auto response_frame = serialize_response(reply.response);
    const auto response_delivery = channel_->transmit(response_frame, wire_bytes);
    flips += response_delivery.bits_flipped;
    double elapsed = request_delivery.transfer_us + reply.compute_us +
                     (response_delivery.delivered
                          ? response_delivery.transfer_us
                          : 0.0);
    if (!response_delivery.delivered ||
        elapsed > policy_.response_timeout_us) {
      // Lost, or arrived after the verifier stopped listening.
      rec.elapsed_us = policy_.response_timeout_us;
      out.total_us += policy_.response_timeout_us;
      out.attempts.push_back(rec);
      note_attempt();
      continue;
    }
    rec.response_delivered = true;
    rec.elapsed_us = elapsed;
    out.total_us += elapsed;

    AttestationResponse received;
    try {
      received = deserialize_response(response_frame);
    } catch (const SerializationError&) {
      // Transport fault, not evidence: retry.
      rec.response_corrupted = true;
      out.attempts.push_back(rec);
      note_attempt();
      continue;
    }

    const VerifyResult result = verifier_->verify(request, received, elapsed);
    rec.verify = result.status;
    deadline_us = result.deadline_us;
    out.attempts.push_back(rec);
    note_attempt();
    if (result.accepted()) {
      out.status = SessionStatus::kAccepted;
      return out;
    }
    if (result.status == VerifyStatus::kTimeExceeded &&
        policy_.retry_time_exceeded && attempt + 1 < policy_.max_attempts) {
      continue;  // may be jitter; retry under a fresh per-attempt deadline
    }
    // An intact frame that fails verification is definitive evidence.
    out.status = SessionStatus::kRejected;
    return out;
  }

  // The retry budget ran out without a verdict in hand... unless the last
  // attempts were verified kTimeExceeded, which is still a rejection.
  if (out.last_verify()) {
    out.status = SessionStatus::kRejected;
    return out;
  }
  bool all_silence = true;
  bool all_corrupt = true;
  for (const auto& rec : out.attempts) {
    if (rec.request_corrupted || rec.response_corrupted) {
      all_silence = false;
    } else {
      all_corrupt = false;
    }
  }
  if (all_silence) {
    out.status = SessionStatus::kTimeout;
  } else if (all_corrupt) {
    out.status = SessionStatus::kTransportCorrupted;
  } else {
    out.status = SessionStatus::kRetriesExhausted;
  }
  return out;
}

}  // namespace pufatt::core
