// Simulated communication channel between prover and verifier.
//
// The bandwidth model carries the weight of the paper's proxy-attack
// argument: "the bandwidth of the communication interfaces of P is far
// lower than the bandwidth of the interface between the CPU and the PUF",
// so shipping every PUF output to a remote accomplice blows the time
// bound.
//
// This class is the *analytic* model: zero loss, zero jitter, exact
// transfer times — what the verifier budgets for when it computes the
// deadline.  The deployed link is `FaultyChannel` (faulty_channel.hpp),
// which derives from it and layers a seeded loss/corruption/jitter process
// on top of the same parameters.
#pragma once

#include <cstddef>

namespace pufatt::core {

struct ChannelParams {
  double bandwidth_bps = 250'000.0;  ///< 250 kbit/s: typical sensor-node radio
  double latency_us = 2'000.0;       ///< one-way latency
};

class Channel {
 public:
  explicit Channel(const ChannelParams& params = {});

  /// One-way transfer time for a payload, microseconds.
  double transfer_us(std::size_t payload_bytes) const;

  /// Round-trip time for a request/response pair, microseconds.
  double round_trip_us(std::size_t request_bytes,
                       std::size_t response_bytes) const;

  const ChannelParams& params() const { return params_; }

 private:
  ChannelParams params_;
};

}  // namespace pufatt::core
