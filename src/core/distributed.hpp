// Distributed software-based attestation (Yang et al., SRDS 2007 — the
// paper's reference [37], one of its cited SWAT() instantiations).
//
// In a sensor network the powerful verifier is not always reachable, so
// nodes attest *each other*: every node carries the enrollment records of
// its neighbours (distributed at deployment), challenges them periodically
// over the radio, and a node is convicted when a quorum of its neighbours
// reject it.  Because each pairwise attestation is the full PUFatt
// protocol, a compromised node can neither fake its own responses nor
// (thanks to PUF binding) proxy them to an accomplice.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/crp_database.hpp"
#include "core/enrollment.hpp"
#include "core/faulty_channel.hpp"
#include "core/protocol.hpp"
#include "core/session.hpp"

namespace pufatt::core {

/// Role a node plays in the experiment (ground truth).
enum class NodeHealth {
  kHealthy,
  kNaiveMalware,     ///< tampered image, no hiding
  kHidingMalware,    ///< memory-redirection attack
};

struct DistributedParams {
  std::size_t num_nodes = 8;
  /// Each node links to the next `degree` nodes in a ring (so every node
  /// has 2*degree neighbours) — the standard k-connected ring topology.
  std::size_t degree = 2;
  /// Neighbours that must reject before a node is convicted.
  std::size_t quorum = 2;
  ChannelParams radio{.bandwidth_bps = 250'000.0, .latency_us = 3'000.0};
  /// Fault process applied to every radio link (default: perfect link).
  FaultParams radio_faults{};
  /// Retry/timeout/backoff policy each auditor uses per audit.
  SessionPolicy session{};
  /// Completed (conclusive) audits required before a conviction counts.
  /// With radio faults a node in a dead zone completes zero audits; the
  /// evidence floor keeps silence from reading as guilt.
  std::size_t min_evidence = 1;
  /// When > 0, the deployment also distributes a single-use CRP database
  /// of this many entries per node (the paper's first verification
  /// option), enabling run_crp_round() hardware-identity audits.
  std::size_t crp_entries_per_node = 0;
  DeviceProfile profile = small_profile();

  static DeviceProfile small_profile();
};

/// Per-node verdict after an audit round.
struct NodeVerdict {
  NodeHealth truth = NodeHealth::kHealthy;
  std::size_t rejections = 0;    ///< completed audits that rejected this node
  std::size_t audits = 0;        ///< neighbours that attempted an audit
  std::size_t completed = 0;     ///< audits that reached accept/reject
  std::size_t inconclusive = 0;  ///< audits starved by the transport
  std::size_t packets_lost = 0;       ///< radio losses across this node's audits
  std::size_t packets_corrupted = 0;  ///< corrupted frames across its audits
  /// rejections >= quorum AND completed >= min_evidence.
  bool convicted = false;
  /// True when the round gathered enough evidence to judge this node at
  /// all; a false value marks a dead-zone node needing re-audit.
  bool evidence_met = false;
};

/// A simulated network of PUFatt nodes performing mutual attestation.
class DistributedNetwork {
 public:
  /// Builds the fleet: distinct dice, shared firmware, per-pair verifier
  /// state.  `compromised` assigns ground-truth roles by node index
  /// (missing indices are healthy).
  DistributedNetwork(const DistributedParams& params,
                     const std::vector<std::pair<std::size_t, NodeHealth>>&
                         compromised,
                     std::uint64_t seed);

  /// One audit round: every node challenges all of its neighbours through
  /// its own faulty radio link, driving a full retrying session per audit.
  /// Returns the verdicts (conviction = rejections >= quorum over the
  /// audits that actually completed, subject to the evidence floor).
  std::vector<NodeVerdict> run_round(support::Xoshiro256pp& rng);

  /// One CRP-database audit round (requires crp_entries_per_node > 0,
  /// throws std::logic_error otherwise): every node replays the next
  /// unused entry of each neighbour's distributed CRP database against
  /// that neighbour's physical PUF.  This is the paper's verification
  /// option 1 — it authenticates the *silicon*, not the software image,
  /// so malware-carrying nodes with genuine hardware still pass; what it
  /// catches is substituted/cloned hardware.  Tally rule: an exhausted
  /// database yields no evidence (AuthResult::conclusive() is false) and
  /// lands in `inconclusive`, never in `rejections` — running out of
  /// entries must not convict a healthy node, exactly like transport
  /// starvation in run_round().
  std::vector<NodeVerdict> run_crp_round(support::Xoshiro256pp& rng);

  /// Unused CRP-database entries left for audits of `node`.
  std::size_t crp_remaining(std::size_t node) const;

  /// Marks a node as (un)reachable: every link touching it drops all
  /// traffic, modelling a radio dead zone.  Its audits become
  /// inconclusive, never rejections.
  void set_partitioned(std::size_t node, bool partitioned);
  bool partitioned(std::size_t node) const { return partitioned_.at(node); }

  std::size_t num_nodes() const { return nodes_.size(); }
  const std::vector<std::size_t>& neighbours(std::size_t node) const {
    return adjacency_.at(node);
  }

 private:
  struct Node {
    std::unique_ptr<alupuf::PufDevice> device;
    EnrollmentRecord record;           ///< this node's own enrollment
    std::unique_ptr<CpuProver> prover; ///< how it actually answers
    std::unique_ptr<Verifier> verifier_of_me;  ///< what neighbours hold
    /// Single-use CRP database neighbours audit this node against
    /// (only when DistributedParams::crp_entries_per_node > 0).
    std::unique_ptr<CrpDatabase> crp_db_of_me;
    NodeHealth health = NodeHealth::kHealthy;
  };

  DistributedParams params_;
  const ecc::BinaryCode* code_;
  std::vector<Node> nodes_;
  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<bool> partitioned_;
};

}  // namespace pufatt::core
