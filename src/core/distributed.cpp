#include "core/distributed.hpp"

#include <stdexcept>

#include "ecc/reed_muller.hpp"

namespace pufatt::core {

namespace {

const ecc::ReedMuller1& shared_code() {
  static const ecc::ReedMuller1 code(5);
  return code;
}

}  // namespace

DeviceProfile DistributedParams::small_profile() {
  auto profile = DeviceProfile::standard();
  profile.swat.rounds = 512;
  profile.swat.puf_interval = 64;
  profile.swat.attest_words = 1024;
  profile.layout = swat::SwatLayout::standard(profile.swat);
  return profile;
}

DistributedNetwork::DistributedNetwork(
    const DistributedParams& params,
    const std::vector<std::pair<std::size_t, NodeHealth>>& compromised,
    std::uint64_t seed)
    : params_(params), code_(&shared_code()) {
  if (params.num_nodes < 3) {
    throw std::invalid_argument("DistributedNetwork: need >= 3 nodes");
  }
  if (params.degree == 0 || 2 * params.degree >= params.num_nodes) {
    throw std::invalid_argument("DistributedNetwork: bad ring degree");
  }
  if (params.quorum == 0 || params.quorum > 2 * params.degree) {
    throw std::invalid_argument("DistributedNetwork: bad quorum");
  }

  // Shared firmware for the whole deployment.
  support::Xoshiro256pp rng(seed);
  std::vector<std::uint32_t> firmware(600);
  for (auto& w : firmware) w = static_cast<std::uint32_t>(rng.next());
  const auto image = make_enrolled_image(params.profile, firmware);

  nodes_.resize(params.num_nodes);
  for (std::size_t i = 0; i < params.num_nodes; ++i) {
    Node& node = nodes_[i];
    node.device = std::make_unique<alupuf::PufDevice>(
        params.profile.puf_config, seed + 1000 + i, *code_);
    node.record = enroll(*node.device, params.profile, image);
    node.verifier_of_me =
        std::make_unique<Verifier>(node.record, *code_, params.radio);
    if (params.crp_entries_per_node > 0) {
      // Verification option 1: the trusted party also records a bounded
      // single-use CRP database per node at deployment time.
      support::Xoshiro256pp crp_rng(seed + 9000 + i);
      node.crp_db_of_me = std::make_unique<CrpDatabase>(CrpDatabase::collect(
          node.device->raw_puf(), params.crp_entries_per_node, crp_rng));
    }
  }
  for (const auto& [index, health] : compromised) {
    if (index >= nodes_.size()) {
      throw std::invalid_argument("DistributedNetwork: bad compromised index");
    }
    nodes_[index].health = health;
  }

  // Provers reflect the ground truth.
  for (std::size_t i = 0; i < params.num_nodes; ++i) {
    Node& node = nodes_[i];
    auto record = node.record;
    auto variant = CpuProver::Variant::kHonest;
    switch (node.health) {
      case NodeHealth::kHealthy:
        break;
      case NodeHealth::kNaiveMalware:
        for (std::size_t w = 700; w < 800 && w < record.enrolled_image.size();
             ++w) {
          record.enrolled_image[w] ^= 0xBAD0BAD0u;
        }
        break;
      case NodeHealth::kHidingMalware:
        variant = CpuProver::Variant::kRedirectMalware;
        break;
    }
    node.prover = std::make_unique<CpuProver>(*node.device, record, variant,
                                              seed + 5000 + i);
  }

  partitioned_.assign(params.num_nodes, false);

  // k-connected ring adjacency.
  adjacency_.resize(params.num_nodes);
  for (std::size_t i = 0; i < params.num_nodes; ++i) {
    for (std::size_t d = 1; d <= params.degree; ++d) {
      adjacency_[i].push_back((i + d) % params.num_nodes);
      adjacency_[i].push_back((i + params.num_nodes - d) % params.num_nodes);
    }
  }
}

std::size_t DistributedNetwork::crp_remaining(std::size_t node) const {
  if (node >= nodes_.size()) {
    throw std::invalid_argument("DistributedNetwork: bad node index");
  }
  return nodes_[node].crp_db_of_me ? nodes_[node].crp_db_of_me->remaining()
                                   : 0;
}

std::vector<NodeVerdict> DistributedNetwork::run_crp_round(
    support::Xoshiro256pp& rng) {
  if (params_.crp_entries_per_node == 0) {
    throw std::logic_error(
        "DistributedNetwork: CRP audits need crp_entries_per_node > 0");
  }
  std::vector<NodeVerdict> verdicts(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    verdicts[i].truth = nodes_[i].health;
  }
  for (std::size_t auditor = 0; auditor < nodes_.size(); ++auditor) {
    for (const auto target : adjacency_[auditor]) {
      NodeVerdict& verdict = verdicts[target];
      ++verdict.audits;
      if (partitioned_[auditor] || partitioned_[target]) {
        // Dead zone: the challenge never reaches the target.  No database
        // entry is spent on an audit that cannot complete.
        ++verdict.inconclusive;
        continue;
      }
      // Malware does not alter the PUF, so the audited silicon is the
      // target's real device regardless of its software health.
      const auto result =
          nodes_[target].crp_db_of_me->authenticate(
              nodes_[target].device->raw_puf(), rng);
      if (!result.conclusive()) {
        // Exhausted database = no evidence, mirroring the transport rule:
        // running dry must never read as a rejection of a healthy node.
        ++verdict.inconclusive;
        continue;
      }
      ++verdict.completed;
      if (!result.accepted) ++verdict.rejections;
    }
  }
  for (auto& verdict : verdicts) {
    verdict.evidence_met = verdict.completed >= params_.min_evidence;
    verdict.convicted =
        verdict.evidence_met && verdict.rejections >= params_.quorum;
  }
  return verdicts;
}

void DistributedNetwork::set_partitioned(std::size_t node, bool partitioned) {
  if (node >= nodes_.size()) {
    throw std::invalid_argument("DistributedNetwork: bad node index");
  }
  partitioned_[node] = partitioned;
}

std::vector<NodeVerdict> DistributedNetwork::run_round(
    support::Xoshiro256pp& rng) {
  std::vector<NodeVerdict> verdicts(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    verdicts[i].truth = nodes_[i].health;
  }

  for (std::size_t auditor = 0; auditor < nodes_.size(); ++auditor) {
    for (const auto target : adjacency_[auditor]) {
      // The auditor holds the target's enrollment record and drives the
      // full retrying PUFatt session against it over its own faulty link.
      FaultParams faults = params_.radio_faults;
      if (partitioned_[auditor] || partitioned_[target]) {
        faults.loss_prob = 1.0;
        faults.burst = false;
      }
      FaultyChannel link(params_.radio, faults, rng.next());
      const Verifier& verifier = *nodes_[target].verifier_of_me;
      AttestationSession session(verifier, link, params_.session);
      const auto outcome = session.run(
          [&](const AttestationRequest& request) {
            auto reply = nodes_[target].prover->respond(request);
            return ProverReply{std::move(reply.response), reply.compute_us};
          },
          rng);

      NodeVerdict& verdict = verdicts[target];
      ++verdict.audits;
      verdict.packets_lost += link.counters().packets_lost;
      verdict.packets_corrupted += link.counters().packets_corrupted;
      if (outcome.conclusive()) {
        ++verdict.completed;
        if (!outcome.accepted()) ++verdict.rejections;
      } else {
        // Silence is not evidence: a node in a dead zone must not be
        // convicted because its responses never arrived.
        ++verdict.inconclusive;
      }
    }
  }
  for (auto& verdict : verdicts) {
    verdict.evidence_met = verdict.completed >= params_.min_evidence;
    verdict.convicted =
        verdict.evidence_met && verdict.rejections >= params_.quorum;
  }
  return verdicts;
}

}  // namespace pufatt::core
