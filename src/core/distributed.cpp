#include "core/distributed.hpp"

#include <stdexcept>

#include "ecc/reed_muller.hpp"

namespace pufatt::core {

namespace {

const ecc::ReedMuller1& shared_code() {
  static const ecc::ReedMuller1 code(5);
  return code;
}

}  // namespace

DeviceProfile DistributedParams::small_profile() {
  auto profile = DeviceProfile::standard();
  profile.swat.rounds = 512;
  profile.swat.puf_interval = 64;
  profile.swat.attest_words = 1024;
  profile.layout = swat::SwatLayout::standard(profile.swat);
  return profile;
}

DistributedNetwork::DistributedNetwork(
    const DistributedParams& params,
    const std::vector<std::pair<std::size_t, NodeHealth>>& compromised,
    std::uint64_t seed)
    : params_(params), code_(&shared_code()) {
  if (params.num_nodes < 3) {
    throw std::invalid_argument("DistributedNetwork: need >= 3 nodes");
  }
  if (params.degree == 0 || 2 * params.degree >= params.num_nodes) {
    throw std::invalid_argument("DistributedNetwork: bad ring degree");
  }
  if (params.quorum == 0 || params.quorum > 2 * params.degree) {
    throw std::invalid_argument("DistributedNetwork: bad quorum");
  }

  // Shared firmware for the whole deployment.
  support::Xoshiro256pp rng(seed);
  std::vector<std::uint32_t> firmware(600);
  for (auto& w : firmware) w = static_cast<std::uint32_t>(rng.next());
  const auto image = make_enrolled_image(params.profile, firmware);

  nodes_.resize(params.num_nodes);
  for (std::size_t i = 0; i < params.num_nodes; ++i) {
    Node& node = nodes_[i];
    node.device = std::make_unique<alupuf::PufDevice>(
        params.profile.puf_config, seed + 1000 + i, *code_);
    node.record = enroll(*node.device, params.profile, image);
    node.verifier_of_me =
        std::make_unique<Verifier>(node.record, *code_, params.radio);
  }
  for (const auto& [index, health] : compromised) {
    if (index >= nodes_.size()) {
      throw std::invalid_argument("DistributedNetwork: bad compromised index");
    }
    nodes_[index].health = health;
  }

  // Provers reflect the ground truth.
  for (std::size_t i = 0; i < params.num_nodes; ++i) {
    Node& node = nodes_[i];
    auto record = node.record;
    auto variant = CpuProver::Variant::kHonest;
    switch (node.health) {
      case NodeHealth::kHealthy:
        break;
      case NodeHealth::kNaiveMalware:
        for (std::size_t w = 700; w < 800 && w < record.enrolled_image.size();
             ++w) {
          record.enrolled_image[w] ^= 0xBAD0BAD0u;
        }
        break;
      case NodeHealth::kHidingMalware:
        variant = CpuProver::Variant::kRedirectMalware;
        break;
    }
    node.prover = std::make_unique<CpuProver>(*node.device, record, variant,
                                              seed + 5000 + i);
  }

  // k-connected ring adjacency.
  adjacency_.resize(params.num_nodes);
  for (std::size_t i = 0; i < params.num_nodes; ++i) {
    for (std::size_t d = 1; d <= params.degree; ++d) {
      adjacency_[i].push_back((i + d) % params.num_nodes);
      adjacency_[i].push_back((i + params.num_nodes - d) % params.num_nodes);
    }
  }
}

std::vector<NodeVerdict> DistributedNetwork::run_round(
    support::Xoshiro256pp& rng) {
  std::vector<NodeVerdict> verdicts(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    verdicts[i].truth = nodes_[i].health;
  }
  const Channel radio(params_.radio);

  for (std::size_t auditor = 0; auditor < nodes_.size(); ++auditor) {
    for (const auto target : adjacency_[auditor]) {
      // The auditor holds the target's enrollment record and runs the full
      // PUFatt protocol against it over the radio.
      const Verifier& verifier = *nodes_[target].verifier_of_me;
      const auto request = verifier.make_request(rng);
      const auto outcome = nodes_[target].prover->respond(request);
      const double elapsed =
          outcome.compute_us +
          radio.round_trip_us(8, outcome.response.wire_bytes());
      const auto result = verifier.verify(request, outcome.response, elapsed);
      ++verdicts[target].audits;
      if (!result.accepted()) ++verdicts[target].rejections;
    }
  }
  for (auto& verdict : verdicts) {
    verdict.convicted = verdict.rejections >= params_.quorum;
  }
  return verdicts;
}

}  // namespace pufatt::core
