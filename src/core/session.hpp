// Stateful attestation sessions over an unreliable channel.
//
// `Verifier::verify` answers one question about one response; a deployed
// verifier must *drive* the protocol over a radio that loses, corrupts and
// delays frames.  AttestationSession is that driver: a verifier-side state
// machine with a per-attempt response timeout, a bounded retry budget and
// exponential backoff with jitter.
//
// Two invariants carry the paper's Section 4.2 security argument through
// the retry policy:
//
//   1. Every retry uses a FRESH nonce (a new `make_request`).  The time
//      bound is per-challenge; replaying a nonce would hand the prover the
//      previous attempt's elapsed time as free precomputation.
//   2. Retrying never extends the per-attempt deadline.  Each attempt is
//      verified against its own `deadline_us`; an overclocking or proxy
//      adversary gains nothing from extra attempts because every attempt
//      fails the same per-challenge check.
//
// Transport faults and protocol evidence are kept strictly apart: a lost
// or CRC-failing frame says nothing about the prover and is retried, while
// an intact frame that fails verification is evidence and terminates the
// session as kRejected.  kTimeExceeded is the one ambiguous verdict — the
// link's jitter can push an honest response past the deadline — so it is
// retried (policy-controlled), but a session that *ends* on it still ends
// kRejected: silence is inconclusive, slowness is not acceptance.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/faulty_channel.hpp"
#include "core/protocol.hpp"
#include "obs/trace.hpp"

namespace pufatt::core {

struct SessionPolicy {
  std::size_t max_attempts = 4;  ///< 1 disables retries
  /// How long the verifier waits for a response before declaring the
  /// attempt dead (also the wall-time charged for a silent attempt).
  double response_timeout_us = 500'000.0;
  double backoff_base_us = 20'000.0;  ///< backoff before the first retry
  double backoff_factor = 2.0;        ///< exponential growth per retry
  double backoff_jitter = 0.25;       ///< uniform +/- fraction of the nominal
  /// Retry kTimeExceeded verdicts (they may be jitter-induced).  Checksum
  /// and PUF-reconstruction failures are never retried: those frames
  /// arrived intact, so the fault is the prover's.
  bool retry_time_exceeded = true;
};

/// Terminal outcome of a whole session (vs. VerifyStatus for one response).
enum class SessionStatus {
  kAccepted,
  kRejected,            ///< an intact response failed verification
  kTimeout,             ///< every attempt ended in silence
  kTransportCorrupted,  ///< every failed attempt was a corrupted frame
  kRetriesExhausted,    ///< mixed transport faults exhausted the budget
};

const char* to_string(SessionStatus status);

/// One protocol attempt, recorded for observability.
struct AttemptRecord {
  std::uint64_t nonce = 0;
  double backoff_us = 0.0;  ///< wait before this attempt (0 for the first)
  bool request_delivered = false;   ///< reached the prover with a valid CRC
  bool request_corrupted = false;   ///< arrived but discarded by the prover
  bool response_delivered = false;
  bool response_corrupted = false;  ///< delivered but failed CRC/parse
  double elapsed_us = 0.0;  ///< what the verifier's clock measured
  std::optional<VerifyStatus> verify;  ///< set iff an intact frame was verified
};

struct SessionOutcome {
  SessionStatus status = SessionStatus::kTimeout;
  std::vector<AttemptRecord> attempts;
  double total_us = 0.0;  ///< wall time: attempts + timeouts + backoff
  bool accepted() const { return status == SessionStatus::kAccepted; }
  /// True when the session produced evidence about the prover (accept or
  /// reject); transport-starved sessions are inconclusive.
  bool conclusive() const {
    return status == SessionStatus::kAccepted ||
           status == SessionStatus::kRejected;
  }
  /// Verdict of the last verified attempt, if any attempt got that far.
  std::optional<VerifyStatus> last_verify() const;
};

/// What a prover hands back for one request.
struct ProverReply {
  AttestationResponse response;
  double compute_us = 0.0;
};

/// Adapts any prover (CpuProver, proxy adversary, ...) to the session.
using Responder = std::function<ProverReply(const AttestationRequest&)>;

class AttestationSession {
 public:
  /// `verifier` and `channel` must outlive the session.
  AttestationSession(const Verifier& verifier, FaultyChannel& channel,
                     const SessionPolicy& policy = {});

  /// Drives the protocol to a terminal outcome.  `rng` supplies nonces and
  /// backoff jitter; all channel randomness lives in the channel's own
  /// seeded stream, so (session rng seed, channel seed) reproduce the
  /// exact attempt trace.
  ///
  /// `trace` (optional) records the session as spans: one "session.run"
  /// root under the scope's parent, one "session.attempt" child per
  /// protocol attempt carrying the simulated timings the δ argument runs
  /// on (elapsed_us / deadline_us), the backoff charged before the
  /// attempt, and the channel's fault events (bits flipped, delivery) as
  /// annotations.  The attempt spans are the AttemptRecord vector in
  /// span form; the records themselves are unchanged.
  SessionOutcome run(const Responder& responder, support::Xoshiro256pp& rng,
                     const obs::TraceScope& trace = {});

  const SessionPolicy& policy() const { return policy_; }

 private:
  SessionOutcome run_impl(const Responder& responder,
                          support::Xoshiro256pp& rng, obs::Span& run_span);

  const Verifier* verifier_;
  FaultyChannel* channel_;
  SessionPolicy policy_;
};

}  // namespace pufatt::core
