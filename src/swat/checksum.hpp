// SWAT: the software-based attestation checksum, adapted from the SCUBA/
// ICE family (Seshadri et al. — the paper's reference [31]) and extended
// with PUF entanglement exactly as PUFatt prescribes: every `puf_interval`
// rounds the running checksum state derives 8 PUF challenges, and the PUF
// output z is folded back into the state.
//
// The algorithm is specified here once and implemented twice:
//   * compute_checksum() — the native reference engine (verifier side and
//     fast experimentation);
//   * generate_swat_source() (program.hpp) — the PR32 assembly program the
//     simulated prover actually executes.
// Tests assert bit-exact agreement between the two.
//
// Round j (state s[0..7], PRG word a, attested memory M of 2^k words):
//   a     = xorshift32(a)               (shifts 13, 17, 5)
//   addr  = (a ^ s[j&7]) & (2^k - 1)
//   t     = s[j&7] ^ (M[addr] + a)
//   s[j&7]= rotl32(t, 7) + s[(j+1)&7]
// Every puf_interval rounds (both multiples of 8):
//   challenge_r = (s[r] << 32) | ~s[r]              for r = 0..7
//   (operands (A, ~A) keep every bit of the adder in propagate mode, so
//   each PUF query exercises the full-width carry chain at near-critical
//   timing — the basis of the overclocking defence)
//   z = PUF(challenges)                 (32-bit obfuscated output)
//   s[0] ^= z;  s[4] += rotl32(z, 16)
// The attestation response is the final 8-word state.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace pufatt::swat {

struct SwatParams {
  std::uint32_t rounds = 2048;        ///< multiple of 8
  std::uint32_t puf_interval = 64;    ///< multiple of 8, divides rounds
  std::uint32_t attest_words = 4096;  ///< power of two, <= 65536
  /// Proactive memory filling (Choi et al., ICCSA 2007 — the paper's
  /// reference [3], one of its cited SWAT instantiations): before the
  /// checksum runs, the prover overwrites [fill_start, fill_start +
  /// fill_words) — the region that would otherwise be free memory — with
  /// PRG output chained from the attestation seed.  The verifier computes
  /// the same noise, so the filled region is covered by the checksum and
  /// can no longer hide a pristine copy for the redirection attack.
  /// fill_words = 0 disables filling.
  std::uint32_t fill_start = 0;
  std::uint32_t fill_words = 0;
};

/// Validates the structural constraints above; throws std::invalid_argument.
void validate(const SwatParams& params);

/// One logical PUF() call: 8 raw 64-bit challenges -> 32-bit obfuscated
/// output z.  The prover's implementation never fails (it also records
/// helper data out of band); the verifier's emulation returns nullopt when
/// helper-data reconstruction fails.
using PufQuery =
    std::function<std::optional<std::uint32_t>(const std::array<std::uint64_t, 8>&)>;

struct ChecksumResult {
  std::array<std::uint32_t, 8> state{};
  std::size_t puf_calls = 0;
  /// False when a PUF query failed (verifier-side reconstruction error).
  bool ok = true;
};

/// xorshift32 step (never returns 0 for nonzero input).
std::uint32_t xorshift32(std::uint32_t a);

/// Derives the 8 PUF challenges from the checksum state (shared spec).
std::array<std::uint64_t, 8> derive_puf_challenges(
    const std::array<std::uint32_t, 8>& state, std::uint32_t a);

/// Native reference checksum over `memory` (indexed by word address; must
/// hold at least attest_words words).  `seed` must be nonzero.  When
/// filling is enabled the fill is applied to an internal copy of `memory`
/// first (the caller's buffer is not modified), mirroring exactly what the
/// PR32 program does to the device's RAM.
ChecksumResult compute_checksum(const std::vector<std::uint32_t>& memory,
                                std::uint32_t seed, const SwatParams& params,
                                const PufQuery& puf);

/// Expected cycle count of the honest PR32 SWAT program for these params
/// (used by the verifier to set the time bound delta without running the
/// prover; validated against the simulator in tests).
std::uint64_t honest_cycle_estimate(const SwatParams& params);

}  // namespace pufatt::swat
