// PR32 assembly generation for the SWAT checksum.
//
// The generated program is what actually lives in the prover's attested
// memory: it self-checksums (its own instruction words are part of the
// attested image) and drives the PUF through the pstart/add/pend ISA
// extension.  A second generator produces the classic memory-redirection
// (malware-hiding) attack variant: the adversary's program keeps a pristine
// copy of the enrolled image and redirects every checksum read that lands
// in the modified region — computing the *correct* checksum at the cost of
// extra cycles per round, which the verifier's time bound catches.
#pragma once

#include <cstdint>
#include <string>

#include "swat/checksum.hpp"

namespace pufatt::swat {

/// Word addresses of the mailbox the harness uses to talk to the program.
/// Everything here lies *above* the attested region.
struct SwatLayout {
  std::uint32_t seed_addr = 0;        ///< harness writes the nonzero seed
  std::uint32_t result_addr = 0;      ///< program writes the 8 state words
  std::uint32_t helper_ptr_addr = 0;  ///< running helper-buffer pointer
  std::uint32_t helper_addr = 0;      ///< helper words, 8 per PUF call

  /// Standard layout directly above the attested region.
  static SwatLayout standard(const SwatParams& params);
};

/// Validates layout addresses (must fit 15-bit immediates and lie outside
/// the attested region); throws std::invalid_argument.
void validate(const SwatParams& params, const SwatLayout& layout);

/// The memory-redirection attack configuration.
struct RedirectAttack {
  /// Reads with address < protected_words are redirected.
  std::uint32_t protected_words = 0;
  /// Word address of the pristine copy of the enrolled image's first
  /// protected_words words (outside the attested region).
  std::uint32_t copy_addr = 0;
};

/// Generates the honest SWAT program.
std::string generate_swat_source(const SwatParams& params,
                                 const SwatLayout& layout);

/// Generates the attack variant: same checksum results over the enrolled
/// image, extra work per round.
std::string generate_swat_source(const SwatParams& params,
                                 const SwatLayout& layout,
                                 const RedirectAttack& attack);

/// Cycle count of the honest program (measured on the simulator once; the
/// count is input-independent).  The verifier derives the time bound delta
/// from this.
std::uint64_t honest_cycle_estimate(const SwatParams& params);

}  // namespace pufatt::swat
