#include "swat/checksum.hpp"

#include <bit>
#include <stdexcept>

namespace pufatt::swat {

void validate(const SwatParams& params) {
  if (params.rounds == 0 || params.rounds % 8 != 0) {
    throw std::invalid_argument("SwatParams: rounds must be a multiple of 8");
  }
  if (params.puf_interval == 0 || params.puf_interval % 8 != 0) {
    throw std::invalid_argument(
        "SwatParams: puf_interval must be a multiple of 8");
  }
  if (params.rounds % params.puf_interval != 0) {
    throw std::invalid_argument(
        "SwatParams: puf_interval must divide rounds");
  }
  if (params.attest_words == 0 ||
      (params.attest_words & (params.attest_words - 1)) != 0 ||
      params.attest_words > 65536) {
    throw std::invalid_argument(
        "SwatParams: attest_words must be a power of two <= 65536");
  }
  if (params.fill_words > 0) {
    if (params.fill_start + params.fill_words > params.attest_words) {
      throw std::invalid_argument(
          "SwatParams: fill region must lie inside the attested region");
    }
    if (params.attest_words > 32000) {
      throw std::invalid_argument(
          "SwatParams: fill addresses exceed the immediate range");
    }
  }
}

std::uint32_t xorshift32(std::uint32_t a) {
  a ^= a << 13;
  a ^= a >> 17;
  a ^= a << 5;
  return a;
}

std::array<std::uint64_t, 8> derive_puf_challenges(
    const std::array<std::uint32_t, 8>& state, std::uint32_t a) {
  std::array<std::uint64_t, 8> challenges{};
  (void)a;
  for (std::size_t r = 0; r < 8; ++r) {
    // Operands (A, ~A): every PUF query drives the full-width carry chain,
    // so the race is always timing-critical (required for the overclocking
    // defence); the chip's per-gate rise/fall asymmetry makes the outcome
    // depend on all of A.
    challenges[r] = (static_cast<std::uint64_t>(state[r]) << 32) |
                    static_cast<std::uint32_t>(~state[r]);
  }
  return challenges;
}

ChecksumResult compute_checksum(const std::vector<std::uint32_t>& memory,
                                std::uint32_t seed, const SwatParams& params,
                                const PufQuery& puf) {
  validate(params);
  if (seed == 0) throw std::invalid_argument("SWAT seed must be nonzero");
  if (memory.size() < params.attest_words) {
    throw std::invalid_argument("memory smaller than attested region");
  }

  ChecksumResult result;
  const std::uint32_t mask = params.attest_words - 1;

  std::uint32_t a = seed;
  // Proactive fill: overwrite the designated (free) region with PRG noise
  // chained from the seed, exactly as the PR32 program does.
  std::vector<std::uint32_t> filled;
  const std::vector<std::uint32_t>* view = &memory;
  if (params.fill_words > 0) {
    filled = memory;
    for (std::uint32_t w = 0; w < params.fill_words; ++w) {
      a = xorshift32(a);
      filled[params.fill_start + w] = a;
    }
    view = &filled;
  }

  // State initialization: eight xorshift steps continuing the chain.
  for (auto& s : result.state) {
    a = xorshift32(a);
    s = a;
  }
  a = xorshift32(a);

  std::uint32_t epoch_countdown = params.puf_interval;
  for (std::uint32_t block = 0; block < params.rounds / 8; ++block) {
    for (std::uint32_t i = 0; i < 8; ++i) {
      a = xorshift32(a);
      const std::uint32_t addr = (a ^ result.state[i]) & mask;
      const std::uint32_t t = result.state[i] ^ ((*view)[addr] + a);
      result.state[i] = std::rotl(t, 7) + result.state[(i + 1) & 7];
    }
    epoch_countdown -= 8;
    if (epoch_countdown == 0) {
      const auto challenges = derive_puf_challenges(result.state, a);
      const auto z = puf(challenges);
      if (!z) {
        result.ok = false;
        return result;
      }
      result.state[0] ^= *z;
      result.state[4] += std::rotl(*z, 16);
      ++result.puf_calls;
      epoch_countdown = params.puf_interval;
    }
  }
  return result;
}

}  // namespace pufatt::swat
