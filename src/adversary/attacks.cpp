#include "adversary/attacks.hpp"

#include <algorithm>
#include <cmath>

#include "mlattack/dataset.hpp"

namespace pufatt::adversary {

using support::BitVector;
using support::Xoshiro256pp;

double predictor_accuracy(const Predictor& model,
                          const std::vector<mlattack::Example>& examples) {
  if (examples.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& ex : examples) {
    if (model.predict(ex.features) == ex.label) ++correct;
  }
  return static_cast<double>(correct) / examples.size();
}

AttackReport ModelAttack::run(PufVariant& device, const AttackRunConfig& config,
                              Xoshiro256pp& rng) const {
  QueryOracle oracle(device, config.budget);
  const auto train = oracle.collect(config.budget, rng);
  const auto model = fit(train, rng);

  AttackReport report;
  report.budget = config.budget;
  report.queries_used = oracle.used();
  report.train_accuracy = predictor_accuracy(*model, train);

  device.finish_training();

  const auto test = harvest_examples(device, config.test_queries, rng);
  report.test_accuracy = predictor_accuracy(*model, test);
  return report;
}

namespace {

class LogRegPredictor final : public Predictor {
 public:
  explicit LogRegPredictor(mlattack::LogisticRegression model)
      : model_(std::move(model)) {}
  bool predict(const std::vector<double>& features) const override {
    return model_.predict(features);
  }

 private:
  mlattack::LogisticRegression model_;
};

class MlpPredictor final : public Predictor {
 public:
  explicit MlpPredictor(Mlp model) : model_(std::move(model)) {}
  bool predict(const std::vector<double>& features) const override {
    return model_.predict(features);
  }

 private:
  Mlp model_;
};

/// Linear model w . phi > 0 — the additive delay model CMA-ES searches.
class LinearPredictor final : public Predictor {
 public:
  explicit LinearPredictor(std::vector<double> weights)
      : weights_(std::move(weights)) {}
  bool predict(const std::vector<double>& features) const override {
    double z = 0.0;
    const std::size_t n = std::min(weights_.size(), features.size());
    for (std::size_t i = 0; i < n; ++i) z += weights_[i] * features[i];
    return z > 0.0;
  }

 private:
  std::vector<double> weights_;
};

}  // namespace

std::unique_ptr<Predictor> LogRegAttack::fit(
    const std::vector<mlattack::Example>& train, Xoshiro256pp& rng) const {
  const std::size_t dim = train.empty() ? 1 : train.front().features.size();
  mlattack::LogisticRegression model(dim);
  model.train(train, params_, rng);
  return std::make_unique<LogRegPredictor>(std::move(model));
}

std::unique_ptr<Predictor> MlpAttack::fit(
    const std::vector<mlattack::Example>& train, Xoshiro256pp& rng) const {
  const std::size_t dim = train.empty() ? 1 : train.front().features.size();
  Mlp model(dim, params_.hidden_units, rng);
  model.train(train, params_, rng);
  return std::make_unique<MlpPredictor>(std::move(model));
}

std::unique_ptr<Predictor> CmaesAttack::fit(
    const std::vector<mlattack::Example>& train, Xoshiro256pp& rng) const {
  const std::size_t dim = train.empty() ? 1 : train.front().features.size();
  // Deterministic subsample: a fixed-stride sweep keeps the fitness
  // function identical across runs without consuming rng state.
  std::vector<const mlattack::Example*> sample;
  const std::size_t cap = std::max<std::size_t>(1, params_.fitness_subsample);
  const std::size_t stride = std::max<std::size_t>(1, train.size() / cap);
  for (std::size_t i = 0; i < train.size(); i += stride) {
    sample.push_back(&train[i]);
  }
  const auto fitness = [&sample](const std::vector<double>& w) {
    if (sample.empty()) return 0.0;
    double loss = 0.0;
    for (const auto* ex : sample) {
      double z = 0.0;
      const std::size_t n = std::min(w.size(), ex->features.size());
      for (std::size_t i = 0; i < n; ++i) z += w[i] * ex->features[i];
      const double margin = ex->label ? z : -z;
      // log(1 + e^-margin), computed stably.
      loss += margin > 0.0 ? std::log1p(std::exp(-margin))
                           : -margin + std::log1p(std::exp(margin));
    }
    return loss / sample.size();
  };
  const auto result =
      cmaes_minimize(fitness, std::vector<double>(dim, 0.0), params_.cmaes, rng);
  return std::make_unique<LinearPredictor>(result.best);
}

namespace {

/// Invasive path: harvest raw CRPs, fit one LR model per raw response bit,
/// forge full transcripts, let the real verifier judge.  One round is a
/// whole attestation session — `replay_session_calls` fresh verifier nonces
/// that must ALL be accepted.  The session structure is the defence that
/// actually bites: per-call distance budgets are calibrated for honest
/// noise, and a per-bit model's errors land on the same low-|LLR| bits the
/// device itself flips, so single forged calls pass roughly half the time
/// at high budgets.  Stringing calls compounds the forger's per-call
/// shortfall while leaving honest devices (per-call acceptance ~0.999)
/// untouched.
AttackReport replay_against_surface(const AttestationSurface& surface,
                                    const AttackRunConfig& config,
                                    const mlattack::LogRegParams& params,
                                    Xoshiro256pp& rng) {
  AttackReport report;
  report.budget = config.budget;

  const auto crps = surface.collect_raw(config.budget, rng);
  report.queries_used = crps.size();
  const std::size_t bits = surface.raw_response_bits();

  // One featurization shared by every per-bit model.
  std::vector<std::vector<double>> features;
  features.reserve(crps.size());
  for (const auto& crp : crps) {
    features.push_back(mlattack::alu_features(crp.challenge));
  }
  const std::size_t dim = features.empty() ? 1 : features.front().size();

  std::vector<mlattack::LogisticRegression> models;
  models.reserve(bits);
  double train_acc_sum = 0.0;
  std::vector<mlattack::Example> dataset(crps.size());
  for (std::size_t b = 0; b < bits; ++b) {
    for (std::size_t i = 0; i < crps.size(); ++i) {
      dataset[i].features = features[i];
      dataset[i].label = crps[i].response.get(b);
    }
    mlattack::LogisticRegression model(dim);
    model.train(dataset, params, rng);
    train_acc_sum += model.accuracy(dataset);
    models.push_back(std::move(model));
  }
  report.train_accuracy = bits == 0 ? 0.0 : train_acc_sum / bits;

  const RawResponder respond = [&models, bits](const BitVector& challenge) {
    const auto phi = mlattack::alu_features(challenge);
    BitVector out(bits);
    for (std::size_t b = 0; b < bits; ++b) {
      out.set(b, models[b].predict(phi));
    }
    return out;
  };
  std::size_t accepted = 0;
  for (std::size_t round = 0; round < config.replay_rounds; ++round) {
    bool session_ok = true;
    for (std::size_t call = 0; call < config.replay_session_calls; ++call) {
      // Every call draws its nonce even after a failure: the rng stream per
      // round must not depend on where the verifier bailed.
      if (!surface.replay_trial(respond, rng)) session_ok = false;
    }
    if (session_ok) ++accepted;
  }
  report.replay_acceptance =
      config.replay_rounds == 0
          ? 0.0
          : static_cast<double>(accepted) / config.replay_rounds;
  report.test_accuracy = report.replay_acceptance;
  return report;
}

/// Generic path: model the visible bit, then try to pass a threshold
/// verifier that compares the model's answers against fresh device
/// references (accept if at most `replay_threshold` of the bits differ —
/// between honest noise and a coin-flip forgery).
AttackReport replay_generic(PufVariant& device, const AttackRunConfig& config,
                            const mlattack::LogRegParams& params,
                            Xoshiro256pp& rng) {
  AttackReport report;
  report.budget = config.budget;

  QueryOracle oracle(device, config.budget);
  const auto train = oracle.collect(config.budget, rng);
  report.queries_used = oracle.used();

  const std::size_t dim = train.empty() ? 1 : train.front().features.size();
  mlattack::LogisticRegression model(dim);
  model.train(train, params, rng);
  report.train_accuracy = model.accuracy(train);

  device.finish_training();

  std::size_t accepted = 0;
  for (std::size_t round = 0; round < config.replay_rounds; ++round) {
    std::size_t mismatched = 0;
    for (std::size_t q = 0; q < config.replay_challenges; ++q) {
      const BitVector challenge =
          BitVector::random(device.challenge_bits(), rng);
      const bool reference = device.query(challenge, rng);
      if (model.predict(device.features(challenge)) != reference) {
        ++mismatched;
      }
    }
    const double frac = config.replay_challenges == 0
                            ? 1.0
                            : static_cast<double>(mismatched) /
                                  config.replay_challenges;
    if (frac <= config.replay_threshold) ++accepted;
  }
  report.replay_acceptance =
      config.replay_rounds == 0
          ? 0.0
          : static_cast<double>(accepted) / config.replay_rounds;
  report.test_accuracy = report.replay_acceptance;
  return report;
}

}  // namespace

AttackReport ReplayAttack::run(PufVariant& device, const AttackRunConfig& config,
                               Xoshiro256pp& rng) const {
  if (const AttestationSurface* surface = device.attestation_surface()) {
    return replay_against_surface(*surface, config, params_, rng);
  }
  return replay_generic(device, config, params_, rng);
}

}  // namespace pufatt::adversary
