// ALU-PUF-backed variants: the raw response-bit interface (invasive
// access) and the full obfuscated pipeline with its attestation replay
// surface.  All CRP harvesting rides AluPuf::eval_batch /
// PufDevice::query_batch so the timing kernel is the bit-sliced engine at
// fleet budgets; by the exactness contract the engine choice never moves a
// harvested byte.
#include <array>
#include <stdexcept>

#include "adversary/variant.hpp"
#include "alupuf/pipeline.hpp"
#include "ecc/reed_muller.hpp"
#include "mlattack/dataset.hpp"

namespace pufatt::adversary {

using support::BitVector;
using support::Xoshiro256pp;

namespace {

unsigned rm_order_for_width(std::size_t width) {
  unsigned m = 0;
  while ((std::size_t{1} << m) < width) ++m;
  if ((std::size_t{1} << m) != width || m < 2) {
    throw std::invalid_argument(
        "adversary: ALU variant width must be a power of two >= 4 (RM(1,m) "
        "helper code)");
  }
  return m;
}

class AluRawBitVariant final : public PufVariant {
 public:
  AluRawBitVariant(const AluVariantParams& params, std::uint64_t chip_seed)
      : bit_(params.bit),
        engine_(params.engine),
        puf_(
            [&] {
              alupuf::AluPufConfig config;
              config.width = params.width;
              return config;
            }(),
            chip_seed) {
    if (bit_ >= puf_.response_bits()) {
      throw std::invalid_argument("AluRawBitVariant: bit out of range");
    }
    puf_.prewarm(variation::Environment::nominal());
  }

  std::string name() const override {
    return "alu-raw-b" + std::to_string(bit_);
  }
  std::size_t challenge_bits() const override { return puf_.challenge_bits(); }

  std::vector<double> features(const BitVector& challenge) const override {
    return mlattack::alu_features(challenge);
  }

  bool query(const BitVector& challenge, Xoshiro256pp& rng) const override {
    std::uint8_t out = 0;
    query_batch(&challenge, 1, &out, rng);
    return out != 0;
  }

  void query_batch(const BitVector* challenges, std::size_t count,
                   std::uint8_t* out, Xoshiro256pp& rng) const override {
    const auto responses =
        puf_.eval_batch(challenges, count, variation::Environment::nominal(),
                        rng, /*clock=*/nullptr, /*scratch=*/nullptr, engine_);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = responses[i].get(bit_) ? 1 : 0;
    }
  }

 private:
  std::size_t bit_;
  timingsim::BatchEngine engine_;
  alupuf::AluPuf puf_;
};

class ObfuscatedAluVariant;

/// The real attestation loop around the obfuscated variant: forged
/// transcripts are judged by the verifier-side PufEmulator with its
/// distance budgets, exactly as an attestation session would.
class AluAttestationSurface final : public AttestationSurface {
 public:
  explicit AluAttestationSurface(const ObfuscatedAluVariant& owner)
      : owner_(&owner) {}

  std::size_t raw_challenge_bits() const override;
  std::size_t raw_response_bits() const override;
  std::vector<RawCrp> collect_raw(std::size_t count,
                                  Xoshiro256pp& rng) const override;
  bool replay_trial(const RawResponder& respond,
                    Xoshiro256pp& rng) const override;
  double leaked_model_acceptance(std::size_t rounds,
                                 Xoshiro256pp& rng) const override;

 private:
  const ObfuscatedAluVariant* owner_;
};

class ObfuscatedAluVariant final : public PufVariant {
 public:
  ObfuscatedAluVariant(const AluVariantParams& params, std::uint64_t chip_seed)
      : bit_(params.bit),
        engine_(params.engine),
        code_(rm_order_for_width(params.width)),
        device_(
            [&] {
              alupuf::AluPufConfig config;
              config.width = params.width;
              return config;
            }(),
            chip_seed, code_),
        emulator_(params.width, device_.export_model(), code_),
        helper_(code_),
        obfuscation_(params.width,
                     alupuf::ObfuscationNetwork::Pairing::kHardened),
        surface_(*this) {
    if (bit_ >= device_.output_bits()) {
      throw std::invalid_argument("ObfuscatedAluVariant: bit out of range");
    }
    device_.prewarm(variation::Environment::nominal());
    emulator_.raw_emulator().prewarm(variation::Environment::nominal());
  }

  std::string name() const override { return "alu-obf-b" + std::to_string(bit_); }
  std::size_t challenge_bits() const override { return 64; }

  std::vector<double> features(const BitVector& challenge) const override {
    return mlattack::word_features(challenge.to_u64());
  }

  bool query(const BitVector& challenge, Xoshiro256pp& rng) const override {
    std::uint8_t out = 0;
    query_batch(&challenge, 1, &out, rng);
    return out != 0;
  }

  void query_batch(const BitVector* challenges, std::size_t count,
                   std::uint8_t* out, Xoshiro256pp& rng) const override {
    std::vector<std::uint64_t> xs(count);
    for (std::size_t i = 0; i < count; ++i) xs[i] = challenges[i].to_u64();
    const auto results = device_.query_batch(
        xs.data(), count, variation::Environment::nominal(), rng,
        /*clock=*/nullptr, /*scratch=*/nullptr, engine_);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = results[i].z.get(bit_) ? 1 : 0;
    }
  }

  const AttestationSurface* attestation_surface() const override {
    return &surface_;
  }

  // --- surface internals ----------------------------------------------------

  std::size_t raw_challenge_bits() const { return device_.raw_puf().challenge_bits(); }
  std::size_t raw_response_bits() const { return device_.raw_puf().response_bits(); }

  std::vector<RawCrp> collect_raw(std::size_t count, Xoshiro256pp& rng) const {
    std::vector<BitVector> challenges;
    challenges.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      challenges.push_back(BitVector::random(raw_challenge_bits(), rng));
    }
    const auto responses = device_.raw_puf().eval_batch(
        challenges.data(), count, variation::Environment::nominal(), rng,
        /*clock=*/nullptr, /*scratch=*/nullptr, engine_);
    std::vector<RawCrp> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(RawCrp{std::move(challenges[i]), responses[i]});
    }
    return out;
  }

  bool replay_trial(const RawResponder& respond, Xoshiro256pp& rng) const {
    constexpr std::size_t kPer = alupuf::ObfuscationNetwork::kResponsesPerOutput;
    const std::uint64_t x = rng.next();  // the verifier's fresh challenge
    const auto raw = alupuf::ChallengeExpander::expand(x, raw_response_bits());
    std::array<BitVector, kPer> predicted;
    std::vector<BitVector> helpers;
    helpers.reserve(kPer);
    for (std::size_t r = 0; r < kPer; ++r) {
      predicted[r] = respond(raw[r]);
      if (predicted[r].size() != raw_response_bits()) {
        throw std::invalid_argument("replay_trial: responder width mismatch");
      }
      helpers.push_back(helper_.generate(predicted[r]));
    }
    const BitVector z = obfuscation_.obfuscate(predicted);
    const auto verdict = emulator_.emulate(x, helpers);
    return verdict.has_value() && *verdict == z;
  }

  double leaked_model_acceptance(std::size_t rounds, Xoshiro256pp& rng) const {
    // The attacker holds the enrollment model H itself: its "measurements"
    // are the verifier's own error-free references (Gao'17).
    const RawResponder oracle = [this](const BitVector& challenge) {
      return emulator_.raw_emulator().eval(challenge);
    };
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < rounds; ++i) {
      if (replay_trial(oracle, rng)) ++accepted;
    }
    return rounds == 0 ? 0.0 : static_cast<double>(accepted) / rounds;
  }

 private:
  std::size_t bit_;
  timingsim::BatchEngine engine_;
  ecc::ReedMuller1 code_;
  alupuf::PufDevice device_;
  alupuf::PufEmulator emulator_;
  ecc::SyndromeHelper helper_;
  alupuf::ObfuscationNetwork obfuscation_;
  AluAttestationSurface surface_;
};

std::size_t AluAttestationSurface::raw_challenge_bits() const {
  return owner_->raw_challenge_bits();
}
std::size_t AluAttestationSurface::raw_response_bits() const {
  return owner_->raw_response_bits();
}
std::vector<RawCrp> AluAttestationSurface::collect_raw(
    std::size_t count, Xoshiro256pp& rng) const {
  return owner_->collect_raw(count, rng);
}
bool AluAttestationSurface::replay_trial(const RawResponder& respond,
                                         Xoshiro256pp& rng) const {
  return owner_->replay_trial(respond, rng);
}
double AluAttestationSurface::leaked_model_acceptance(std::size_t rounds,
                                                      Xoshiro256pp& rng) const {
  return owner_->leaked_model_acceptance(rounds, rng);
}

}  // namespace

std::unique_ptr<PufVariant> make_alu_raw_variant(const AluVariantParams& params,
                                                 std::uint64_t chip_seed) {
  return std::make_unique<AluRawBitVariant>(params, chip_seed);
}

std::unique_ptr<PufVariant> make_obfuscated_alu_variant(
    const AluVariantParams& params, std::uint64_t chip_seed) {
  return std::make_unique<ObfuscatedAluVariant>(params, chip_seed);
}

}  // namespace pufatt::adversary
