// The four attack columns of the matrix.
//
//  * LR      — logistic regression on the variant's feature map (Ruehrmair
//              CCS'10), adapting mlattack::LogisticRegression.
//  * MLP     — one-hidden-layer perceptron (src/adversary/mlp.hpp); can
//              express the XOR of a few halfspaces where LR cannot.
//  * CMA-ES  — separable CMA-ES direct search over a linear additive-delay
//              model in feature space (gradient-free; the evolution-strategy
//              track of the original modeling-attack papers).
//  * Replay  — Gao'17 model-assisted error-free-response replay
//              (arXiv:1701.08241).  Against variants exposing an
//              AttestationSurface it harvests raw CRPs, trains per-bit
//              models, forges full transcripts and is judged by the real
//              verifier; against plain variants it runs a generic
//              threshold-verifier authentication loop.  Its headline number
//              is the replay-acceptance rate.
#pragma once

#include "adversary/attack.hpp"
#include "adversary/cmaes.hpp"
#include "adversary/mlp.hpp"

namespace pufatt::adversary {

class LogRegAttack final : public ModelAttack {
 public:
  explicit LogRegAttack(const mlattack::LogRegParams& params = {})
      : params_(params) {}
  std::string name() const override { return "lr"; }

 protected:
  std::unique_ptr<Predictor> fit(const std::vector<mlattack::Example>& train,
                                 support::Xoshiro256pp& rng) const override;

 private:
  mlattack::LogRegParams params_;
};

class MlpAttack final : public ModelAttack {
 public:
  explicit MlpAttack(const MlpParams& params = {}) : params_(params) {}
  std::string name() const override { return "mlp"; }

 protected:
  std::unique_ptr<Predictor> fit(const std::vector<mlattack::Example>& train,
                                 support::Xoshiro256pp& rng) const override;

 private:
  MlpParams params_;
};

class CmaesAttack final : public ModelAttack {
 public:
  struct Params {
    CmaesParams cmaes;
    /// Fitness evaluations subsample the training set to this many examples
    /// (logistic loss; full-set evaluation would dominate the cell's cost).
    std::size_t fitness_subsample = 8000;
  };
  CmaesAttack() = default;
  explicit CmaesAttack(const Params& params) : params_(params) {}
  std::string name() const override { return "cmaes"; }

 protected:
  std::unique_ptr<Predictor> fit(const std::vector<mlattack::Example>& train,
                                 support::Xoshiro256pp& rng) const override;

 private:
  Params params_;
};

class ReplayAttack final : public Attack {
 public:
  explicit ReplayAttack(const mlattack::LogRegParams& params = {})
      : params_(params) {}
  std::string name() const override { return "replay"; }

  AttackReport run(PufVariant& device, const AttackRunConfig& config,
                   support::Xoshiro256pp& rng) const override;

 private:
  mlattack::LogRegParams params_;
};

}  // namespace pufatt::adversary
