#include "adversary/mlp.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pufatt::adversary {

namespace {

double sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Mlp::Mlp(std::size_t num_features, std::size_t hidden_units,
         support::Xoshiro256pp& rng)
    : num_features_(num_features), hidden_(hidden_units) {
  if (num_features_ == 0 || hidden_ == 0) {
    throw std::invalid_argument("Mlp: zero-sized layer");
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(num_features_));
  w1_.resize(hidden_ * num_features_);
  for (double& w : w1_) w = rng.gaussian(0.0, scale);
  b1_.assign(hidden_, 0.0);
  w2_.resize(hidden_);
  const double scale2 = 1.0 / std::sqrt(static_cast<double>(hidden_));
  for (double& w : w2_) w = rng.gaussian(0.0, scale2);
  b2_ = 0.0;
}

double Mlp::predict_probability(const std::vector<double>& features) const {
  if (features.size() != num_features_) {
    throw std::invalid_argument("Mlp: feature width mismatch");
  }
  double out = b2_;
  for (std::size_t h = 0; h < hidden_; ++h) {
    const double* row = &w1_[h * num_features_];
    double z = b1_[h];
    for (std::size_t j = 0; j < num_features_; ++j) z += row[j] * features[j];
    out += w2_[h] * std::tanh(z);
  }
  return sigmoid(out);
}

void Mlp::train(const std::vector<mlattack::Example>& dataset,
                const MlpParams& params, support::Xoshiro256pp& rng) {
  if (dataset.empty()) return;
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  // Momentum buffers mirror the parameter layout.
  std::vector<double> vw1(w1_.size(), 0.0), vb1(hidden_, 0.0),
      vw2(hidden_, 0.0);
  double vb2 = 0.0;
  // Per-batch gradient accumulators.
  std::vector<double> gw1(w1_.size()), gb1(hidden_), gw2(hidden_);
  std::vector<double> act(hidden_);

  const std::size_t batch = std::max<std::size_t>(1, params.batch_size);
  for (std::size_t epoch = 0; epoch < params.epochs; ++epoch) {
    // Fisher-Yates shuffle with the caller's deterministic stream.
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j = rng.next() % i;
      std::swap(order[i - 1], order[j]);
    }
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t end = std::min(order.size(), start + batch);
      std::fill(gw1.begin(), gw1.end(), 0.0);
      std::fill(gb1.begin(), gb1.end(), 0.0);
      std::fill(gw2.begin(), gw2.end(), 0.0);
      double gb2 = 0.0;
      for (std::size_t k = start; k < end; ++k) {
        const mlattack::Example& ex = dataset[order[k]];
        double out = b2_;
        for (std::size_t h = 0; h < hidden_; ++h) {
          const double* row = &w1_[h * num_features_];
          double z = b1_[h];
          for (std::size_t j = 0; j < num_features_; ++j) {
            z += row[j] * ex.features[j];
          }
          act[h] = std::tanh(z);
          out += w2_[h] * act[h];
        }
        // d(logloss)/d(out) for a sigmoid output.
        const double delta = sigmoid(out) - (ex.label ? 1.0 : 0.0);
        gb2 += delta;
        for (std::size_t h = 0; h < hidden_; ++h) {
          gw2[h] += delta * act[h];
          const double dh = delta * w2_[h] * (1.0 - act[h] * act[h]);
          gb1[h] += dh;
          double* grow = &gw1[h * num_features_];
          for (std::size_t j = 0; j < num_features_; ++j) {
            grow[j] += dh * ex.features[j];
          }
        }
      }
      const double inv = 1.0 / static_cast<double>(end - start);
      const double lr = params.learning_rate;
      for (std::size_t i = 0; i < w1_.size(); ++i) {
        vw1[i] = params.momentum * vw1[i] -
                 lr * (gw1[i] * inv + params.l2 * w1_[i]);
        w1_[i] += vw1[i];
      }
      for (std::size_t h = 0; h < hidden_; ++h) {
        vb1[h] = params.momentum * vb1[h] - lr * gb1[h] * inv;
        b1_[h] += vb1[h];
        vw2[h] = params.momentum * vw2[h] -
                 lr * (gw2[h] * inv + params.l2 * w2_[h]);
        w2_[h] += vw2[h];
      }
      vb2 = params.momentum * vb2 - lr * gb2 * inv;
      b2_ += vb2;
    }
  }
}

double Mlp::accuracy(const std::vector<mlattack::Example>& dataset) const {
  if (dataset.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& ex : dataset) {
    if (predict(ex.features) == ex.label) ++correct;
  }
  return static_cast<double>(correct) / dataset.size();
}

}  // namespace pufatt::adversary
