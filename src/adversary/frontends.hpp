// Composable challenge-obfuscation front ends (the defence rows of the
// attack matrix that come from PAPERS.md rather than the source paper).
//
//  * Keyed-NLFSR challenge obfuscation (Stangherlin et al.,
//    arXiv:2207.11181): the visible challenge seeds a nonlinear feedback
//    shift register keyed with a device secret; after 2n rounds the state
//    is the challenge the inner PUF actually races.  The AND terms in the
//    feedback destroy the linear/parity structure every additive-delay
//    attack leans on, so a model trained on visible challenges learns
//    (almost) nothing.
//
//  * Reconfigurable latent obfuscation (Gao et al., arXiv:1706.06232;
//    Spenke et al., arXiv:1610.04065): the device XORs a secret latent
//    mask into the challenge and *re-derives the mask* when it
//    reconfigures.  Within one configuration the composite is still an
//    additive-delay PUF (phi_i(c ^ m) = phi_i(c) * s_i(m), a pure sign
//    flip in parity-feature space) — deliberately so: the attacker's model
//    trains beautifully, and then finish_training() rotates the epoch and
//    every learned sign goes stale.  This isolates exactly the
//    reconfiguration claim: train accuracy stays high, held-out accuracy
//    collapses to a coin flip.
#pragma once

#include <memory>

#include "adversary/variant.hpp"

namespace pufatt::adversary {

/// Wraps `inner` behind a keyed NLFSR: visible challenges are scrambled by
/// `2 * challenge_bits()` rounds of a keyed nonlinear FSR before reaching
/// the inner PUF.  The key derives from `key_seed` and never leaves the
/// device.
std::unique_ptr<PufVariant> make_nlfsr_frontend(
    std::unique_ptr<PufVariant> inner, std::uint64_t key_seed);

/// Wraps `inner` behind a reconfigurable latent XOR mask derived from
/// (`key_seed`, epoch).  finish_training() advances the epoch — the
/// device and its verifier re-key in lockstep, the attacker's model does
/// not.
std::unique_ptr<PufVariant> make_latent_reconfig_frontend(
    std::unique_ptr<PufVariant> inner, std::uint64_t key_seed);

/// The keyed scramble itself, exposed for tests: deterministic in
/// (challenge, key_seed, rounds).
support::BitVector nlfsr_scramble(const support::BitVector& challenge,
                                  std::uint64_t key_seed, std::size_t rounds);

}  // namespace pufatt::adversary
