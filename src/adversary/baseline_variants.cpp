// Baseline delay-PUF variants: plain Arbiter, k-XOR Arbiter, and the
// MUX/arbiter additive-delay baseline, plus the shared harvesting helpers.
#include <stdexcept>

#include "adversary/variant.hpp"
#include "alupuf/arbiter_puf.hpp"

namespace pufatt::adversary {

using support::BitVector;
using support::Xoshiro256pp;

void PufVariant::query_batch(const BitVector* challenges, std::size_t count,
                             std::uint8_t* out, Xoshiro256pp& rng) const {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = query(challenges[i], rng) ? 1 : 0;
  }
}

namespace {

std::vector<mlattack::Example> harvest(const PufVariant& variant,
                                       std::size_t count, Xoshiro256pp& rng) {
  std::vector<BitVector> challenges;
  challenges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    challenges.push_back(BitVector::random(variant.challenge_bits(), rng));
  }
  std::vector<std::uint8_t> labels(count);
  variant.query_batch(challenges.data(), count, labels.data(), rng);
  std::vector<mlattack::Example> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(
        mlattack::Example{variant.features(challenges[i]), labels[i] != 0});
  }
  return out;
}

}  // namespace

std::vector<mlattack::Example> QueryOracle::collect(std::size_t n,
                                                    Xoshiro256pp& rng) {
  const std::size_t take = std::min(n, remaining());
  used_ += take;
  return harvest(*variant_, take, rng);
}

std::vector<mlattack::Example> harvest_examples(const PufVariant& variant,
                                                std::size_t count,
                                                Xoshiro256pp& rng) {
  return harvest(variant, count, rng);
}

namespace {

class ArbiterVariant final : public PufVariant {
 public:
  ArbiterVariant(const ArbiterVariantParams& params, std::uint64_t chip_seed)
      : puf_({.stages = params.stages, .noise_sigma = params.noise_sigma},
             chip_seed) {}

  std::string name() const override { return "arbiter"; }
  std::size_t challenge_bits() const override { return puf_.challenge_bits(); }

  std::vector<double> features(const BitVector& challenge) const override {
    return alupuf::ArbiterPuf::features(challenge);
  }

  bool query(const BitVector& challenge, Xoshiro256pp& rng) const override {
    return puf_.eval(challenge, rng);
  }

 private:
  alupuf::ArbiterPuf puf_;
};

class XorArbiterVariant final : public PufVariant {
 public:
  XorArbiterVariant(std::size_t k, const ArbiterVariantParams& params,
                    std::uint64_t chip_seed)
      : k_(k),
        puf_(k, {.stages = params.stages, .noise_sigma = params.noise_sigma},
             chip_seed) {}

  std::string name() const override {
    return "xor-arbiter-k" + std::to_string(k_);
  }
  std::size_t challenge_bits() const override { return puf_.challenge_bits(); }

  std::vector<double> features(const BitVector& challenge) const override {
    return alupuf::ArbiterPuf::features(challenge);
  }

  bool query(const BitVector& challenge, Xoshiro256pp& rng) const override {
    return puf_.eval(challenge, rng);
  }

 private:
  std::size_t k_;
  alupuf::XorArbiterPuf puf_;
};

/// MUX/arbiter PUF in the direct additive delay domain: stage i contributes
/// one of four independently manufactured segment delays to each path, and
/// a challenge bit of 1 crosses the paths.  Functionally the same model
/// class as ArbiterPuf, but parameterized by raw segment delays instead of
/// parity-domain weights — the representation CMA-ES searches over.
class MuxArbiterVariant final : public PufVariant {
 public:
  MuxArbiterVariant(const ArbiterVariantParams& params, std::uint64_t chip_seed)
      : noise_sigma_(params.noise_sigma) {
    Xoshiro256pp fab(support::SplitMix64::mix(chip_seed ^ 0x3A8FD2C917E64B05ULL));
    const std::size_t n = params.stages;
    straight_top_.resize(n);
    straight_bot_.resize(n);
    crossed_top_.resize(n);
    crossed_bot_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Unit nominal segment delay with full-strength mismatch; only delay
      // *differences* matter for the race.
      straight_top_[i] = fab.gaussian(1.0, 1.0);
      straight_bot_[i] = fab.gaussian(1.0, 1.0);
      crossed_top_[i] = fab.gaussian(1.0, 1.0);
      crossed_bot_[i] = fab.gaussian(1.0, 1.0);
    }
  }

  std::string name() const override { return "mux-arbiter"; }
  std::size_t challenge_bits() const override { return straight_top_.size(); }

  std::vector<double> features(const BitVector& challenge) const override {
    return alupuf::ArbiterPuf::features(challenge);
  }

  bool query(const BitVector& challenge, Xoshiro256pp& rng) const override {
    if (challenge.size() != challenge_bits()) {
      throw std::invalid_argument("MuxArbiterVariant: challenge size");
    }
    double top = 0.0, bot = 0.0;
    for (std::size_t i = 0; i < challenge.size(); ++i) {
      if (challenge.get(i)) {
        const double new_top = bot + crossed_top_[i];
        bot = top + crossed_bot_[i];
        top = new_top;
      } else {
        top += straight_top_[i];
        bot += straight_bot_[i];
      }
    }
    return top - bot + noise_sigma_ * rng.gaussian() > 0.0;
  }

 private:
  double noise_sigma_;
  std::vector<double> straight_top_, straight_bot_;
  std::vector<double> crossed_top_, crossed_bot_;
};

}  // namespace

std::unique_ptr<PufVariant> make_arbiter_variant(
    const ArbiterVariantParams& params, std::uint64_t chip_seed) {
  return std::make_unique<ArbiterVariant>(params, chip_seed);
}

std::unique_ptr<PufVariant> make_xor_arbiter_variant(
    std::size_t k, const ArbiterVariantParams& params,
    std::uint64_t chip_seed) {
  return std::make_unique<XorArbiterVariant>(k, params, chip_seed);
}

std::unique_ptr<PufVariant> make_mux_arbiter_variant(
    const ArbiterVariantParams& params, std::uint64_t chip_seed) {
  return std::make_unique<MuxArbiterVariant>(params, chip_seed);
}

}  // namespace pufatt::adversary
