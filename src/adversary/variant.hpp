// Adversary lab: the defender side of the (variant x attack) tournament.
//
// A PufVariant wraps a challenge/response front end around some underlying
// PUF and exposes exactly the surface a modeling adversary gets to touch:
// a visible challenge space, a noisy single-bit query, and a feature map
// (the attacker's own encoding of what it sees — the variant carries it so
// every attack runs on the encoding the literature attacks that variant
// with).  Composable front ends (keyed-NLFSR challenge obfuscation,
// reconfigurable latent obfuscation) wrap an inner variant and transform
// challenges before they reach it, which is how the lab turns PAPERS.md
// defences into rows of the attack matrix.
//
// Variants with a full attestation pipeline behind them additionally expose
// an AttestationSurface, the handle for Gao'17-style model-assisted
// error-free-response replay (src/adversary/attacks.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mlattack/logreg.hpp"
#include "support/bitvec.hpp"
#include "support/rng.hpp"
#include "timingsim/bitslice.hpp"

namespace pufatt::adversary {

/// One raw CRP harvested through an AttestationSurface (invasive phase of
/// the replay attack: one physical query yields the full response word).
struct RawCrp {
  support::BitVector challenge;
  support::BitVector response;
};

/// Produces the attacker's predicted raw response for a raw challenge.
using RawResponder =
    std::function<support::BitVector(const support::BitVector& challenge)>;

/// Attestation-protocol attack surface, exposed by variants that front a
/// complete PUF() pipeline (helper data + obfuscation + verifier).  The
/// replay attack trains per-bit models of the raw responses and then forges
/// whole transcripts; acceptance is decided by the real verifier-side
/// emulator with its distance budgets.
class AttestationSurface {
 public:
  virtual ~AttestationSurface() = default;

  virtual std::size_t raw_challenge_bits() const = 0;
  virtual std::size_t raw_response_bits() const = 0;

  /// Invasive training harvest: `count` raw CRPs on random challenges
  /// (each costs the attacker one query of budget).
  virtual std::vector<RawCrp> collect_raw(std::size_t count,
                                          support::Xoshiro256pp& rng) const = 0;

  /// One verifier call: the verifier issues a fresh protocol challenge; the
  /// attacker answers with model-predicted raw responses, from which it
  /// assembles helper data and the obfuscated response exactly as an honest
  /// device would (the algorithms are public; only the silicon is secret).
  /// Returns whether the verifier accepted the forged transcript.  An
  /// attestation session strings several calls (AttackRunConfig::
  /// replay_session_calls), all of which must pass.
  virtual bool replay_trial(const RawResponder& respond,
                            support::Xoshiro256pp& rng) const = 0;

  /// Trust-assumption probe: acceptance rate of an attacker holding the
  /// verifier's own enrollment model H (error-free responses, Gao'17).
  /// PUFatt's security rests on H staying secret — this measures how
  /// completely attestation collapses when it leaks.
  virtual double leaked_model_acceptance(std::size_t rounds,
                                         support::Xoshiro256pp& rng) const = 0;
};

/// A PUF behind an attacker-visible challenge/response front end.
class PufVariant {
 public:
  virtual ~PufVariant() = default;

  virtual std::string name() const = 0;

  /// Width of the visible challenge space.
  virtual std::size_t challenge_bits() const = 0;

  /// The attack-visible feature map (includes a bias term).  Model-based
  /// attacks train in this space; front ends deliberately leave it at the
  /// inner variant's map applied to the *visible* challenge — the attacker
  /// does not know the key that separates the two.
  virtual std::vector<double> features(
      const support::BitVector& challenge) const = 0;

  /// One noisy evaluation of the visible response bit.
  virtual bool query(const support::BitVector& challenge,
                     support::Xoshiro256pp& rng) const = 0;

  /// Batched queries: out[i] in {0,1}.  The default loops `query`; timing-
  /// engine-backed variants override this to ride the bit-sliced
  /// BatchEngine so million-query budgets stay fast.  Engine choice must
  /// never move a response byte (the repo's exactness contract).
  virtual void query_batch(const support::BitVector* challenges,
                           std::size_t count, std::uint8_t* out,
                           support::Xoshiro256pp& rng) const;

  /// Called once when the attack's query budget is spent, before held-out
  /// evaluation: "time passes".  Reconfigurable variants re-key here
  /// (Gao'17 latent obfuscation) — the verifier is assumed synchronized,
  /// the attacker's trained model is not.  Default: nothing changes.
  virtual void finish_training() {}

  /// Non-null for variants fronting a full attestation pipeline.
  virtual const AttestationSurface* attestation_surface() const {
    return nullptr;
  }
};

/// Budget-accounted CRP harvesting: every labeled example an attack trains
/// on flows through here, so `used()` is the cell's ground-truth query
/// count.  Collection is one query_batch call per request (fixed batch
/// boundaries keep the harvested dataset reproducible).
class QueryOracle {
 public:
  QueryOracle(const PufVariant& variant, std::size_t budget)
      : variant_(&variant), budget_(budget) {}

  /// Harvests min(n, remaining()) labeled examples in the variant's
  /// feature space.
  std::vector<mlattack::Example> collect(std::size_t n,
                                         support::Xoshiro256pp& rng);

  std::size_t budget() const { return budget_; }
  std::size_t used() const { return used_; }
  std::size_t remaining() const { return budget_ - used_; }

 private:
  const PufVariant* variant_;
  std::size_t budget_ = 0;
  std::size_t used_ = 0;
};

/// Unbudgeted harvest (held-out test sets, verifier references).
std::vector<mlattack::Example> harvest_examples(const PufVariant& variant,
                                                std::size_t count,
                                                support::Xoshiro256pp& rng);

// ----------------------------------------------------------------- variants

struct ArbiterVariantParams {
  std::size_t stages = 64;
  double noise_sigma = 0.05;
};

/// Plain Arbiter PUF (the textbook LR break).
std::unique_ptr<PufVariant> make_arbiter_variant(
    const ArbiterVariantParams& params, std::uint64_t chip_seed);

/// k-XOR Arbiter PUF (linear models cannot express the XOR of k
/// halfspaces).
std::unique_ptr<PufVariant> make_xor_arbiter_variant(
    std::size_t k, const ArbiterVariantParams& params, std::uint64_t chip_seed);

/// MUX/arbiter additive-delay baseline (Venkata'20): two paths race through
/// a chain of 2:1 MUX stages, four independent segment delays per stage.
/// The delay difference is an exact linear function of the parity features,
/// which is what makes this the analytically attackable row (CMA-ES over
/// the additive delay model recovers it by direct search).
std::unique_ptr<PufVariant> make_mux_arbiter_variant(
    const ArbiterVariantParams& params, std::uint64_t chip_seed);

struct AluVariantParams {
  std::size_t width = 32;   ///< adder width (challenge = 2*width bits)
  std::size_t bit = 16;     ///< which response/output bit the attacker models
  timingsim::BatchEngine engine = timingsim::BatchEngine::kAuto;
};

/// One raw ALU PUF response bit (pre-obfuscation; the invasive-access
/// interface).  CRP harvesting rides AluPuf::eval_batch.
std::unique_ptr<PufVariant> make_alu_raw_variant(const AluVariantParams& params,
                                                 std::uint64_t chip_seed);

/// One obfuscated output bit of the full PUF() pipeline (the protocol
/// interface), plus the AttestationSurface for replay attacks.  `width`
/// must have a matching RM(1,m) code (16 or 32 in practice).
std::unique_ptr<PufVariant> make_obfuscated_alu_variant(
    const AluVariantParams& params, std::uint64_t chip_seed);

}  // namespace pufatt::adversary
