#include "adversary/frontends.hpp"

#include <stdexcept>
#include <utility>

namespace pufatt::adversary {

using support::BitVector;
using support::Xoshiro256pp;

BitVector nlfsr_scramble(const BitVector& challenge, std::uint64_t key_seed,
                         std::size_t rounds) {
  const std::size_t n = challenge.size();
  if (n < 8) {
    throw std::invalid_argument("nlfsr_scramble: challenge too short");
  }
  // Keystream: one bit per round, derived from the device key.
  support::Xoshiro256pp key(
      support::SplitMix64::mix(key_seed ^ 0x6E1F5B3A9C0D4712ULL));
  BitVector state = challenge;
  // Tap positions spread over the register; the AND taps make the feedback
  // nonlinear (degree-2 terms compound over rounds into high degree).
  const std::size_t t1 = n / 3, t2 = n / 2, t3 = (2 * n) / 3, t4 = n - 2;
  std::uint64_t keyword = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    if (r % 64 == 0) keyword = key.next();
    const bool key_bit = ((keyword >> (r % 64)) & 1ULL) != 0;
    const bool fb = state.get(0) ^ state.get(t1) ^
                    (state.get(t2) & state.get(t3)) ^
                    (state.get(t4) & state.get(1)) ^ key_bit;
    // Shift down by one, feedback enters at the top.
    for (std::size_t i = 0; i + 1 < n; ++i) state.set(i, state.get(i + 1));
    state.set(n - 1, fb);
  }
  return state;
}

namespace {

class NlfsrFrontend final : public PufVariant {
 public:
  NlfsrFrontend(std::unique_ptr<PufVariant> inner, std::uint64_t key_seed)
      : inner_(std::move(inner)), key_seed_(key_seed) {}

  std::string name() const override { return "nlfsr-" + inner_->name(); }
  std::size_t challenge_bits() const override {
    return inner_->challenge_bits();
  }

  std::vector<double> features(const BitVector& challenge) const override {
    // The attacker featurizes what it sees; the key that separates the
    // visible challenge from the raced one is exactly what it lacks.
    return inner_->features(challenge);
  }

  bool query(const BitVector& challenge, Xoshiro256pp& rng) const override {
    return inner_->query(scramble(challenge), rng);
  }

  void query_batch(const BitVector* challenges, std::size_t count,
                   std::uint8_t* out, Xoshiro256pp& rng) const override {
    std::vector<BitVector> scrambled;
    scrambled.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      scrambled.push_back(scramble(challenges[i]));
    }
    inner_->query_batch(scrambled.data(), count, out, rng);
  }

  void finish_training() override { inner_->finish_training(); }

 private:
  BitVector scramble(const BitVector& c) const {
    return nlfsr_scramble(c, key_seed_, 2 * c.size());
  }

  std::unique_ptr<PufVariant> inner_;
  std::uint64_t key_seed_;
};

class LatentReconfigFrontend final : public PufVariant {
 public:
  LatentReconfigFrontend(std::unique_ptr<PufVariant> inner,
                         std::uint64_t key_seed)
      : inner_(std::move(inner)), key_seed_(key_seed) {
    reconfigure();
  }

  std::string name() const override { return "latent-" + inner_->name(); }
  std::size_t challenge_bits() const override {
    return inner_->challenge_bits();
  }

  std::vector<double> features(const BitVector& challenge) const override {
    return inner_->features(challenge);
  }

  bool query(const BitVector& challenge, Xoshiro256pp& rng) const override {
    return inner_->query(challenge ^ mask_, rng);
  }

  void query_batch(const BitVector* challenges, std::size_t count,
                   std::uint8_t* out, Xoshiro256pp& rng) const override {
    std::vector<BitVector> masked;
    masked.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      masked.push_back(challenges[i] ^ mask_);
    }
    inner_->query_batch(masked.data(), count, out, rng);
  }

  void finish_training() override {
    ++epoch_;
    reconfigure();
    inner_->finish_training();
  }

 private:
  void reconfigure() {
    Xoshiro256pp derive(support::SplitMix64::mix(
        key_seed_ ^ (0x9D2C5680CA876A51ULL + epoch_)));
    mask_ = BitVector::random(inner_->challenge_bits(), derive);
  }

  std::unique_ptr<PufVariant> inner_;
  std::uint64_t key_seed_;
  std::size_t epoch_ = 0;
  BitVector mask_;
};

}  // namespace

std::unique_ptr<PufVariant> make_nlfsr_frontend(
    std::unique_ptr<PufVariant> inner, std::uint64_t key_seed) {
  return std::make_unique<NlfsrFrontend>(std::move(inner), key_seed);
}

std::unique_ptr<PufVariant> make_latent_reconfig_frontend(
    std::unique_ptr<PufVariant> inner, std::uint64_t key_seed) {
  return std::make_unique<LatentReconfigFrontend>(std::move(inner), key_seed);
}

}  // namespace pufatt::adversary
