// The attacker side of the tournament: an Attack spends a query budget
// against a PufVariant and reports what it learned.
//
// Model-based attacks (LR, MLP, CMA-ES) share one protocol, enforced by
// the tournament runner so every cell is measured identically:
//   1. harvest a budget-accounted training set through the variant's
//      query interface (QueryOracle),
//   2. fit a Predictor,
//   3. the variant's finish_training() fires ("time passes" — this is
//      where reconfigurable defences re-key),
//   4. held-out accuracy is measured on fresh CRPs.
// The replay attack follows the same budget discipline but its headline
// number is the replay-acceptance rate against the variant's verifier.
#pragma once

#include <memory>
#include <string>

#include "adversary/variant.hpp"

namespace pufatt::adversary {

/// What one (variant, attack, budget) cell reports.  Everything here is a
/// pure function of (variant seed, cell seed, budget) — no wall-clock, no
/// thread artifacts — so the tournament matrix is byte-stable.
struct AttackReport {
  std::size_t budget = 0;
  std::size_t queries_used = 0;   ///< training queries actually consumed
  double train_accuracy = 0.0;
  /// Held-out accuracy after finish_training(); for the replay attack this
  /// is the replay-acceptance rate (the attack's success metric).
  double test_accuracy = 0.0;
  /// Replay-acceptance rate when the cell ran authentication trials,
  /// negative otherwise.
  double replay_acceptance = -1.0;
};

/// A trained model of the variant's visible response.
class Predictor {
 public:
  virtual ~Predictor() = default;
  virtual bool predict(const std::vector<double>& features) const = 0;
};

struct AttackRunConfig {
  std::size_t budget = 0;
  std::size_t test_queries = 2000;   ///< held-out CRPs (not budget-counted)
  std::size_t replay_rounds = 40;    ///< authentication trials (replay attack)
  /// Surface replay: verifier calls (fresh nonces) per attestation session;
  /// a forged session is accepted only if every call is.  Sessions matter
  /// because per-call distance statistics cannot separate a good raw-access
  /// forger from honest noise — model errors concentrate on exactly the
  /// low-margin bits the physical device flips — but imperfection compounds
  /// across calls while honest acceptance (~0.999 per call) does not.
  std::size_t replay_session_calls = 4;
  /// Generic-verifier replay: challenges per authentication round and the
  /// accept threshold (fraction of mismatching bits), sitting between
  /// honest noise and coin-flip forgeries.
  std::size_t replay_challenges = 32;
  double replay_threshold = 0.25;
};

class Attack {
 public:
  virtual ~Attack() = default;
  virtual std::string name() const = 0;

  /// Runs the whole attack protocol against `device`.  `device` is mutable
  /// only through finish_training() (reconfiguration); all randomness comes
  /// from `rng`.
  virtual AttackReport run(PufVariant& device, const AttackRunConfig& config,
                           support::Xoshiro256pp& rng) const = 0;
};

/// Shared protocol for attacks that fit a Predictor on harvested CRPs;
/// subclasses only implement the fitting step.
class ModelAttack : public Attack {
 public:
  AttackReport run(PufVariant& device, const AttackRunConfig& config,
                   support::Xoshiro256pp& rng) const final;

 protected:
  virtual std::unique_ptr<Predictor> fit(
      const std::vector<mlattack::Example>& train,
      support::Xoshiro256pp& rng) const = 0;
};

/// Fraction of examples `model` classifies correctly.
double predictor_accuracy(const Predictor& model,
                          const std::vector<mlattack::Example>& examples);

}  // namespace pufatt::adversary
