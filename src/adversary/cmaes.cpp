#include "adversary/cmaes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace pufatt::adversary {

CmaesResult cmaes_minimize(
    const std::function<double(const std::vector<double>&)>& fitness,
    const std::vector<double>& mean0, const CmaesParams& params,
    support::Xoshiro256pp& rng) {
  const std::size_t n = mean0.size();
  if (n == 0) throw std::invalid_argument("cmaes_minimize: empty mean");
  const double nd = static_cast<double>(n);

  // Standard population sizing and log-decreasing recombination weights
  // (Hansen's tutorial defaults).
  const std::size_t lambda =
      4 + static_cast<std::size_t>(std::floor(3.0 * std::log(nd)));
  const std::size_t mu = lambda / 2;
  std::vector<double> weights(mu);
  for (std::size_t i = 0; i < mu; ++i) {
    weights[i] = std::log(mu + 0.5) - std::log(static_cast<double>(i + 1));
  }
  const double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);
  for (double& w : weights) w /= wsum;
  const double mu_eff =
      1.0 / std::inner_product(weights.begin(), weights.end(), weights.begin(),
                               0.0);

  // Step-size and (diagonal) covariance learning rates; the separable
  // variant scales c1/cmu up by (n + 2) / 3 since only n parameters are
  // adapted instead of n^2.
  const double c_sigma = (mu_eff + 2.0) / (nd + mu_eff + 5.0);
  const double d_sigma =
      1.0 + 2.0 * std::max(0.0, std::sqrt((mu_eff - 1.0) / (nd + 1.0)) - 1.0) +
      c_sigma;
  const double c_c = (4.0 + mu_eff / nd) / (nd + 4.0 + 2.0 * mu_eff / nd);
  const double sep = (nd + 2.0) / 3.0;
  const double c_1 =
      std::min(1.0, sep * 2.0 / ((nd + 1.3) * (nd + 1.3) + mu_eff));
  const double c_mu = std::min(
      1.0 - c_1, sep * 2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) /
                     ((nd + 2.0) * (nd + 2.0) + mu_eff));
  const double chi_n =
      std::sqrt(nd) * (1.0 - 1.0 / (4.0 * nd) + 1.0 / (21.0 * nd * nd));

  std::vector<double> mean = mean0;
  std::vector<double> diag(n, 1.0);     // diagonal of C
  std::vector<double> p_sigma(n, 0.0);  // step-size evolution path
  std::vector<double> p_c(n, 0.0);      // covariance evolution path
  double sigma = params.initial_sigma;

  struct Candidate {
    std::vector<double> z;  // N(0, I) draw
    std::vector<double> x;  // mean + sigma * D * z
    double f = 0.0;
  };
  std::vector<Candidate> pop(lambda);
  for (auto& cand : pop) {
    cand.z.resize(n);
    cand.x.resize(n);
  }
  std::vector<std::size_t> order(lambda);

  CmaesResult result;
  result.best = mean;
  result.best_fitness = fitness(mean);
  std::size_t stale = 0;

  for (std::size_t gen = 0; gen < params.max_generations; ++gen) {
    for (auto& cand : pop) {
      for (std::size_t i = 0; i < n; ++i) {
        cand.z[i] = rng.gaussian();
        cand.x[i] = mean[i] + sigma * std::sqrt(diag[i]) * cand.z[i];
      }
      cand.f = fitness(cand.x);
    }
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                     std::size_t b) {
      return pop[a].f < pop[b].f;
    });

    if (pop[order[0]].f < result.best_fitness - params.tol) {
      stale = 0;
    } else {
      ++stale;
    }
    if (pop[order[0]].f < result.best_fitness) {
      result.best_fitness = pop[order[0]].f;
      result.best = pop[order[0]].x;
    }
    result.generations = gen + 1;
    if (stale >= params.patience) break;

    // Recombine mean and the mean of the sampled z's.
    std::vector<double> old_mean = mean;
    std::vector<double> z_mean(n, 0.0);
    for (std::size_t r = 0; r < mu; ++r) {
      const Candidate& cand = pop[order[r]];
      for (std::size_t i = 0; i < n; ++i) {
        z_mean[i] += weights[r] * cand.z[i];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      mean[i] += sigma * std::sqrt(diag[i]) * z_mean[i];
    }

    // Step-size path (already in the isotropic domain because z ~ N(0,I)).
    double ps_norm_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      p_sigma[i] = (1.0 - c_sigma) * p_sigma[i] +
                   std::sqrt(c_sigma * (2.0 - c_sigma) * mu_eff) * z_mean[i];
      ps_norm_sq += p_sigma[i] * p_sigma[i];
    }
    const double ps_norm = std::sqrt(ps_norm_sq);
    const double h_sigma_thresh =
        (1.4 + 2.0 / (nd + 1.0)) * chi_n *
        std::sqrt(1.0 -
                  std::pow(1.0 - c_sigma, 2.0 * static_cast<double>(gen + 1)));
    const double h_sigma = ps_norm < h_sigma_thresh ? 1.0 : 0.0;

    // Covariance path in the original coordinates: (x_mean - old_mean)/sigma.
    for (std::size_t i = 0; i < n; ++i) {
      const double y_mean = (mean[i] - old_mean[i]) / sigma;
      p_c[i] = (1.0 - c_c) * p_c[i] +
               h_sigma * std::sqrt(c_c * (2.0 - c_c) * mu_eff) * y_mean;
    }

    // Diagonal covariance update (rank-one + rank-mu restricted to the
    // diagonal).
    const double c1a =
        c_1 * (1.0 - (1.0 - h_sigma) * c_c * (2.0 - c_c));
    for (std::size_t i = 0; i < n; ++i) {
      double rank_mu = 0.0;
      for (std::size_t r = 0; r < mu; ++r) {
        const double yi = std::sqrt(diag[i]) * pop[order[r]].z[i];
        rank_mu += weights[r] * yi * yi;
      }
      diag[i] = (1.0 - c1a - c_mu) * diag[i] + c_1 * p_c[i] * p_c[i] +
                c_mu * rank_mu;
      diag[i] = std::max(diag[i], 1e-20);
    }

    sigma *= std::exp((c_sigma / d_sigma) * (ps_norm / chi_n - 1.0));
    sigma = std::min(sigma, 1e6);
    if (!(sigma > 0.0) || !std::isfinite(sigma)) break;
  }

  return result;
}

}  // namespace pufatt::adversary
