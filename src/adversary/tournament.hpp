// Deterministic (variant x attack) tournament.
//
// Every (variant, attack, budget) run is an independent work unit with its
// own RNG stream derived from (tournament seed, cell index, budget index)
// and its own freshly constructed variant instance (same chip seed per
// variant row, so every attack faces the same silicon).  Runs execute
// under support::parallel_blocks with block = 1, so the matrix is
// byte-identical at any thread count; reports carry no wall-clock fields
// for the same reason.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adversary/attacks.hpp"

namespace pufatt::adversary {

/// Builds a fresh variant instance.  `chip_seed` fixes the silicon,
/// `engine` the timing kernel for variants that have one.
using VariantFactory = std::function<std::unique_ptr<PufVariant>(
    std::uint64_t chip_seed, timingsim::BatchEngine engine)>;

struct TournamentConfig {
  std::vector<std::size_t> budgets{1000, 4000, 12000};
  std::size_t test_queries = 2000;
  std::size_t replay_rounds = 40;
  std::size_t replay_session_calls = 4;
  std::size_t replay_challenges = 32;
  double replay_threshold = 0.25;
  std::size_t threads = 1;
  std::uint64_t seed = 1;
  timingsim::BatchEngine engine = timingsim::BatchEngine::kAuto;
};

/// One matrix cell: every budget's report for a (variant, attack) pair.
struct Cell {
  std::string variant;
  std::string attack;
  std::vector<AttackReport> reports;  ///< parallel to config.budgets
};

struct TournamentResult {
  TournamentConfig config;
  std::vector<Cell> cells;  ///< variant-major, attack-minor

  const Cell* find(const std::string& variant,
                   const std::string& attack) const;
};

/// Byte-stable JSON rendering of the matrix (no timestamps, no wall times;
/// doubles at fixed precision).  Two runs with equal seeds compare equal
/// with ==.
std::string matrix_json(const TournamentResult& result);

class Tournament {
 public:
  explicit Tournament(TournamentConfig config) : config_(std::move(config)) {}

  /// `id` keys the row in the result matrix (factories may not know their
  /// instance name before construction).
  void add_variant(std::string id, VariantFactory factory);
  void add_attack(std::shared_ptr<const Attack> attack);

  std::size_t variant_count() const { return variants_.size(); }
  std::size_t attack_count() const { return attacks_.size(); }

  TournamentResult run() const;

 private:
  struct VariantEntry {
    std::string id;
    VariantFactory make;
  };

  TournamentConfig config_;
  std::vector<VariantEntry> variants_;
  std::vector<std::shared_ptr<const Attack>> attacks_;
};

/// Knobs for the standard lab roster (shrunk by the quick/test paths).
struct LabParams {
  ArbiterVariantParams arbiter;
  std::size_t xor_k = 4;
  AluVariantParams alu;
  mlattack::LogRegParams logreg;
  MlpParams mlp;
  CmaesAttack::Params cmaes;
};

/// Registers the standard roster: 7 variants (arbiter, xor-arbiter-k,
/// mux-arbiter, alu-raw, alu-obf, nlfsr-arbiter, latent-arbiter) and 4
/// attacks (lr, mlp, cmaes, replay).
void add_standard_lab(Tournament& tournament, const LabParams& params = {});

}  // namespace pufatt::adversary
