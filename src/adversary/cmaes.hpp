// Separable CMA-ES (diagonal covariance; Ros & Hansen, PPSN 2008) — the
// evolution-strategy attacker of the matrix.  Unlike the gradient learners
// it never touches a derivative: it searches the additive delay model
// directly, which is how the original Ruehrmair et al. attacks handled
// model classes without a smooth loss.  The diagonal restriction keeps one
// generation O(lambda * n) so delay-vector dimensions (65-129 weights) stay
// cheap on a single core.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "support/rng.hpp"

namespace pufatt::adversary {

struct CmaesParams {
  std::size_t max_generations = 200;
  double initial_sigma = 0.5;
  /// Stop after this many generations without improving the best fitness.
  std::size_t patience = 40;
  double tol = 1e-10;  ///< improvement below this does not reset patience
};

struct CmaesResult {
  std::vector<double> best;
  double best_fitness = 0.0;
  std::size_t generations = 0;
};

/// Minimizes `fitness` over R^dim starting from `mean0`.  Deterministic in
/// (`mean0`, `params`, `rng`): sampling uses only the caller's stream.
CmaesResult cmaes_minimize(
    const std::function<double(const std::vector<double>&)>& fitness,
    const std::vector<double>& mean0, const CmaesParams& params,
    support::Xoshiro256pp& rng);

}  // namespace pufatt::adversary
