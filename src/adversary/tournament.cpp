#include "adversary/tournament.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "adversary/frontends.hpp"
#include "support/parallel.hpp"

namespace pufatt::adversary {

namespace {

// Domain-separation constants for the tournament's seed derivations.
constexpr std::uint64_t kChipDomain = 0xC41B2E8D5F07A693ULL;
constexpr std::uint64_t kCellDomain = 0x17D09A4BE6C835F2ULL;

std::uint64_t chip_seed_for(std::uint64_t seed, std::size_t variant_index) {
  return support::SplitMix64::mix(seed ^ (kChipDomain + variant_index));
}

std::uint64_t run_seed_for(std::uint64_t seed, std::size_t cell_index,
                           std::size_t budget_index) {
  return support::SplitMix64::mix(
      seed ^ (kCellDomain + cell_index * 64 + budget_index));
}

void append_double(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out += buf;
}

void append_size(std::string& out, std::size_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu", value);
  out += buf;
}

}  // namespace

const Cell* TournamentResult::find(const std::string& variant,
                                   const std::string& attack) const {
  for (const Cell& cell : cells) {
    if (cell.variant == variant && cell.attack == attack) return &cell;
  }
  return nullptr;
}

void Tournament::add_variant(std::string id, VariantFactory factory) {
  variants_.push_back(VariantEntry{std::move(id), std::move(factory)});
}

void Tournament::add_attack(std::shared_ptr<const Attack> attack) {
  attacks_.push_back(std::move(attack));
}

TournamentResult Tournament::run() const {
  if (variants_.empty() || attacks_.empty()) {
    throw std::logic_error("Tournament: empty roster");
  }
  TournamentResult result;
  result.config = config_;
  const std::size_t num_cells = variants_.size() * attacks_.size();
  result.cells.resize(num_cells);
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    result.cells[cell].variant = variants_[cell / attacks_.size()].id;
    result.cells[cell].attack = attacks_[cell % attacks_.size()]->name();
    result.cells[cell].reports.resize(config_.budgets.size());
  }

  // One work unit per (cell, budget); block = 1 so every unit computes the
  // same thing no matter which worker picks it up.
  const std::size_t total = num_cells * config_.budgets.size();
  support::parallel_blocks(
      total, /*block=*/1, config_.threads,
      [&](std::size_t unit, std::size_t, std::size_t, std::size_t) {
        const std::size_t cell = unit / config_.budgets.size();
        const std::size_t budget_index = unit % config_.budgets.size();
        const std::size_t variant_index = cell / attacks_.size();
        const std::size_t attack_index = cell % attacks_.size();

        // Fresh instance per run: attacks mutate variants through
        // finish_training(), and runs must not order-depend.
        auto device = variants_[variant_index].make(
            chip_seed_for(config_.seed, variant_index), config_.engine);

        AttackRunConfig run_config;
        run_config.budget = config_.budgets[budget_index];
        run_config.test_queries = config_.test_queries;
        run_config.replay_rounds = config_.replay_rounds;
        run_config.replay_session_calls = config_.replay_session_calls;
        run_config.replay_challenges = config_.replay_challenges;
        run_config.replay_threshold = config_.replay_threshold;

        support::Xoshiro256pp rng(
            run_seed_for(config_.seed, cell, budget_index));
        result.cells[cell].reports[budget_index] =
            attacks_[attack_index]->run(*device, run_config, rng);
      });
  return result;
}

std::string matrix_json(const TournamentResult& result) {
  std::string out;
  out.reserve(1 << 14);
  out += "{\n  \"schema_version\": 1,\n  \"seed\": ";
  append_size(out, static_cast<std::size_t>(result.config.seed));
  out += ",\n  \"budgets\": [";
  for (std::size_t i = 0; i < result.config.budgets.size(); ++i) {
    if (i != 0) out += ", ";
    append_size(out, result.config.budgets[i]);
  }
  out += "],\n  \"cells\": [\n";
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const Cell& cell = result.cells[c];
    out += "    {\"variant\": \"" + cell.variant + "\", \"attack\": \"" +
           cell.attack + "\", \"results\": [";
    for (std::size_t b = 0; b < cell.reports.size(); ++b) {
      const AttackReport& r = cell.reports[b];
      if (b != 0) out += ", ";
      out += "{\"budget\": ";
      append_size(out, r.budget);
      out += ", \"queries_used\": ";
      append_size(out, r.queries_used);
      out += ", \"train_accuracy\": ";
      append_double(out, r.train_accuracy);
      out += ", \"test_accuracy\": ";
      append_double(out, r.test_accuracy);
      out += ", \"replay_acceptance\": ";
      append_double(out, r.replay_acceptance);
      out += "}";
    }
    out += "]}";
    out += (c + 1 < result.cells.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

void add_standard_lab(Tournament& tournament, const LabParams& params) {
  const ArbiterVariantParams arbiter = params.arbiter;
  const AluVariantParams alu = params.alu;
  const std::size_t xor_k = params.xor_k;

  tournament.add_variant(
      "arbiter", [arbiter](std::uint64_t chip, timingsim::BatchEngine) {
        return make_arbiter_variant(arbiter, chip);
      });
  tournament.add_variant(
      "xor-arbiter", [arbiter, xor_k](std::uint64_t chip,
                                      timingsim::BatchEngine) {
        return make_xor_arbiter_variant(xor_k, arbiter, chip);
      });
  tournament.add_variant(
      "mux-arbiter", [arbiter](std::uint64_t chip, timingsim::BatchEngine) {
        return make_mux_arbiter_variant(arbiter, chip);
      });
  tournament.add_variant(
      "alu-raw", [alu](std::uint64_t chip, timingsim::BatchEngine engine) {
        AluVariantParams p = alu;
        p.engine = engine;
        return make_alu_raw_variant(p, chip);
      });
  tournament.add_variant(
      "alu-obf", [alu](std::uint64_t chip, timingsim::BatchEngine engine) {
        AluVariantParams p = alu;
        p.engine = engine;
        return make_obfuscated_alu_variant(p, chip);
      });
  tournament.add_variant(
      "nlfsr-arbiter",
      [arbiter](std::uint64_t chip, timingsim::BatchEngine) {
        // The front-end key is part of the same device: derive it from the
        // chip seed so the row stays a one-seed device.
        return make_nlfsr_frontend(
            make_arbiter_variant(arbiter, chip),
            support::SplitMix64::mix(chip ^ 0xF00D5EED00000001ULL));
      });
  tournament.add_variant(
      "latent-arbiter",
      [arbiter](std::uint64_t chip, timingsim::BatchEngine) {
        return make_latent_reconfig_frontend(
            make_arbiter_variant(arbiter, chip),
            support::SplitMix64::mix(chip ^ 0xF00D5EED00000002ULL));
      });

  tournament.add_attack(std::make_shared<LogRegAttack>(params.logreg));
  tournament.add_attack(std::make_shared<MlpAttack>(params.mlp));
  tournament.add_attack(std::make_shared<CmaesAttack>(params.cmaes));
  tournament.add_attack(std::make_shared<ReplayAttack>(params.logreg));
}

}  // namespace pufatt::adversary
