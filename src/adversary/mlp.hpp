// From-scratch multi-layer perceptron: one tanh hidden layer, sigmoid
// output, mini-batch SGD with momentum.  Unlike logistic regression this
// learner can express the XOR of a few halfspaces, which is exactly the
// gap the k-XOR Arbiter row of the attack matrix probes.  Fully
// deterministic given (dataset order, rng).
#pragma once

#include <cstddef>
#include <vector>

#include "mlattack/logreg.hpp"
#include "support/rng.hpp"

namespace pufatt::adversary {

struct MlpParams {
  std::size_t hidden_units = 24;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double l2 = 1e-5;
  std::size_t epochs = 40;
  std::size_t batch_size = 32;
};

class Mlp {
 public:
  /// Weights initialized to small gaussians drawn from `rng`.
  Mlp(std::size_t num_features, std::size_t hidden_units,
      support::Xoshiro256pp& rng);

  /// P(label = 1 | features).
  double predict_probability(const std::vector<double>& features) const;
  bool predict(const std::vector<double>& features) const {
    return predict_probability(features) > 0.5;
  }

  /// Trains on the dataset (shuffled each epoch with `rng`).
  void train(const std::vector<mlattack::Example>& dataset,
             const MlpParams& params, support::Xoshiro256pp& rng);

  /// Fraction of correct predictions on a dataset.
  double accuracy(const std::vector<mlattack::Example>& dataset) const;

 private:
  std::size_t num_features_;
  std::size_t hidden_;
  // Hidden layer: hidden_ rows of num_features_ weights plus a bias each;
  // output layer: hidden_ weights plus a bias.
  std::vector<double> w1_;  // hidden_ * num_features_
  std::vector<double> b1_;  // hidden_
  std::vector<double> w2_;  // hidden_
  double b2_ = 0.0;
};

}  // namespace pufatt::adversary
