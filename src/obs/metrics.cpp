#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace pufatt::obs {

namespace {

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += buf;
}

void append_number(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

// ------------------------------------------------------------------- Gauge

void Gauge::set(double v) {
  value_.store(v, relaxed);
  seen_.store(true, relaxed);
  double seen_max = max_.load(relaxed);
  while (v > seen_max && !max_.compare_exchange_weak(seen_max, v, relaxed)) {
  }
}

double Gauge::max() const {
  return seen_.load(relaxed) ? max_.load(relaxed) : 0.0;
}

void Gauge::reset() {
  value_.store(0.0, relaxed);
  max_.store(0.0, relaxed);
  seen_.store(false, relaxed);
}

// ------------------------------------------------------------ LogHistogram

LogHistogram::LogHistogram(const support::LogScale& scale)
    : scale_(scale),
      counts_(new std::atomic<std::uint64_t>[scale.buckets]) {
  if (scale.buckets == 0 || scale.first_edge <= 0.0 || scale.base <= 1.0) {
    throw std::invalid_argument("LogHistogram: degenerate scale");
  }
  reset();
}

void LogHistogram::add_bucket(std::size_t bucket, std::uint64_t n) {
  counts_[bucket < scale_.buckets ? bucket : scale_.buckets - 1].fetch_add(
      n, relaxed);
}

std::uint64_t LogHistogram::bucket(std::size_t i) const {
  return counts_[i].load(relaxed);
}

std::uint64_t LogHistogram::total() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < scale_.buckets; ++i) n += bucket(i);
  return n;
}

double LogHistogram::quantile_edge(double q) const {
  std::uint64_t counts[64];
  const std::size_t n = scale_.buckets < 64 ? scale_.buckets : 64;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    counts[i] = bucket(i);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  return scale_.upper_edge(support::bucket_quantile(counts, n, total, q));
}

void LogHistogram::reset() {
  for (std::size_t i = 0; i < scale_.buckets; ++i) {
    counts_[i].store(0, relaxed);
  }
}

// ---------------------------------------------------------- MetricRegistry

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.gauge || entry.histogram) {
    throw std::invalid_argument("MetricRegistry: '" + name +
                                "' is not a counter");
  }
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.counter || entry.histogram) {
    throw std::invalid_argument("MetricRegistry: '" + name +
                                "' is not a gauge");
  }
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

LogHistogram& MetricRegistry::histogram(const std::string& name,
                                        const support::LogScale& scale) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.counter || entry.gauge) {
    throw std::invalid_argument("MetricRegistry: '" + name +
                                "' is not a histogram");
  }
  if (!entry.histogram) {
    entry.histogram = std::make_unique<LogHistogram>(scale);
  } else if (!(entry.histogram->scale() == scale)) {
    throw std::invalid_argument("MetricRegistry: '" + name +
                                "' re-registered with a different scale");
  }
  return *entry.histogram;
}

std::string MetricRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string counters = "\"counters\":{";
  std::string gauges = "\"gauges\":{";
  std::string histograms = "\"histograms\":{";
  bool first_counter = true, first_gauge = true, first_histogram = true;
  for (const auto& [name, entry] : entries_) {  // std::map: sorted names
    if (entry.counter) {
      if (!first_counter) counters.push_back(',');
      first_counter = false;
      counters.push_back('"');
      append_escaped(counters, name);
      counters += "\":";
      append_u64(counters, entry.counter->value());
    } else if (entry.gauge) {
      if (!first_gauge) gauges.push_back(',');
      first_gauge = false;
      gauges.push_back('"');
      append_escaped(gauges, name);
      gauges += "\":{\"value\":";
      append_number(gauges, entry.gauge->value());
      gauges += ",\"max\":";
      append_number(gauges, entry.gauge->max());
      gauges += "}";
    } else if (entry.histogram) {
      if (!first_histogram) histograms.push_back(',');
      first_histogram = false;
      histograms.push_back('"');
      append_escaped(histograms, name);
      histograms += "\":{\"first_edge\":";
      append_number(histograms, entry.histogram->scale().first_edge);
      histograms += ",\"base\":";
      append_number(histograms, entry.histogram->scale().base);
      histograms += ",\"counts\":[";
      for (std::size_t i = 0; i < entry.histogram->num_buckets(); ++i) {
        if (i > 0) histograms.push_back(',');
        append_u64(histograms, entry.histogram->bucket(i));
      }
      histograms += "],\"total\":";
      append_u64(histograms, entry.histogram->total());
      histograms += "}";
    }
  }
  return "{" + counters + "}," + gauges + "}," + histograms + "}}";
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.histogram) entry.histogram->reset();
  }
}

MetricRegistry& global_registry() {
  static MetricRegistry registry;
  return registry;
}

}  // namespace pufatt::obs
