// Reading traces back: a minimal dependency-free JSON parser plus loaders
// for both exporter formats (the JSONL span schema and Chrome
// `trace_event`).  `pufatt-cli trace-report` and the obs tests round-trip
// exported traces through this, so exporter regressions surface as parse
// or field mismatches rather than silently-wrong dashboards.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pufatt::obs {

/// Tiny JSON document value (numbers are doubles, objects keep key order
/// via std::map — enough for trace files, not a general-purpose DOM).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  /// Object member or nullptr.
  const JsonValue* get(const std::string& key) const;
  /// Member's number, or `fallback` when missing / not a number.
  double number_or(const std::string& key, double fallback) const;
};

/// Parses one JSON document; throws std::runtime_error with a byte offset
/// on malformed input.  Trailing whitespace is allowed, trailing content
/// is not.
JsonValue parse_json(std::string_view text);

/// A span as read back from either export format.  Times are in
/// microseconds relative to an arbitrary origin (formats differ in
/// origin, never in durations or relative order).
struct ParsedSpan {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t thread = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
  std::map<std::string, double> notes;

  double note_or(const std::string& key, double fallback) const {
    const auto it = notes.find(key);
    return it != notes.end() ? it->second : fallback;
  }
};

/// Loads spans from exported trace text, sniffing the format: a document
/// whose top-level object has "traceEvents" is Chrome trace_event JSON;
/// anything else is treated as JSONL (one span object per line).  Throws
/// std::runtime_error on malformed input.
std::vector<ParsedSpan> read_trace(std::string_view text);

}  // namespace pufatt::obs
