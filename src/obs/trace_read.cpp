#include "obs/trace_read.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace pufatt::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            // The exporters never emit \u; decode the BMP code point as a
            // raw byte for robustness rather than full UTF-8 handling.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            out.push_back(static_cast<char>(code & 0xFF));
            break;
          }
          default: fail("bad escape");
        }
        continue;
      }
      out.push_back(c);
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

ParsedSpan span_from_jsonl(const JsonValue& obj) {
  ParsedSpan span;
  const JsonValue* name = obj.get("name");
  span.name = name != nullptr ? name->string : "";
  span.id = static_cast<std::uint64_t>(obj.number_or("id", 0));
  span.parent = static_cast<std::uint64_t>(obj.number_or("parent", 0));
  span.thread = static_cast<std::uint64_t>(obj.number_or("thread", 0));
  const double start_ns = obj.number_or("start_ns", 0);
  span.start_us = start_ns / 1000.0;
  span.dur_us = (obj.number_or("end_ns", start_ns) - start_ns) / 1000.0;
  if (const JsonValue* notes = obj.get("notes"); notes && notes->is_object()) {
    for (const auto& [key, value] : notes->object) {
      span.notes[key] = value.number;
    }
  }
  return span;
}

ParsedSpan span_from_trace_event(const JsonValue& obj) {
  ParsedSpan span;
  const JsonValue* name = obj.get("name");
  span.name = name != nullptr ? name->string : "";
  span.thread = static_cast<std::uint64_t>(obj.number_or("tid", 0));
  span.start_us = obj.number_or("ts", 0);
  span.dur_us = obj.number_or("dur", 0);
  if (const JsonValue* args = obj.get("args"); args && args->is_object()) {
    span.id = static_cast<std::uint64_t>(args->number_or("id", 0));
    span.parent = static_cast<std::uint64_t>(args->number_or("parent", 0));
    for (const auto& [key, value] : args->object) {
      if (key == "id" || key == "parent") continue;
      span.notes[key] = value.number;
    }
  }
  return span;
}

}  // namespace

const JsonValue* JsonValue::get(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object.find(key);
  return it != object.end() ? &it->second : nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* member = get(key);
  return member != nullptr && member->kind == Kind::kNumber ? member->number
                                                           : fallback;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::vector<ParsedSpan> read_trace(std::string_view text) {
  std::vector<ParsedSpan> spans;
  // Sniff: a whole-document parse that yields {"traceEvents": [...]} is
  // the Chrome format; a failure or another shape falls through to JSONL.
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) return spans;
  if (text[first] == '{') {
    try {
      const JsonValue doc = parse_json(text);
      if (const JsonValue* events = doc.get("traceEvents");
          events != nullptr && events->is_array()) {
        for (const JsonValue& event : events->array) {
          if (!event.is_object()) continue;
          // Only complete events carry durations; ignore metadata rows.
          const JsonValue* ph = event.get("ph");
          if (ph != nullptr && ph->string != "X") continue;
          spans.push_back(span_from_trace_event(event));
        }
        return spans;
      }
    } catch (const std::runtime_error&) {
      // Not a single-document trace_event file; try line-oriented below.
    }
  }
  std::size_t pos = 0;
  std::size_t line_no = 1;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin != std::string_view::npos) {
      try {
        spans.push_back(span_from_jsonl(parse_json(line.substr(begin))));
      } catch (const std::runtime_error& e) {
        throw std::runtime_error("trace line " + std::to_string(line_no) +
                                 ": " + e.what());
      }
    }
    ++line_no;
  }
  return spans;
}

}  // namespace pufatt::obs
