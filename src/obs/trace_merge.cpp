#include "obs/trace_merge.hpp"

#include <algorithm>
#include <unordered_map>

namespace pufatt::obs {

namespace {

/// Children-of index for one file (span ids are unique per tracer, i.e.
/// per file — never across files).
using ChildIndex = std::unordered_multimap<std::uint64_t, const ParsedSpan*>;

/// Walks the subtree under `root_id`, accumulating the stage durations
/// and δ-margins the timeline decomposition needs.  Iterative: a verdict
/// subtree is shallow, but depth must not depend on attempt count.
void accumulate_subtree(const ChildIndex& children, std::uint64_t root_id,
                        MergedVerdict& out) {
  std::vector<std::uint64_t> frontier{root_id};
  while (!frontier.empty()) {
    const std::uint64_t id = frontier.back();
    frontier.pop_back();
    const auto [begin, end] = children.equal_range(id);
    for (auto it = begin; it != end; ++it) {
      const ParsedSpan& span = *it->second;
      if (span.name == "pool.queue_wait") {
        out.queue_us += span.dur_us;
      } else if (span.name == "pool.verify") {
        out.verify_us += span.dur_us;
      } else if (span.name == "store.fsync") {
        out.store_fsync_us += span.dur_us;
      }
      if (span.name == "session.attempt" &&
          span.notes.count("deadline_us") != 0) {
        out.margins_us.push_back(span.note_or("deadline_us", 0.0) -
                                 span.note_or("elapsed_us", 0.0));
      }
      if (span.id != 0) frontier.push_back(span.id);
    }
  }
}

}  // namespace

MergeReport merge_traces(const std::vector<TraceFile>& files) {
  MergeReport report;
  report.files = files.size();

  // Server side of the join: trace id -> (file, pool.job root).  A trace
  // id sampled twice across files (two clients with colliding id spaces)
  // keeps the first root; the collision also shows as joined < roots.
  struct ServerRoot {
    std::size_t file = 0;
    const ParsedSpan* span = nullptr;
  };
  std::unordered_map<std::uint64_t, ServerRoot> server_roots;
  std::vector<ChildIndex> children(files.size());

  for (std::size_t f = 0; f < files.size(); ++f) {
    for (const ParsedSpan& span : files[f].spans) {
      ++report.spans;
      report.stage_us[span.name].push_back(span.dur_us);
      if (span.parent != 0) children[f].emplace(span.parent, &span);
      if (span.name == "pool.job") {
        const auto trace = static_cast<std::uint64_t>(span.note_or("trace", 0.0));
        if (trace != 0) {
          ++report.server_roots;
          server_roots.emplace(trace, ServerRoot{f, &span});
        }
      }
    }
  }

  for (std::size_t f = 0; f < files.size(); ++f) {
    for (const ParsedSpan& span : files[f].spans) {
      if (span.name != "client.job") continue;
      const auto trace = static_cast<std::uint64_t>(span.note_or("trace", 0.0));
      if (trace == 0) continue;
      ++report.client_roots;

      MergedVerdict verdict;
      verdict.trace = trace;
      verdict.client_file = f;
      verdict.client_us = span.dur_us;
      verdict.outcome = span.note_or("outcome", 0.0);
      verdict.busy_retries = span.note_or("busy_retries", 0.0);

      const auto it = server_roots.find(trace);
      if (it != server_roots.end()) {
        ++report.joined;
        verdict.joined = true;
        verdict.server_file = it->second.file;
        const ParsedSpan& root = *it->second.span;
        verdict.server_us = root.dur_us;
        verdict.wire_rtt_us = verdict.client_us - verdict.server_us;
        accumulate_subtree(children[it->second.file], root.id, verdict);
      }
      report.verdicts.push_back(std::move(verdict));
    }
  }

  std::sort(report.verdicts.begin(), report.verdicts.end(),
            [](const MergedVerdict& a, const MergedVerdict& b) {
              if (a.client_file != b.client_file)
                return a.client_file < b.client_file;
              return a.trace < b.trace;
            });
  return report;
}

}  // namespace pufatt::obs
