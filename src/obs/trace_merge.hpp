// Cross-process trace merge: joining client and server trace files into
// per-verdict timelines (DESIGN.md §16).
//
// Client and server run separate Tracers, so their span ids live in
// independent id spaces — parent pointers cannot cross a file boundary.
// The join key is instead the *trace id* (the client's root span id for
// one wire job) carried as the "trace" note on both sides' root spans:
// the LoadGenerator stamps it on its "client.job" root and into the wire
// trace context, and the VerifierPool copies it onto the adopted job's
// "pool.job" root.  Note values are doubles; span ids stay far below
// 2^53, so the round-trip is exact.
//
// A joined pair decomposes the client-observed latency of one verdict:
//
//   client.job  =  wire RTT  +  pool.queue_wait  +  pool.verify
//                  (derived)    (server span)       (server span)
//
// with store.fsync time and session.attempt δ-margins (deadline −
// elapsed, the anti-emulation headroom the paper's timing argument rests
// on) pulled from the server root's subtree.  Wire RTT is the residual —
// everything the client saw that the server cannot account for: kernel
// queues, the socket, the event loop's dispatch latency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_read.hpp"

namespace pufatt::obs {

/// One parsed trace file plus where it came from (for reporting).
struct TraceFile {
  std::string label;
  std::vector<ParsedSpan> spans;
};

/// One wire verdict reconstructed across processes.
struct MergedVerdict {
  std::uint64_t trace = 0;       ///< join key (client root span id)
  std::size_t client_file = 0;   ///< index into the merge input
  std::size_t server_file = 0;   ///< valid iff joined
  bool joined = false;           ///< a server root matched this trace

  double client_us = 0.0;       ///< client.job duration (first send → verdict)
  double server_us = 0.0;       ///< pool.job duration (admission → completion)
  double wire_rtt_us = 0.0;     ///< client_us − server_us (the residual)
  double queue_us = 0.0;        ///< pool.queue_wait under the server root
  double verify_us = 0.0;       ///< pool.verify under the server root
  double store_fsync_us = 0.0;  ///< sum of store.fsync in the server subtree
  double outcome = 0.0;         ///< service::JobOutcome, from the client root
  double busy_retries = 0.0;    ///< shed attempts before the verdict
  /// deadline_us − elapsed_us per verified session.attempt in the server
  /// subtree: negative = the verifier accepted outside its own bound.
  std::vector<double> margins_us;
};

struct MergeReport {
  std::size_t files = 0;
  std::size_t spans = 0;         ///< total spans across all files
  std::size_t client_roots = 0;  ///< client.job roots with a trace note
  std::size_t server_roots = 0;  ///< wire-traced pool.job roots
  std::size_t joined = 0;
  /// Every client root, joined or not, sorted by (file, trace id).
  std::vector<MergedVerdict> verdicts;
  /// Per-stage durations pooled across all files, keyed by span name —
  /// the same aggregation the single-file report prints, now fleet-wide.
  std::map<std::string, std::vector<double>> stage_us;

  double join_fraction() const {
    return client_roots > 0
               ? static_cast<double>(joined) / static_cast<double>(client_roots)
               : 0.0;
  }
};

/// Joins N trace files (any mix of client and server exports; a file may
/// contain both roles).  Order matters only for file indices in the
/// report.  Unjoined client roots (e.g. unknown-device short-circuits,
/// which never reach the pool) stay in `verdicts` with joined = false.
MergeReport merge_traces(const std::vector<TraceFile>& files);

}  // namespace pufatt::obs
