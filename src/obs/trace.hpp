// Span-based tracing for the attestation stack.
//
// PUFatt's security argument is a *timing* argument — the verifier accepts
// only inside the bound δ — so when the service misbehaves the question is
// always "where did the microseconds go": queue wait, emulator build,
// lane kernels, retries, backoff.  This tracer answers it with one
// coherent trace instead of per-component counters.
//
// Model:
//   * A `Span` is a named [start, end) interval on the host monotonic
//     clock with an explicit parent link (no implicit thread-local span
//     stack: jobs hop threads between enqueue and verify, so parenthood
//     must travel with the work, not with the thread).
//   * `Tracer::span(name, parent)` starts a child of an existing span;
//     with `parent == 0` it starts a *root* span, which is subject to the
//     runtime sampling rate.  Inert spans (disabled tracer, unsampled
//     root, child of an inert parent) cost one branch and record nothing.
//   * Completed spans are pushed into a per-thread lock-free SPSC ring;
//     `drain()` moves them into a bounded global store from which the
//     exporters read.  Overflow drops records and counts the drops — the
//     tracer never blocks or allocates on the hot path after the ring
//     exists.
//   * Span/note names must be pointers to statically-allocated strings
//     (string literals): records store the pointer, not a copy.
//
// Exporters: `to_jsonl()` (stable line-oriented schema, the input format
// of `pufatt-cli trace-report`) and `to_trace_event()` (Chrome
// `trace_event` JSON, loadable in chrome://tracing and Perfetto).
//
// Compile-time gate: building with -DPUFATT_TRACE=0 turns `kTraceCompiled`
// into a constant false, so every `if (tracer && tracer->enabled())` hook
// folds away and the hot paths carry zero tracing overhead.  The library
// itself (exporters, report tooling) still builds.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pufatt::obs {

#ifndef PUFATT_TRACE
#define PUFATT_TRACE 1
#endif

inline constexpr bool kTraceCompiled = PUFATT_TRACE != 0;

/// Host monotonic clock, nanoseconds.  All span timestamps share it.
std::uint64_t monotonic_ns();

/// One key/value annotation on a span (key must be a string literal).
struct Note {
  const char* key = "";
  double value = 0.0;
};

/// A completed span, as stored and exported.
struct SpanRecord {
  static constexpr std::size_t kMaxNotes = 6;

  std::uint64_t id = 0;      ///< unique per tracer, never 0 for real spans
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  const char* name = "";
  std::uint32_t thread = 0;  ///< per-tracer thread ordinal
  std::uint32_t note_count = 0;
  std::array<Note, kMaxNotes> notes{};
};

class Tracer;

/// RAII handle over an in-flight span.  Default-constructed spans are
/// inert: every operation is a no-op and `child()` yields inert spans, so
/// instrumented code never branches on "am I traced" beyond span creation.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  bool active() const { return tracer_ != nullptr; }
  /// 0 when inert — safe to pass anywhere a parent id is expected.
  std::uint64_t id() const { return rec_.id; }

  /// Child span of this one (inert if this span is inert).
  Span child(const char* name);

  /// Attaches an annotation; silently dropped past kMaxNotes.
  void note(const char* key, double value);

  /// Stamps the end time and hands the record to the tracer.  Idempotent;
  /// the destructor calls it.
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, const char* name, std::uint64_t id,
       std::uint64_t parent);

  Tracer* tracer_ = nullptr;
  SpanRecord rec_{};
};

struct TraceConfig {
  std::size_t ring_capacity = 4096;     ///< completed spans per thread
  std::size_t store_capacity = 262144;  ///< bounded global store
};

class Tracer {
 public:
  explicit Tracer(const TraceConfig& config = {});
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // ------------------------------------------------------------- control
  /// Tracing is off by default; while off, span() returns inert spans.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const {
    return kTraceCompiled && enabled_.load(std::memory_order_relaxed);
  }
  /// Fraction of *root* spans recorded, evenly spread (counter-based, not
  /// random: a deterministic workload samples deterministically).  Child
  /// spans follow their root's fate.  Clamped to [0, 1]; default 1.
  void set_sample_rate(double rate);
  double sample_rate() const {
    return sample_rate_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------------ recording
  /// Starts a span.  parent == 0 starts a root (sampled); parent != 0
  /// starts a child (always recorded while enabled).
  Span span(const char* name, std::uint64_t parent = 0);

  /// Root sampling decision without opening a span: returns a fresh span
  /// id to parent children under, or 0 when disabled / not sampled.  Used
  /// when the root interval is assembled manually across threads (the
  /// pool's enqueue→completion job span).
  std::uint64_t sample_root();

  /// Fresh span id for manually-assembled records.
  std::uint64_t next_id() {
    return id_counter_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a manually-assembled span (explicit timestamps).  The calling
  /// thread's ring receives it; `rec.thread` is overwritten.
  void emit(SpanRecord rec);

  // ------------------------------------------------------------- reading
  /// Moves every thread ring's completed spans into the global store.
  void drain();

  /// drain() + a copy of the store sorted by (start_ns, id).
  std::vector<SpanRecord> records();

  /// Records dropped on ring or store overflow (never silently lost).
  std::uint64_t dropped() const;

  /// Forgets every stored record (rings are drained first).
  void clear();

  // ----------------------------------------------------------- exporters
  /// One JSON object per line:
  ///   {"id":N,"parent":N,"thread":N,"name":"...","start_ns":N,
  ///    "end_ns":N,"notes":{"key":V,...}}
  /// sorted by (start_ns, id); timestamps are raw monotonic ns.
  std::string to_jsonl();

  /// Chrome trace_event JSON ("X" complete events; ts/dur in us relative
  /// to the earliest span; span id and parent preserved under "args").
  std::string to_trace_event();

 private:
  struct ThreadBuffer;

  ThreadBuffer& local_buffer();
  void drain_locked();  ///< caller holds store_mutex_

  const TraceConfig config_;
  const std::uint64_t uid_;  ///< process-unique tracer identity (cache key)

  std::atomic<bool> enabled_{false};
  std::atomic<double> sample_rate_{1.0};
  std::atomic<std::uint64_t> id_counter_{1};
  std::atomic<std::uint64_t> root_counter_{0};

  mutable std::mutex buffers_mutex_;  ///< guards buffer registration
  std::vector<ThreadBuffer*> buffers_;

  mutable std::mutex store_mutex_;  ///< guards store_ and draining
  std::vector<SpanRecord> store_;
  std::uint64_t store_dropped_ = 0;
};

/// Borrowed tracing context handed down through layers that do not own a
/// tracer (sessions, caches): a tracer plus the span to parent under.
/// Default-constructed scope is inert.
struct TraceScope {
  Tracer* tracer = nullptr;
  std::uint64_t parent = 0;

  explicit operator bool() const {
    return tracer != nullptr && tracer->enabled();
  }
  /// Child span under this scope's parent (inert scope -> inert span).
  Span span(const char* name) const {
    return tracer != nullptr ? tracer->span(name, parent) : Span();
  }
};

/// Process-wide tracer for layers too deep to plumb a pointer into
/// (timing kernels, PUF evaluation).  Disabled by default; serve-demo and
/// the obs bench enable it.  Spans recorded here have no explicit service
/// parent but nest by time containment per thread in the trace_event view.
Tracer& global_tracer();

/// Cheap hot-path gate: compiled-in AND global tracer enabled.
inline bool global_trace_enabled() {
  return kTraceCompiled && global_tracer().enabled();
}

/// Enables/disables the global tracer (and sets its sampling rate).
void set_global_trace(bool enabled, double sample_rate = 1.0);

}  // namespace pufatt::obs
