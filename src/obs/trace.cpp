#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace pufatt::obs {

namespace {

constexpr auto relaxed = std::memory_order_relaxed;
constexpr auto acquire = std::memory_order_acquire;
constexpr auto release = std::memory_order_release;

std::uint64_t next_tracer_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, relaxed);
}

void append_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const auto c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          // A raw control byte would break JSONL framing (names are
          // literals by contract, but the exporter must not rely on it).
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(*p);
        }
    }
  }
}

void append_number(std::string& out, double value) {
  char buf[40];
  // %.9g is enough for the values notes carry (latencies, counts, codes)
  // and keeps the exported text byte-stable for a given record stream.
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += buf;
}

}  // namespace

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ------------------------------------------------------------------- Span

Span::Span(Tracer* tracer, const char* name, std::uint64_t id,
           std::uint64_t parent)
    : tracer_(tracer) {
  rec_.id = id;
  rec_.parent = parent;
  rec_.name = name;
  rec_.start_ns = monotonic_ns();
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    rec_ = other.rec_;
    other.tracer_ = nullptr;
  }
  return *this;
}

Span Span::child(const char* name) {
  return active() ? tracer_->span(name, rec_.id) : Span();
}

void Span::note(const char* key, double value) {
  if (!active() || rec_.note_count >= SpanRecord::kMaxNotes) return;
  rec_.notes[rec_.note_count++] = Note{key, value};
}

void Span::end() {
  if (!active()) return;
  rec_.end_ns = monotonic_ns();
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->emit(rec_);
}

// ------------------------------------------------------------ ThreadBuffer

/// Single-producer (owning thread) / single-consumer (whoever holds the
/// tracer's store mutex in drain) ring of completed spans.
struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity) : ring(capacity) {}

  void push(const SpanRecord& rec) {
    const std::uint64_t tail = tail_pos.load(relaxed);
    const std::uint64_t head = head_pos.load(acquire);
    if (tail - head >= ring.size()) {
      dropped.fetch_add(1, relaxed);
      return;
    }
    ring[tail % ring.size()] = rec;
    tail_pos.store(tail + 1, release);
  }

  std::vector<SpanRecord> ring;
  std::atomic<std::uint64_t> head_pos{0};  ///< consumer cursor
  std::atomic<std::uint64_t> tail_pos{0};  ///< producer cursor
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t ordinal = 0;
};

// ------------------------------------------------------------------ Tracer

Tracer::Tracer(const TraceConfig& config)
    : config_(config), uid_(next_tracer_uid()) {}

Tracer::~Tracer() {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (ThreadBuffer* buffer : buffers_) delete buffer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Cached per (thread, tracer); tracer uids are never reused, so a stale
  // cache entry for a destroyed tracer can never be looked up again.
  thread_local std::vector<std::pair<std::uint64_t, ThreadBuffer*>> cache;
  for (const auto& [uid, buffer] : cache) {
    if (uid == uid_) return *buffer;
  }
  auto* buffer = new ThreadBuffer(config_.ring_capacity);
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    buffer->ordinal = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(buffer);
  }
  cache.emplace_back(uid_, buffer);
  return *buffer;
}

void Tracer::set_sample_rate(double rate) {
  sample_rate_.store(std::min(1.0, std::max(0.0, rate)), relaxed);
}

std::uint64_t Tracer::sample_root() {
  if (!enabled()) return 0;
  const double rate = sample_rate();
  if (rate <= 0.0) return 0;
  if (rate < 1.0) {
    // Deterministic even spread: keep root n iff floor((n+1)*rate) moved.
    const std::uint64_t n = root_counter_.fetch_add(1, relaxed);
    const auto before =
        static_cast<std::uint64_t>(static_cast<double>(n) * rate);
    const auto after =
        static_cast<std::uint64_t>(static_cast<double>(n + 1) * rate);
    if (after == before) return 0;
  }
  return next_id();
}

Span Tracer::span(const char* name, std::uint64_t parent) {
  if (!enabled()) return Span();
  std::uint64_t id;
  if (parent == 0) {
    id = sample_root();
    if (id == 0) return Span();
  } else {
    id = next_id();
  }
  return Span(this, name, id, parent);
}

void Tracer::emit(SpanRecord rec) {
  if (!kTraceCompiled) return;
  ThreadBuffer& buffer = local_buffer();
  rec.thread = buffer.ordinal;
  buffer.push(rec);
}

void Tracer::drain_locked() {
  std::lock_guard<std::mutex> reg(buffers_mutex_);
  for (ThreadBuffer* buffer : buffers_) {
    const std::uint64_t tail = buffer->tail_pos.load(acquire);
    std::uint64_t head = buffer->head_pos.load(relaxed);
    for (; head != tail; ++head) {
      if (store_.size() < config_.store_capacity) {
        store_.push_back(buffer->ring[head % buffer->ring.size()]);
      } else {
        ++store_dropped_;
      }
    }
    buffer->head_pos.store(head, release);
  }
}

void Tracer::drain() {
  std::lock_guard<std::mutex> lock(store_mutex_);
  drain_locked();
}

std::vector<SpanRecord> Tracer::records() {
  std::lock_guard<std::mutex> lock(store_mutex_);
  drain_locked();
  std::vector<SpanRecord> out = store_;
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.id < b.id;
            });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total;
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    total = store_dropped_;
  }
  std::lock_guard<std::mutex> reg(buffers_mutex_);
  for (const ThreadBuffer* buffer : buffers_) {
    total += buffer->dropped.load(relaxed);
  }
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(store_mutex_);
  drain_locked();
  store_.clear();
  store_dropped_ = 0;
}

// --------------------------------------------------------------- exporters

std::string Tracer::to_jsonl() {
  const auto recs = records();
  std::string out;
  out.reserve(recs.size() * 120);
  for (const SpanRecord& rec : recs) {
    out += "{\"id\":";
    append_u64(out, rec.id);
    out += ",\"parent\":";
    append_u64(out, rec.parent);
    out += ",\"thread\":";
    append_u64(out, rec.thread);
    out += ",\"name\":\"";
    append_escaped(out, rec.name);
    out += "\",\"start_ns\":";
    append_u64(out, rec.start_ns);
    out += ",\"end_ns\":";
    append_u64(out, rec.end_ns);
    out += ",\"notes\":{";
    for (std::uint32_t i = 0; i < rec.note_count; ++i) {
      if (i > 0) out.push_back(',');
      out.push_back('"');
      append_escaped(out, rec.notes[i].key);
      out += "\":";
      append_number(out, rec.notes[i].value);
    }
    out += "}}\n";
  }
  return out;
}

std::string Tracer::to_trace_event() {
  const auto recs = records();
  std::uint64_t base_ns = 0;
  for (const SpanRecord& rec : recs) {
    if (base_ns == 0 || rec.start_ns < base_ns) base_ns = rec.start_ns;
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[64];
  bool first = true;
  for (const SpanRecord& rec : recs) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n{\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_u64(out, rec.thread);
    out += ",\"name\":\"";
    append_escaped(out, rec.name);
    out += "\",\"ts\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(rec.start_ns - base_ns) / 1000.0);
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(rec.end_ns - rec.start_ns) / 1000.0);
    out += buf;
    out += ",\"args\":{\"id\":";
    append_u64(out, rec.id);
    out += ",\"parent\":";
    append_u64(out, rec.parent);
    for (std::uint32_t i = 0; i < rec.note_count; ++i) {
      out += ",\"";
      append_escaped(out, rec.notes[i].key);
      out += "\":";
      append_number(out, rec.notes[i].value);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

// ----------------------------------------------------------------- globals

Tracer& global_tracer() {
  static Tracer tracer;
  return tracer;
}

void set_global_trace(bool enabled, double sample_rate) {
  Tracer& tracer = global_tracer();
  tracer.set_sample_rate(sample_rate);
  tracer.set_enabled(enabled);
}

}  // namespace pufatt::obs
