// Central metric registry: named atomic counters, gauges and log-scale
// histograms behind one interface with a byte-stable JSON snapshot.
//
// Hot paths never pay a name lookup: callers resolve a metric once
// (`registry.counter("sim.batches")` returns a stable reference) and then
// touch only relaxed atomics.  Like ServiceMetrics, a snapshot taken while
// writers are mid-update is each-metric-consistent, not cross-metric-
// consistent; quiesce the workload before asserting exact totals.
//
// `snapshot_json()` is a *contract*: names are emitted sorted, numbers are
// formatted deterministically, and the same metric values always produce
// the same bytes — tests diff snapshots across thread counts to prove
// aggregation is scheduling-invariant.
//
// References returned by the registry stay valid for the registry's
// lifetime; `reset()` zeroes values but never invalidates references
// (long-lived components cache them — see the timing-kernel hooks).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "support/stats.hpp"

namespace pufatt::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, relaxed); }
  std::uint64_t value() const { return value_.load(relaxed); }
  void reset() { value_.store(0, relaxed); }

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value plus the high-water mark since the last reset.
class Gauge {
 public:
  void set(double v);
  double value() const { return value_.load(relaxed); }
  double max() const;  ///< 0 before the first set()
  void reset();

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> seen_{false};
};

/// Lock-free log-scale histogram over a shared support::LogScale.  This is
/// the one histogram type behind both the service latency metrics and the
/// registry snapshots (the bucket math lives in support::LogScale so the
/// two stay bit-identical).
class LogHistogram {
 public:
  explicit LogHistogram(const support::LogScale& scale);

  void record(double value) { add_bucket(scale_.bucket_for(value), 1); }
  /// Merges pre-bucketed counts (publishing an existing snapshot).
  void add_bucket(std::size_t bucket, std::uint64_t n);

  const support::LogScale& scale() const { return scale_; }
  std::size_t num_buckets() const { return scale_.buckets; }
  std::uint64_t bucket(std::size_t i) const;
  std::uint64_t total() const;
  /// Upper edge of the bucket holding quantile q (+inf if it lands in the
  /// unbounded last bucket); 0 when empty.
  double quantile_edge(double q) const;
  void reset();

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;
  support::LogScale scale_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Find-or-create by name.  A name is bound to one metric kind for the
  /// registry's lifetime; re-requesting it as another kind (or a
  /// histogram with a different scale) throws std::invalid_argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LogHistogram& histogram(const std::string& name,
                          const support::LogScale& scale = {});

  /// Byte-stable snapshot:
  ///   {"counters":{...},"gauges":{"n":{"value":V,"max":V}},
  ///    "histograms":{"n":{"first_edge":E,"base":B,"counts":[...],
  ///                       "total":N}}}
  /// with names sorted and no whitespace.
  std::string snapshot_json() const;

  /// Zeroes every metric's value; references stay valid.
  void reset();

 private:
  struct Entry {
    // At most one is set; which one encodes the metric's kind.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> histogram;
  };

  mutable std::mutex mutex_;   ///< guards the map, not metric updates
  std::map<std::string, Entry> entries_;
};

/// Process-wide registry for layers too deep to receive one (the timing
/// kernels' batch gauges).  Paired with obs::global_tracer().
MetricRegistry& global_registry();

}  // namespace pufatt::obs
