// Programmable delay lines (PDLs) for FPGA delay tuning (Majzoobi,
// Koushanfar, Devadas — WIFS 2010; the paper's reference [20]).
//
// On an FPGA the two "symmetric" ALU paths are not symmetric: automated
// routing introduces per-bit skews far larger than the process variation
// the PUF wants to measure.  Each raced output therefore passes through a
// 64-stage PDL whose per-stage delay increments are configurable; a
// calibration loop tunes the codes until each arbiter sits near 50/50 —
// exactly the procedure the paper describes for its Virtex-5 prototype.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace pufatt::fpga {

struct PdlParams {
  std::size_t stages = 64;
  /// Extra delay per enabled stage, picoseconds (LUT route detour).
  double step_ps = 2.5;
  /// Per-stage manufacturing spread of the step.
  double step_sigma_ps = 0.3;
};

/// One programmable delay line instance (per raced signal).
class Pdl {
 public:
  /// Samples per-stage step delays for this physical instance.
  Pdl(const PdlParams& params, support::Xoshiro256pp& rng);

  std::size_t stages() const { return steps_ps_.size(); }

  /// Number of currently enabled stages (the "code").
  std::size_t code() const { return code_; }
  void set_code(std::size_t code);

  /// Total extra delay at the current code.
  double delay_ps() const;

  /// Maximum tunable delay (all stages enabled).
  double max_delay_ps() const;

 private:
  std::vector<double> steps_ps_;
  std::size_t code_ = 0;
};

}  // namespace pufatt::fpga
