#include "fpga/resources.hpp"

#include "ecc/reed_muller.hpp"
#include "netlist/builder.hpp"

namespace pufatt::fpga {

namespace {

using netlist::ResourceEstimate;
using netlist::SequentialResources;

ResourceEstimate paper_row(const char* name, std::size_t luts,
                           std::size_t regs, std::size_t xors,
                           std::size_t bram, std::size_t fifo) {
  return ResourceEstimate{name, luts, regs, xors, bram, fifo};
}

/// Small synchronization block: an enable flip-flop fans out through a
/// buffer tree and gates the operand registers so both ALUs launch on the
/// same edge.
netlist::Netlist sync_logic_netlist() {
  netlist::Netlist net;
  const auto enable = net.add_input("enable");
  // Two-level buffer tree (1 -> 2 -> 4) plus per-quadrant gating ANDs.
  std::vector<netlist::GateId> level1;
  for (int i = 0; i < 2; ++i) {
    level1.push_back(net.add_gate(netlist::GateKind::kBuf, {enable}));
  }
  std::vector<netlist::GateId> level2;
  for (int i = 0; i < 4; ++i) {
    level2.push_back(
        net.add_gate(netlist::GateKind::kBuf, {level1[i / 2]}));
  }
  const auto go = net.add_input("go");
  for (int i = 0; i < 4; ++i) {
    const auto gated =
        net.add_gate(netlist::GateKind::kAnd, {level2[i], go});
    net.add_output("launch" + std::to_string(i), gated);
  }
  return net;
}

}  // namespace

std::size_t full_alu_luts(std::size_t width) {
  netlist::Netlist net;
  netlist::build_full_alu(net, width, {});
  return netlist::estimate_luts(net);
}

std::vector<Table1Row> table1_rows() {
  std::vector<Table1Row> rows;
  const std::size_t width = 16;  // the paper's FPGA prototype width

  // --- ALU PUF -------------------------------------------------------------
  {
    const auto circuit = netlist::build_alu_puf_circuit(width);
    // Registers: 2*width operand bits + width arbiter latches + width
    // response capture bits = 4*width = 64; the paper's 80 additionally
    // stages the operands once more (pipelining against the critical
    // path); we model that staging rank explicitly.
    SequentialResources seq;
    seq.registers = 2 * width + width + width + width;  // = 80 for width 16
    auto est = netlist::estimate_component("ALU PUF", circuit.net, seq);
    rows.push_back({est, paper_row("ALU PUF", 94, 80, 32, 0, 0)});
  }

  // --- Synchronization logic ------------------------------------------------
  {
    const auto net = sync_logic_netlist();
    SequentialResources seq;
    seq.registers = 7;  // enable FF + 2-deep staging per tree level
    auto est = netlist::estimate_component("Synchronization logic", net, seq);
    rows.push_back({est, paper_row("Synchronization logic", 9, 7, 0, 0, 0)});
  }

  // --- Syndrome generator ----------------------------------------------------
  {
    // The helper-data code of the 32-bit pipeline: RM(1,5) = [32,6,16]
    // ("BCH[32,6,16]" in the paper).  Our mapping is the direct
    // combinational XOR forest; the paper's core is a generic sequential
    // engine with BRAM-stored matrices, hence its much larger footprint
    // (see EXPERIMENTS.md).
    const ecc::ReedMuller1 code(5);
    const auto net =
        netlist::build_syndrome_circuit(code.parity_check().row_vectors());
    SequentialResources seq;
    // 32-bit input register + 26-bit syndrome register; the paper's 880
    // registers and 3 BRAM belong to its serialized engine.
    seq.registers = 32 + 26;
    auto est = netlist::estimate_component("Syndrome generator", net, seq);
    rows.push_back({est, paper_row("Syndrome generator", 1976, 880, 0, 3, 0)});
  }

  // --- Obfuscation logic ------------------------------------------------------
  {
    const auto net = netlist::build_obfuscation_circuit(16);  // 2n = 32
    auto est = netlist::estimate_component("Obfuscation logic", net, {});
    rows.push_back({est, paper_row("Obfuscation logic", 224, 0, 0, 0, 0)});
  }

  // --- PDL logic ---------------------------------------------------------------
  {
    // 2 * (width + carry) raced lines x 64 stages; each Majzoobi PDL stage
    // occupies a LUT pair (fine + coarse inverter path), and the capture
    // staging uses 4 ranks of 32 registers.
    const std::size_t lines = 2 * width;  // o_i and o'_i
    const auto net = netlist::build_pdl_bank(lines, 64);
    SequentialResources seq;
    seq.registers = 4 * lines;
    auto est = netlist::estimate_component("PDL logic", net, seq);
    est.luts *= 2;  // two LUTs per stage (fine/coarse pair)
    rows.push_back({est, paper_row("PDL logic", 4096, 128, 0, 0, 0)});
  }

  // --- SIRC logic -----------------------------------------------------------------
  {
    // SIRC (Eguro, FCCM 2010) is the third-party host-communication IP used
    // only for data collection.  Model: ethernet MAC + controller FSM
    // (~2500 LUTs, ~1800 FFs), 64 KiB input + 8 KiB output buffers on
    // 18 Kib BRAMs (=> (64+8)*1024*8 / 18432 ~ 33 + control ~ 5), and the
    // two clock-domain-crossing FIFOs.
    ResourceEstimate est;
    est.component = "SIRC logic (comm IP model)";
    est.luts = 2500;
    est.registers = 1800;
    est.xors = 0;
    est.bram = (64 + 8) * 1024 * 8 / 18432 + 5;
    est.fifo = 2;
    rows.push_back({est, paper_row("SIRC logic", 2808, 1826, 0, 38, 2)});
  }

  return rows;
}

}  // namespace pufatt::fpga
