// FPGA prototype model of the ALU PUF (paper Section 4.1,
// "Implementation"): a 16-bit PUF on a Virtex-5-class fabric where
// automated routing adds per-bit skew that dwarfs process variation, and
// per-signal programmable delay lines compensate after a calibration pass
// ("we calibrate the delay of the two symmetric delay paths so that on
// average the occurrence of 0 and 1 at each arbiter is about the same").
#pragma once

#include <cstdint>
#include <vector>

#include "alupuf/alu_puf.hpp"
#include "fpga/pdl.hpp"

namespace pufatt::fpga {

/// Default PUF configuration for an FPGA fabric: 16 bits (the paper's
/// prototype width) and a much larger *shared* design asymmetry — on an
/// FPGA the challenge-dependent delay structure comes mostly from the
/// routed LUT paths, which are identical on every board of the same
/// bitstream.  Only the small process-variation part differs per board,
/// which is why the paper measures just 18.8% inter-board HD (far below
/// the ASIC simulation's 35.9%).
inline alupuf::AluPufConfig fpga_puf_config() {
  alupuf::AluPufConfig config;
  config.width = 16;
  config.tech.design_asym_sigma = 0.30;
  config.tech.vth_sigma_ratio = 0.045;
  return config;
}

struct FpgaBoardParams {
  alupuf::AluPufConfig puf = fpga_puf_config();
  PdlParams pdl;
  /// Per-bit routing skew between the two raced paths (sigma, ps): an
  /// order of magnitude above the process-variation signal.
  double routing_skew_sigma_ps = 60.0;
  /// Additive per-evaluation timing noise on the board (ps): worse than
  /// the ASIC model ("a little higher than in our simulation due to
  /// environmental fluctuations").
  double board_noise_ps = 2.0;
};

/// One physical FPGA board carrying one ALU PUF instance.
class FpgaBoard {
 public:
  FpgaBoard(const FpgaBoardParams& params, std::uint64_t board_seed);

  std::size_t response_bits() const { return puf_.response_bits(); }
  std::size_t challenge_bits() const { return puf_.challenge_bits(); }

  /// One evaluation including routing skew, PDL compensation, board noise
  /// and arbiter metastability.
  alupuf::RawResponse eval(const alupuf::Challenge& challenge,
                           support::Xoshiro256pp& rng) const;

  /// Fraction of 1s bit `bit` produces over `samples` random challenges.
  double measure_bias(std::size_t bit, std::size_t samples,
                      support::Xoshiro256pp& rng) const;

  /// Tunes every bit's PDL codes by bisection until the measured bias is
  /// near 50% (the paper's tuning procedure).  Returns the worst residual
  /// |bias - 0.5| across bits.
  double calibrate(std::size_t samples_per_step, support::Xoshiro256pp& rng);

  /// Residual (post-PDL) static skew of a bit, ps — for analysis.
  double residual_skew_ps(std::size_t bit) const;

  bool calibrated() const { return calibrated_; }
  const alupuf::AluPuf& puf() const { return puf_; }

 private:
  /// Effective race delta for bit `bit` (before noise/arbiter).
  double static_delta_ps(std::size_t bit, const std::vector<double>& puf_deltas) const;

  FpgaBoardParams params_;
  alupuf::AluPuf puf_;
  std::vector<double> routing_skew_ps_;  ///< per bit, added to t1 - t0
  std::vector<Pdl> pdl0_;                ///< delay added to the ALU0 path
  std::vector<Pdl> pdl1_;                ///< delay added to the ALU1 path
  bool calibrated_ = false;
};

}  // namespace pufatt::fpga
