// Reproduction of the paper's Table 1: FPGA resource utilization of the
// 16-bit ALU PUF prototype and its supporting logic.
//
// The first four rows are estimated by technology-mapping our actual gate
// netlists onto Virtex-5-style 6-LUTs (netlist/techmap.hpp); sequential
// resources come from explicit register breakdowns documented per
// component.  The PDL row is parameterized by the Majzoobi-style stage
// structure; the SIRC row models the third-party host-communication IP
// (Eguro, FCCM 2010) from its buffer/FIFO architecture.
#pragma once

#include <vector>

#include "netlist/techmap.hpp"

namespace pufatt::fpga {

struct Table1Row {
  netlist::ResourceEstimate ours;
  netlist::ResourceEstimate paper;  ///< the values Table 1 reports
};

/// Computes all six rows (ALU PUF, synchronization logic, syndrome
/// generator, obfuscation logic, PDL logic, SIRC logic) for the 16-bit
/// prototype configuration.
std::vector<Table1Row> table1_rows();

/// LUT count of one complete multi-op ALU of the given width — the block
/// the paper assumes already exists ("one does not re-use an existing
/// ALU" is the Table-1 scenario; reuse makes the PUF nearly free).
std::size_t full_alu_luts(std::size_t width);

}  // namespace pufatt::fpga
