#include "fpga/pdl.hpp"

#include <algorithm>
#include <stdexcept>

namespace pufatt::fpga {

Pdl::Pdl(const PdlParams& params, support::Xoshiro256pp& rng) {
  if (params.stages == 0) throw std::invalid_argument("Pdl: zero stages");
  steps_ps_.resize(params.stages);
  for (auto& step : steps_ps_) {
    step = std::max(0.1, rng.gaussian(params.step_ps, params.step_sigma_ps));
  }
}

void Pdl::set_code(std::size_t code) {
  if (code > steps_ps_.size()) {
    throw std::out_of_range("Pdl::set_code: code exceeds stage count");
  }
  code_ = code;
}

double Pdl::delay_ps() const {
  double total = 0.0;
  for (std::size_t i = 0; i < code_; ++i) total += steps_ps_[i];
  return total;
}

double Pdl::max_delay_ps() const {
  double total = 0.0;
  for (const auto step : steps_ps_) total += step;
  return total;
}

}  // namespace pufatt::fpga
