#include "fpga/board.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "timingsim/arbiter.hpp"

namespace pufatt::fpga {

FpgaBoard::FpgaBoard(const FpgaBoardParams& params, std::uint64_t board_seed)
    : params_(params), puf_(params.puf, board_seed) {
  support::Xoshiro256pp rng(support::SplitMix64::mix(board_seed ^ 0xF96A));
  const std::size_t bits = puf_.response_bits();
  routing_skew_ps_.reserve(bits);
  pdl0_.reserve(bits);
  pdl1_.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    routing_skew_ps_.push_back(
        rng.gaussian(0.0, params.routing_skew_sigma_ps));
    pdl0_.emplace_back(params.pdl, rng);
    pdl1_.emplace_back(params.pdl, rng);
    // Start mid-range so calibration can move in both directions.
    pdl0_.back().set_code(params.pdl.stages / 2);
    pdl1_.back().set_code(params.pdl.stages / 2);
  }
}

double FpgaBoard::static_delta_ps(std::size_t bit,
                                  const std::vector<double>& puf_deltas) const {
  // delta = (t1 + pdl1) - (t0 + pdl0) + routing skew.
  return puf_deltas[bit] + routing_skew_ps_[bit] + pdl1_[bit].delay_ps() -
         pdl0_[bit].delay_ps();
}

alupuf::RawResponse FpgaBoard::eval(const alupuf::Challenge& challenge,
                                    support::Xoshiro256pp& rng) const {
  const auto deltas =
      puf_.race_deltas(challenge, variation::Environment::nominal());
  alupuf::RawResponse response(puf_.response_bits());
  const timingsim::Arbiter arbiter(puf_.config().arbiter);
  for (std::size_t i = 0; i < response.size(); ++i) {
    const double delta = static_delta_ps(i, deltas) +
                         rng.gaussian(0.0, params_.board_noise_ps);
    response.set(i, arbiter.sample(delta, rng));
  }
  return response;
}

double FpgaBoard::measure_bias(std::size_t bit, std::size_t samples,
                               support::Xoshiro256pp& rng) const {
  if (bit >= puf_.response_bits()) {
    throw std::out_of_range("FpgaBoard::measure_bias: bad bit");
  }
  std::size_t ones = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto challenge =
        support::BitVector::random(puf_.challenge_bits(), rng);
    if (eval(challenge, rng).get(bit)) ++ones;
  }
  return static_cast<double>(ones) / static_cast<double>(samples);
}

double FpgaBoard::calibrate(std::size_t samples_per_step,
                            support::Xoshiro256pp& rng) {
  // Bias is monotone in (code1 - code0); bisect that difference per bit.
  const auto stages = static_cast<std::int64_t>(params_.pdl.stages);
  double worst = 0.0;
  for (std::size_t bit = 0; bit < puf_.response_bits(); ++bit) {
    std::int64_t lo = -stages;
    std::int64_t hi = stages;
    auto apply = [&](std::int64_t diff) {
      // Split the difference between the two lines around mid-range.
      const std::int64_t mid = stages / 2;
      const std::int64_t c1 = std::clamp(mid + diff / 2, std::int64_t{0}, stages);
      const std::int64_t c0 =
          std::clamp(mid - (diff - diff / 2), std::int64_t{0}, stages);
      pdl1_[bit].set_code(static_cast<std::size_t>(c1));
      pdl0_[bit].set_code(static_cast<std::size_t>(c0));
    };
    while (hi - lo > 1) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      apply(mid);
      const double bias = measure_bias(bit, samples_per_step, rng);
      // bias rises monotonically with diff (delta = t1 - t0 grows with
      // code1 - code0); bisect toward the 50% crossing.
      if (bias > 0.5) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    apply(lo);
    const double bias_lo = std::abs(
        measure_bias(bit, samples_per_step, rng) - 0.5);
    apply(hi);
    const double bias_hi = std::abs(
        measure_bias(bit, samples_per_step, rng) - 0.5);
    if (bias_lo < bias_hi) apply(lo);
    worst = std::max(worst, std::min(bias_lo, bias_hi));
  }
  calibrated_ = true;
  return worst;
}

double FpgaBoard::residual_skew_ps(std::size_t bit) const {
  if (bit >= puf_.response_bits()) {
    throw std::out_of_range("FpgaBoard::residual_skew_ps: bad bit");
  }
  return routing_skew_ps_[bit] + pdl1_[bit].delay_ps() - pdl0_[bit].delay_ps();
}

}  // namespace pufatt::fpga
