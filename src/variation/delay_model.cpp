#include "variation/delay_model.hpp"

#include <cmath>
#include <stdexcept>

namespace pufatt::variation {

double base_delay_ps(netlist::GateKind kind, std::size_t fanin_count) {
  using netlist::GateKind;
  // Unit: picoseconds for a 45 nm standard cell driving a typical load.
  // Multi-input gates get a small per-fanin stack penalty.
  double base = 0.0;
  switch (kind) {
    case GateKind::kInput:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return 0.0;
    case GateKind::kBuf: base = 8.0; break;
    case GateKind::kNot: base = 6.0; break;
    case GateKind::kNand: base = 10.0; break;
    case GateKind::kNor: base = 12.0; break;
    case GateKind::kAnd: base = 14.0; break;   // NAND + INV
    case GateKind::kOr: base = 16.0; break;    // NOR + INV
    case GateKind::kXor: base = 22.0; break;
    case GateKind::kXnor: base = 22.0; break;
    case GateKind::kMux: base = 18.0; break;
  }
  const double extra_fanin =
      fanin_count > 2 ? static_cast<double>(fanin_count - 2) * 3.0 : 0.0;
  return base + extra_fanin;
}

double scaled_delay_ps(double base_ps, double vth_v, const Environment& env,
                       const TechnologyParams& tech) {
  return scaled_delay_ps(base_ps, vth_v, tech.vth_temp_coeff, env, tech);
}

double wire_scale(const Environment& env, const TechnologyParams& tech) {
  return 1.0 + tech.wire_temp_coeff * (env.temperature_c - tech.temp_nominal_c);
}

double scaled_delay_ps(double base_ps, double vth_v, double vth_temp_coeff,
                       const Environment& env, const TechnologyParams& tech) {
  const double vdd = tech.vdd_nominal_v * env.vdd_scale;
  const double vth_t =
      vth_v - vth_temp_coeff * (env.temperature_c - tech.temp_nominal_c);
  const double overdrive = vdd - vth_t;
  if (overdrive <= 0.0) {
    throw std::domain_error("scaled_delay_ps: gate does not switch (V <= Vth)");
  }
  const double nominal_overdrive = tech.vdd_nominal_v - tech.vth_nominal_v;
  const double t_kelvin = env.temperature_c + 273.15;
  const double t0_kelvin = tech.temp_nominal_c + 273.15;
  return base_ps * (vdd / tech.vdd_nominal_v) *
         std::pow(nominal_overdrive / overdrive, tech.alpha) *
         std::pow(t_kelvin / t0_kelvin, tech.mobility_exp);
}

}  // namespace pufatt::variation
