#include "variation/chip.hpp"

#include <algorithm>

namespace pufatt::variation {

namespace {

double gate_delay_at(double intrinsic, double wire, double vth, double tempco,
                     const Environment& env, const TechnologyParams& tech) {
  // Total delay = voltage/temperature-scaled transistor part plus the
  // temperature-only-scaled wire-RC part.
  return scaled_delay_ps(intrinsic, vth, tempco, env, tech) +
         wire * wire_scale(env, tech);
}

}  // namespace

timingsim::DelaySet delays_from_table(const DelayTable& table,
                                      const Environment& env) {
  timingsim::DelaySet out;
  const std::size_t n = table.intrinsic_ps.size();
  out.rise_ps.assign(n, 0.0);
  out.fall_ps.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (table.intrinsic_ps[i] > 0.0 || table.wire_ps[i] > 0.0) {
      const double base =
          gate_delay_at(table.intrinsic_ps[i], table.wire_ps[i],
                        table.vth_v[i], table.vth_tempco[i], env, table.tech);
      out.rise_ps[i] = base * table.rise_factor[i];
      out.fall_ps[i] = base * table.fall_factor[i];
    }
  }
  return out;
}

ChipInstance::ChipInstance(const netlist::Netlist& net,
                           const TechnologyParams& tech,
                           const QuadTreeConfig& qt_config,
                           std::uint64_t chip_seed)
    : net_(&net), tech_(tech) {
  support::Xoshiro256pp rng(chip_seed);
  // Design-level asymmetry: drawn from a *fixed* seed, so every die of the
  // same netlist shares the identical skew pattern (it lives in the layout,
  // not in the fab lottery).
  support::Xoshiro256pp design_rng(0xDE51'6E5Eu);
  const QuadTreeSample spatial(qt_config, tech.vth_sigma_v(), rng);

  const auto& gates = net.gates();
  intrinsic_ps_.resize(gates.size());
  wire_ps_.resize(gates.size());
  vth_.resize(gates.size());
  vth_tempco_.resize(gates.size());
  rise_factor_.resize(gates.size());
  fall_factor_.resize(gates.size());
  aging_coeff_.resize(gates.size());
  aging_shift_.assign(gates.size(), 0.0);
  for (std::size_t id = 0; id < gates.size(); ++id) {
    const auto& g = gates[id];
    const double design_skew =
        std::clamp(design_rng.gaussian(0.0, tech.design_asym_sigma), -0.3, 0.3);
    const double base =
        base_delay_ps(g.kind, g.fanins.size()) * (1.0 + design_skew);
    // Split nominal delay into a transistor part and a wire-RC part; the
    // wire share varies per gate (routing is never uniform).
    const double wire_fraction =
        std::clamp(rng.gaussian(tech.wire_fraction_mean,
                                tech.wire_fraction_sigma),
                   0.0, 0.5);
    intrinsic_ps_[id] = base * (1.0 - wire_fraction);
    wire_ps_[id] = base * wire_fraction;
    vth_[id] = tech.vth_nominal_v +
               spatial.systematic_shift(g.place.x, g.place.y) +
               rng.gaussian(0.0, spatial.random_sigma());
    vth_tempco_[id] =
        rng.gaussian(tech.vth_temp_coeff, tech.vth_temp_coeff_sigma);
    // PMOS/NMOS drive mismatch: antisymmetric so the mean delay is
    // preserved.
    const double asym =
        std::clamp(rng.gaussian(0.0, tech.rise_fall_asym_sigma), -0.3, 0.3);
    rise_factor_[id] = 1.0 + asym;
    fall_factor_[id] = 1.0 - asym;
    const AgingParams aging_defaults;
    aging_coeff_[id] = std::max(
        0.0, rng.gaussian(aging_defaults.coeff_v,
                          aging_defaults.coeff_v *
                              aging_defaults.coeff_sigma_ratio));
  }
}

void ChipInstance::apply_stress(netlist::GateId id, double duty, double hours,
                                const AgingParams& params) {
  const double shift = aging_vth_shift(aging_coeff_[id], duty, hours, params);
  aging_shift_[id] += shift;
  vth_[id] += shift;
}

void ChipInstance::age_uniformly(double duty, double hours,
                                 const AgingParams& params) {
  for (std::size_t id = 0; id < vth_.size(); ++id) {
    if (intrinsic_ps_[id] > 0.0 || wire_ps_[id] > 0.0) {
      apply_stress(static_cast<netlist::GateId>(id), duty, hours, params);
    }
  }
}

timingsim::DelaySet ChipInstance::nominal_delays(const Environment& env) const {
  timingsim::DelaySet out;
  nominal_delays(env, out);
  return out;
}

void ChipInstance::nominal_delays(const Environment& env,
                                  timingsim::DelaySet& out) const {
  const std::size_t n = intrinsic_ps_.size();
  out.rise_ps.resize(n);
  out.fall_ps.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (intrinsic_ps_[i] > 0.0 || wire_ps_[i] > 0.0) {
      const double base = gate_delay_at(intrinsic_ps_[i], wire_ps_[i], vth_[i],
                                        vth_tempco_[i], env, tech_);
      out.rise_ps[i] = base * rise_factor_[i];
      out.fall_ps[i] = base * fall_factor_[i];
    } else {
      out.rise_ps[i] = 0.0;
      out.fall_ps[i] = 0.0;
    }
  }
}

void ChipInstance::sample_delays(const timingsim::DelaySet& nominal,
                                 const NoiseParams& noise,
                                 support::Xoshiro256pp& rng,
                                 timingsim::DelaySet& out) const {
  const std::size_t n = nominal.rise_ps.size();
  out.rise_ps.resize(n);
  out.fall_ps.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double jitter = 1.0 + rng.gaussian(0.0, noise.delay_jitter_ratio);
    out.rise_ps[i] = nominal.rise_ps[i] <= 0.0 ? 0.0 : nominal.rise_ps[i] * jitter;
    out.fall_ps[i] = nominal.fall_ps[i] <= 0.0 ? 0.0 : nominal.fall_ps[i] * jitter;
  }
}

void ChipInstance::sample_delays_batch(const timingsim::DelaySet& nominal,
                                       const NoiseParams& noise,
                                       support::Xoshiro256pp* noise_rngs,
                                       std::size_t count,
                                       timingsim::BatchDelays& out) const {
  const std::size_t n = nominal.rise_ps.size();
  out.batch = count;
  out.rise_ps.resize(n * count);
  out.fall_ps.resize(n * count);
  for (std::size_t g = 0; g < n; ++g) {
    const double rise = nominal.rise_ps[g];
    const double fall = nominal.fall_ps[g];
    double* rise_row = out.rise_ps.data() + g * count;
    double* fall_row = out.fall_ps.data() + g * count;
    for (std::size_t x = 0; x < count; ++x) {
      const double jitter =
          1.0 + noise.delay_jitter_ratio * noise_rngs[x].gaussian_fast();
      rise_row[x] = rise <= 0.0 ? 0.0 : rise * jitter;
      fall_row[x] = fall <= 0.0 ? 0.0 : fall * jitter;
    }
  }
}

DelayTable ChipInstance::export_delay_table() const {
  return DelayTable{tech_,        intrinsic_ps_, wire_ps_,    vth_,
                    vth_tempco_,  rise_factor_,  fall_factor_};
}

}  // namespace pufatt::variation
