// Gate-delay model under process, voltage and temperature variation.
//
// Follows the methodology the paper itself uses for its evaluation:
//  * per-gate threshold-voltage variation, Gaussian with sigma/mu = 0.1 at
//    the 45 nm node (paper Section 4.1, citing Pan et al., DAC 2009);
//  * alpha-power-law delay dependence on supply and threshold voltage
//    (Markovic et al., "Ultralow-power design in near-threshold region",
//    Proc. IEEE 2010 — the paper's delay model reference [23]);
//  * linear V_th temperature dependence plus a mobility-degradation term.
//
// Delay of a gate:
//   d(V, T, Vth) = d_base * (V / V0) * ((V0 - Vth0) / (V - Vth(T)))^alpha
//                  * (T_K / T0_K)^mobility_exp
// with Vth(T) = Vth - vth_temp_coeff * (T - T0).
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace pufatt::variation {

/// Operating point of the device.  The robustness experiments sweep
/// vdd_scale over [0.90, 1.10] and temperature over [-20, +120] C, exactly
/// the corners of the paper's Figure 4.
struct Environment {
  double vdd_scale = 1.0;       ///< multiplier on nominal supply voltage
  double temperature_c = 25.0;  ///< junction temperature in Celsius

  static Environment nominal() { return {}; }
};

/// Technology constants for the simulated 45 nm node.
struct TechnologyParams {
  double vdd_nominal_v = 1.0;     ///< nominal supply
  double vth_nominal_v = 0.40;    ///< mean threshold voltage (mu)
  double vth_sigma_ratio = 0.1;   ///< sigma/mu of V_th variation (paper: 0.1)
  double alpha = 1.3;             ///< alpha-power-law exponent at 45 nm
  double temp_nominal_c = 25.0;   ///< reference temperature
  double vth_temp_coeff = 2.5e-4; ///< mean V_th decrease per Kelvin (V/K)
  /// Per-gate spread of the V_th temperature coefficient: the reason
  /// temperature corners reorder race outcomes instead of scaling all
  /// delays uniformly.
  double vth_temp_coeff_sigma = 0.5e-4;
  double mobility_exp = 1.2;      ///< mobility degradation exponent
  /// Fraction of a gate's nominal delay contributed by wire RC (mean and
  /// per-gate sigma).  Wire delay scales with temperature (metal
  /// resistance) but not with supply voltage — the second mechanism that
  /// makes voltage corners reorder races.
  double wire_fraction_mean = 0.15;
  double wire_fraction_sigma = 0.05;
  double wire_temp_coeff = 0.002;  ///< wire delay increase per Kelvin
  /// Per-gate rise/fall delay asymmetry spread (relative).  PMOS/NMOS
  /// drive mismatch makes a gate's delay depend on its output value, so a
  /// structurally-fixed path (e.g. a full-length carry chain) still has
  /// data-dependent timing — the property the attestation protocol's
  /// challenge construction relies on.
  double rise_fall_asym_sigma = 0.05;
  /// Residual *design-level* asymmetry between "identical" cells (relative
  /// per-gate spread, identical on every die): layout and routing are never
  /// perfectly symmetric, so all chips share a per-bit response bias.  This
  /// is why the paper's raw inter-chip HD sits at 35.9% instead of the
  /// ideal 50% — and what its XOR obfuscation pushes back toward 50%.
  /// ("Automatable design-time optimizations are needed to ensure symmetry
  /// of the delay paths" — the residual after those optimizations.)
  double design_asym_sigma = 0.085;

  /// Standard deviation of V_th variation in volts.
  double vth_sigma_v() const { return vth_nominal_v * vth_sigma_ratio; }
};

/// Nominal (variation-free, 25 C, nominal V) switching delay of a gate in
/// picoseconds, as a function of its kind and fanin count.  Values are
/// representative 45 nm standard-cell delays; only *relative* magnitudes
/// matter for the PUF race.
double base_delay_ps(netlist::GateKind kind, std::size_t fanin_count);

/// Scales a base delay to the given environment and per-gate threshold
/// voltage using the alpha-power law above.  `vth_v` is the gate's actual
/// (variation-affected) threshold voltage at the reference temperature;
/// `vth_temp_coeff` its (variation-affected) temperature coefficient.
double scaled_delay_ps(double base_ps, double vth_v, double vth_temp_coeff,
                       const Environment& env, const TechnologyParams& tech);

/// Convenience overload using the technology's mean V_th tempco.
double scaled_delay_ps(double base_ps, double vth_v, const Environment& env,
                       const TechnologyParams& tech);

/// Temperature scaling of the wire-RC part of a gate delay (voltage
/// independent).
double wire_scale(const Environment& env, const TechnologyParams& tech);

}  // namespace pufatt::variation
