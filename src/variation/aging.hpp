// Transistor aging (NBTI/HCI) model.
//
// The paper's introduction lists "silicon aging effects" among the
// influences a PUF must survive, and its companion work (Kong &
// Koushanfar, "Processor-based strong PUFs with aging-based response
// tuning", IEEE TETC 2013 — the paper's reference [13]) turns aging into a
// feature: deliberately stressing one of the two raced paths widens a
// marginal arbiter's margin and stabilizes the bit.
//
// Model: bias-temperature instability raises a stressed transistor's
// threshold voltage with the classic power law
//     dVth = a_g * (duty * t_hours)^n
// where duty is the fraction of time the gate is held under stress, n ~ 0.2
// and a_g is a per-gate coefficient (fab lottery, sampled at manufacturing).
#pragma once

#include <cstddef>

namespace pufatt::variation {

struct AgingParams {
  /// Mean Vth shift (V) after one hour of continuous stress.
  double coeff_v = 4.0e-3;
  /// Relative per-gate spread of the coefficient.
  double coeff_sigma_ratio = 0.3;
  /// Time-power-law exponent.
  double exponent = 0.2;
};

/// Vth shift for a gate with aging coefficient `coeff_v` stressed at
/// `duty` for `hours`.
double aging_vth_shift(double coeff_v, double duty, double hours,
                       const AgingParams& params);

}  // namespace pufatt::variation
