#include "variation/quadtree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pufatt::variation {

QuadTreeSample::QuadTreeSample(const QuadTreeConfig& config, double total_sigma,
                               support::Xoshiro256pp& rng)
    : config_(config) {
  if (config.levels == 0 || config.die_size <= 0.0) {
    throw std::invalid_argument("QuadTreeSample: bad config");
  }
  if (config.systematic_fraction < 0.0 || config.systematic_fraction > 1.0) {
    throw std::invalid_argument(
        "QuadTreeSample: systematic_fraction outside [0,1]");
  }
  const double total_var = total_sigma * total_sigma;
  const double systematic_var = total_var * config.systematic_fraction;
  random_sigma_ = std::sqrt(total_var - systematic_var);
  const double level_sigma =
      std::sqrt(systematic_var / static_cast<double>(config.levels));

  level_cells_.resize(config.levels);
  for (std::size_t l = 0; l < config.levels; ++l) {
    const std::size_t cells = std::size_t{1} << l;  // per edge
    level_cells_[l].resize(cells * cells);
    for (auto& v : level_cells_[l]) v = rng.gaussian(0.0, level_sigma);
  }
}

double QuadTreeSample::systematic_shift(double x, double y) const {
  const double clamped_x = std::clamp(x, 0.0, config_.die_size - 1e-9);
  const double clamped_y = std::clamp(y, 0.0, config_.die_size - 1e-9);
  double shift = 0.0;
  for (std::size_t l = 0; l < level_cells_.size(); ++l) {
    const std::size_t cells = std::size_t{1} << l;
    const double cell_size = config_.die_size / static_cast<double>(cells);
    const auto cx = static_cast<std::size_t>(clamped_x / cell_size);
    const auto cy = static_cast<std::size_t>(clamped_y / cell_size);
    shift += level_cells_[l][cy * cells + cx];
  }
  return shift;
}

}  // namespace pufatt::variation
