// A manufactured chip instance: a netlist plus one sampled realization of
// process variation, yielding per-gate rise/fall delays under any
// operating point.
//
// The exported DelayTable is exactly the paper's emulation model H: "a
// simple PUF model (e.g., gate-level delay table lookups and delay
// additions) generated during the manufacturing process" — the verifier
// uses it in PUF.Emulate() while the adversary, by assumption, cannot read
// it.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "support/rng.hpp"
#include "timingsim/timing_sim.hpp"
#include "variation/aging.hpp"
#include "variation/delay_model.hpp"
#include "variation/quadtree.hpp"

namespace pufatt::variation {

/// Per-evaluation noise: thermal/supply jitter applied multiplicatively to
/// every gate delay on every evaluation.  This (together with arbiter
/// metastability) is what produces non-zero intra-chip Hamming distance.
struct NoiseParams {
  double delay_jitter_ratio = 0.01;  ///< sigma of the multiplicative jitter
};

/// The emulation model H: enough information to recompute every gate delay
/// of one specific chip at any operating point, with no physical access.
struct DelayTable {
  TechnologyParams tech;
  std::vector<double> intrinsic_ps;  ///< per gate: transistor part at nominal
  std::vector<double> wire_ps;       ///< per gate: wire-RC part at nominal
  std::vector<double> vth_v;         ///< per gate V_th (variation-affected)
  std::vector<double> vth_tempco;    ///< per gate V_th temperature coefficient
  std::vector<double> rise_factor;   ///< per gate rise-delay multiplier
  std::vector<double> fall_factor;   ///< per gate fall-delay multiplier
};

/// Per-gate rise/fall delays at an operating point, computed from a
/// DelayTable (verifier-side emulation path — no chip object needed).
timingsim::DelaySet delays_from_table(const DelayTable& table,
                                      const Environment& env);

/// One fabricated die.
class ChipInstance {
 public:
  /// Samples process variation for `net`: quad-tree systematic V_th shift
  /// by gate placement plus independent per-gate components (random V_th,
  /// wire fraction, V_th tempco, rise/fall asymmetry).  `chip_seed` fully
  /// determines the chip (reproducible manufacturing).
  ChipInstance(const netlist::Netlist& net, const TechnologyParams& tech,
               const QuadTreeConfig& qt_config, std::uint64_t chip_seed);

  const netlist::Netlist& net() const { return *net_; }
  const TechnologyParams& tech() const { return tech_; }

  /// Actual threshold voltage of a gate on this die.
  double vth(netlist::GateId id) const { return vth_[id]; }

  /// Deterministic per-gate delays at `env` (no evaluation noise): the
  /// physical chip's expected timing, also what the emulator computes.
  timingsim::DelaySet nominal_delays(const Environment& env) const;

  /// In-place variant to avoid reallocation in evaluation loops.
  void nominal_delays(const Environment& env, timingsim::DelaySet& out) const;

  /// One noisy evaluation: nominal delays times (1 + N(0, jitter)); the
  /// same per-gate jitter draw applies to the rise and fall delays (it
  /// models a common-mode supply/temperature fluctuation).
  void sample_delays(const timingsim::DelaySet& nominal,
                     const NoiseParams& noise, support::Xoshiro256pp& rng,
                     timingsim::DelaySet& out) const;

  /// `count` independent noisy realizations at once, written gate-major
  /// into the SoA layout the batch engine consumes (out.rise_ps[g*count+x]
  /// is lane x's gate g) — contiguous lane writes, no per-lane transpose.
  /// Lane x's jitter comes from noise_rngs[x]: exactly one gaussian_fast()
  /// deviate per gate in gate order, zero-delay gates included, so each
  /// lane's stream position is a function of the gate index alone and a
  /// caller may keep using noise_rngs[x] afterwards (AluPuf::eval_batch
  /// continues it for the arbiter draws).  Same semantics as
  /// sample_delays per lane — shared rise/fall jitter, zeros preserved —
  /// but via the fast sampler, so not stream-compatible with it.
  void sample_delays_batch(const timingsim::DelaySet& nominal,
                           const NoiseParams& noise,
                           support::Xoshiro256pp* noise_rngs,
                           std::size_t count,
                           timingsim::BatchDelays& out) const;

  /// Exports the emulation model H (manufacturer-side enrollment).
  DelayTable export_delay_table() const;

  /// Applies stress-induced aging to one gate: raises its Vth by the
  /// power-law shift for (duty, hours) using this gate's manufacturing
  /// aging coefficient.  Irreversible, like the silicon.
  void apply_stress(netlist::GateId id, double duty, double hours,
                    const AgingParams& params);

  /// Uniform field aging: every gate stressed at the same duty (ambient
  /// operation).  Per-gate coefficients still make the drift non-uniform.
  void age_uniformly(double duty, double hours, const AgingParams& params);

  /// Total accumulated Vth shift of a gate due to aging (V).
  double aging_shift_v(netlist::GateId id) const { return aging_shift_[id]; }

 private:
  const netlist::Netlist* net_;
  TechnologyParams tech_;
  std::vector<double> intrinsic_ps_;  ///< transistor delay part at nominal
  std::vector<double> wire_ps_;       ///< wire-RC delay part at nominal
  std::vector<double> vth_;
  std::vector<double> vth_tempco_;
  std::vector<double> rise_factor_;
  std::vector<double> fall_factor_;
  std::vector<double> aging_coeff_;  ///< per-gate NBTI coefficient (V)
  std::vector<double> aging_shift_;  ///< accumulated Vth shift (V)
};

}  // namespace pufatt::variation
