// Quad-tree spatial process-variation model (Cline et al., ICCAD 2006 —
// the paper's reference [4] for its own evaluation).
//
// The die is recursively divided into quadrants; each quadrant at each
// level carries an independent Gaussian deviate.  A gate's systematic
// V_th shift is the sum of the deviates of all quadrants containing it,
// so nearby gates (e.g. the two adjacent ALUs of the PUF) share coarse
// deviates and are strongly correlated — the physical basis of the paper's
// claim that "variations due to systematic spatial variations are minimal"
// between the redundant ALUs.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace pufatt::variation {

struct QuadTreeConfig {
  /// Number of hierarchy levels (level l has 2^l x 2^l cells).
  std::size_t levels = 4;
  /// Die edge length in the same grid units as gate placements.
  double die_size = 64.0;
  /// Fraction of total V_th variance assigned to the spatially-correlated
  /// (quad-tree) part; the rest is purely random per gate.
  double systematic_fraction = 0.5;
};

/// One sampled spatial variation map (one per chip instance).
class QuadTreeSample {
 public:
  /// Draws a fresh map.  `total_sigma` is the overall V_th standard
  /// deviation; the systematic part gets systematic_fraction of the
  /// variance, split equally across levels.
  QuadTreeSample(const QuadTreeConfig& config, double total_sigma,
                 support::Xoshiro256pp& rng);

  /// Systematic V_th shift at die position (x, y).  Positions outside the
  /// die are clamped to the die boundary.
  double systematic_shift(double x, double y) const;

  /// Standard deviation of the remaining per-gate random component.
  double random_sigma() const { return random_sigma_; }

  const QuadTreeConfig& config() const { return config_; }

 private:
  QuadTreeConfig config_;
  double random_sigma_ = 0.0;
  /// level_cells_[l] holds 2^l * 2^l deviates, row-major.
  std::vector<std::vector<double>> level_cells_;
};

}  // namespace pufatt::variation
