#include "variation/aging.hpp"

#include <cmath>
#include <stdexcept>

namespace pufatt::variation {

double aging_vth_shift(double coeff_v, double duty, double hours,
                       const AgingParams& params) {
  if (duty < 0.0 || duty > 1.0) {
    throw std::invalid_argument("aging_vth_shift: duty outside [0,1]");
  }
  if (hours < 0.0) {
    throw std::invalid_argument("aging_vth_shift: negative stress time");
  }
  if (duty == 0.0 || hours == 0.0) return 0.0;
  return coeff_v * std::pow(duty * hours, params.exponent);
}

}  // namespace pufatt::variation
