#include "net/loadgen.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <thread>

#include "obs/trace.hpp"

namespace pufatt::net {

struct LoadGenerator::Conn {
  std::size_t index = 0;       ///< connection ordinal
  std::size_t job = 0;         ///< current job id (global)
  std::size_t jobs_done = 0;   ///< jobs driven to a terminal state
  Fd fd;
  FrameDecoder decoder;
  std::deque<std::vector<std::uint8_t>> write_queue;
  std::size_t front_offset = 0;
  bool want_write = false;
  bool awaiting_reply = false;
  bool waiting_retry = false;
  bool done = false;           ///< all jobs terminal; fd closed
  std::uint32_t busy_retries = 0;
  std::uint64_t send_ns = 0;     ///< first send of the current job
  std::uint64_t trace_id = 0;    ///< sampled client.job root id (0 = untraced)
  std::uint64_t attempt_ns = 0;  ///< send of the *current* attempt
};

LoadGenerator::LoadGenerator(const LoadGenConfig& config)
    : config_(config), loop_(config.backend) {}

JobRequest LoadGenerator::job_for(const LoadGenConfig& config,
                                  std::size_t job) {
  JobRequest request;
  request.device_id =
      "dev-" + std::to_string(config.devices > 0 ? job % config.devices : 0);
  request.channel_seed =
      config.channel_seed_base + config.channel_seed_mult * job;
  request.rng_seed = config.rng_seed_base + config.rng_seed_mult * job;
  request.tag = job;
  return request;
}

LoadGenReport LoadGenerator::run() {
  report_ = LoadGenReport{};
  report_.jobs = config_.connections * config_.jobs_per_connection;
  report_.by_job.assign(report_.jobs, JobVerdict{});
  conns_.clear();
  retry_at_.clear();
  live_conns_ = 0;

  const auto start = std::chrono::steady_clock::now();

  // The retry queue is the only time-driven work; 1ms resolution is far
  // below any realistic retry-after hint.  Armed before the connect loop so
  // the interleaved polls below can already fire it.
  loop_.set_timer(1.0, [this] { check_retry_queue(); });

  for (std::size_t c = 0; c < config_.connections; ++c) {
    open_connection(c);
    // A fleet-scale connect storm can take long enough (accept-queue
    // overflow puts stragglers into SYN retransmit) that early connections
    // already hold replies.  Service them as we go: an unread BusyReply is
    // a silent connection, and a silent connection eventually gets
    // idle-evicted by the server.
    if ((c & 63u) == 63u) loop_.poll_once(0);
  }

  maybe_finish();  // degenerate configs (0 jobs, all connects failed)
  if (live_conns_ > 0) loop_.run();

  report_.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  for (const auto& conn : conns_) {
    if (conn && !conn->done) close_conn(conn);
  }
  return report_;
}

void LoadGenerator::open_connection(std::size_t index) {
  auto conn = std::make_shared<Conn>();
  conn->index = index;
  conn->job = index * config_.jobs_per_connection;

  // Under a mass connect burst the accept queue can transiently overflow;
  // a couple of paced retries ride it out.
  for (int attempt = 0;; ++attempt) {
    try {
      conn->fd = connect_to(config_.endpoint);
      break;
    } catch (const NetError&) {
      if (attempt >= 3) {
        ++report_.connect_failures;
        conn->done = true;
        conns_.push_back(std::move(conn));
        fail_remaining(conns_.back());
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
    }
  }

  ++live_conns_;
  conns_.push_back(conn);
  loop_.add(conn->fd.get(), EventLoop::kReadable,
            [this, conn](std::uint32_t events) { on_io(conn, events); });
  if (config_.jobs_per_connection == 0) {
    close_conn(conn);
    return;
  }
  send_current_job(conn);
}

void LoadGenerator::on_io(const std::shared_ptr<Conn>& conn,
                          std::uint32_t events) {
  if (conn->done) return;
  if (events & EventLoop::kReadable) {
    std::uint8_t buf[16 * 1024];
    std::vector<FrameDecoder::Frame> frames;
    for (;;) {
      const ssize_t n = ::read(conn->fd.get(), buf, sizeof(buf));
      if (n > 0) {
        report_.bytes_in += static_cast<std::uint64_t>(n);
        frames.clear();
        const bool ok =
            conn->decoder.feed(buf, static_cast<std::size_t>(n), frames);
        for (const auto& frame : frames) {
          on_reply(conn, frame);
          if (conn->done) return;
        }
        if (!ok) {
          ++report_.decode_errors;
          fail_remaining(conn);
          close_conn(conn);
          return;
        }
        continue;
      }
      if (n == 0) {
        ++report_.disconnects;
        fail_remaining(conn);
        close_conn(conn);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      ++report_.disconnects;
      fail_remaining(conn);
      close_conn(conn);
      return;
    }
  }
  if (conn->done) return;
  if (events & EventLoop::kWritable) flush_writes(conn);
  if (conn->done) return;
  if (events & EventLoop::kError) {
    ++report_.disconnects;
    fail_remaining(conn);
    close_conn(conn);
  }
}

void LoadGenerator::on_reply(const std::shared_ptr<Conn>& conn,
                             const FrameDecoder::Frame& frame) {
  if (!conn->awaiting_reply) return;  // unsolicited frame; ignore

  try {
    switch (frame.type) {
      case MsgType::kVerdictReply: {
        const VerdictReply reply = decode_verdict_reply(frame.payload);
        if (reply.tag != conn->job) break;  // stale reply; keep waiting
        const std::uint64_t now = obs::monotonic_ns();
        auto& verdict = report_.by_job[conn->job];
        verdict.completed = true;
        verdict.reply = reply;
        verdict.busy_retries = conn->busy_retries;
        verdict.latency_us =
            static_cast<double>(now - conn->send_ns) / 1e3;
        ++report_.verdicts;
        if (conn->trace_id != 0) {
          // The terminal attempt's wire interval, then the job root.  The
          // root's notes carry the cross-process join key ("trace") and
          // the server's pool.job root span id echoed in the reply.
          obs::SpanRecord wire;
          wire.id = config_.tracer->next_id();
          wire.parent = conn->trace_id;
          wire.name = "client.wire";
          wire.start_ns = conn->attempt_ns;
          wire.end_ns = now;
          wire.notes[0] = obs::Note{"busy", 0.0};
          wire.note_count = 1;
          config_.tracer->emit(wire);

          obs::SpanRecord root;
          root.id = conn->trace_id;
          root.name = "client.job";
          root.start_ns = conn->send_ns;
          root.end_ns = now;
          root.notes[0] =
              obs::Note{"trace", static_cast<double>(conn->trace_id)};
          root.notes[1] =
              obs::Note{"outcome", static_cast<double>(reply.outcome)};
          root.notes[2] = obs::Note{
              "server_span", static_cast<double>(frame.trace.span_id)};
          root.notes[3] = obs::Note{
              "busy_retries", static_cast<double>(conn->busy_retries)};
          root.note_count = 4;
          config_.tracer->emit(root);
        }
        switch (reply.outcome) {
          case service::JobOutcome::kAccepted: ++report_.accepted; break;
          case service::JobOutcome::kRejected: ++report_.rejected; break;
          case service::JobOutcome::kInconclusive:
            ++report_.inconclusive;
            break;
          case service::JobOutcome::kUnknownDevice:
            ++report_.unknown_device;
            break;
        }
        advance(conn);
        break;
      }
      case MsgType::kBusyReply: {
        const BusyReply busy = decode_busy_reply(frame.payload);
        if (busy.tag != conn->job) break;
        ++report_.busy_replies;
        ++conn->busy_retries;
        if (conn->trace_id != 0) {
          // One wire interval per shed attempt: the merge can tell time
          // lost to backpressure from time inside the accepted attempt.
          obs::SpanRecord wire;
          wire.id = config_.tracer->next_id();
          wire.parent = conn->trace_id;
          wire.name = "client.wire";
          wire.start_ns = conn->attempt_ns;
          wire.end_ns = obs::monotonic_ns();
          wire.notes[0] = obs::Note{"busy", 1.0};
          wire.note_count = 1;
          config_.tracer->emit(wire);
        }
        if (conn->busy_retries > config_.max_busy_retries) {
          ++report_.retries_exhausted;
          advance(conn);  // abandon this job, move on
          break;
        }
        // Obey the hint (clamped): re-send when the server expects room.
        // The floor also keeps a sub-floor configured ceiling legal.
        double wait_us =
            std::clamp(busy.retry_after_us, 100.0,
                       std::max(100.0, config_.max_retry_wait_ms * 1e3));
        // De-synchronize the retry wave (see LoadGenConfig::retry_jitter).
        if (config_.retry_jitter > 0.0) {
          jitter_state_ += 0x9E3779B97F4A7C15ull;  // splitmix64
          std::uint64_t z = jitter_state_;
          z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
          z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
          z ^= z >> 31;
          const double u01 = static_cast<double>(z >> 11) * 0x1.0p-53;
          wait_us *= 1.0 - config_.retry_jitter * u01;
        }
        conn->awaiting_reply = false;
        conn->waiting_retry = true;
        retry_at_.emplace(
            obs::monotonic_ns() + static_cast<std::uint64_t>(wait_us * 1e3),
            conn);
        break;
      }
      case MsgType::kErrorReply: {
        ++report_.error_replies;
        fail_remaining(conn);
        close_conn(conn);
        break;
      }
      case MsgType::kJobRequest:
        break;  // a server never sends requests; ignore
    }
  } catch (const core::SerializationError&) {
    ++report_.decode_errors;
    fail_remaining(conn);
    close_conn(conn);
  }
}

void LoadGenerator::send_current_job(const std::shared_ptr<Conn>& conn) {
  const JobRequest request = job_for(config_, conn->job);
  conn->awaiting_reply = true;
  conn->waiting_retry = false;
  if (conn->busy_retries == 0) {
    // First attempt: this job's sampling decision is made here, once —
    // busy retries reuse the same trace so the whole shed-and-retry
    // history lands under one client.job root.
    conn->send_ns = obs::monotonic_ns();
    conn->trace_id =
        config_.tracer != nullptr && config_.tracer->enabled()
            ? config_.tracer->sample_root()
            : 0;
  }
  conn->attempt_ns = obs::monotonic_ns();
  // A sampled job stamps its root id as both trace id and parent span:
  // the server parents its work under the client root directly.
  auto bytes = encode_job_request(
      request, TraceContext{conn->trace_id, conn->trace_id});
  report_.bytes_out += bytes.size();
  conn->write_queue.push_back(std::move(bytes));
  flush_writes(conn);
}

void LoadGenerator::advance(const std::shared_ptr<Conn>& conn) {
  ++conn->jobs_done;
  conn->busy_retries = 0;
  conn->awaiting_reply = false;
  conn->trace_id = 0;  // next job makes its own sampling decision
  if (conn->jobs_done >= config_.jobs_per_connection) {
    close_conn(conn);
    return;
  }
  ++conn->job;
  send_current_job(conn);
}

void LoadGenerator::fail_remaining(const std::shared_ptr<Conn>& conn) {
  // Jobs this connection will never finish stay !completed in by_job;
  // nothing further to record per job.
  conn->awaiting_reply = false;
}

void LoadGenerator::close_conn(const std::shared_ptr<Conn>& conn) {
  if (conn->done) return;
  conn->done = true;
  if (conn->fd) {
    loop_.remove(conn->fd.get());
    conn->fd.reset();
    --live_conns_;
  }
  maybe_finish();
}

void LoadGenerator::flush_writes(const std::shared_ptr<Conn>& conn) {
  while (!conn->write_queue.empty()) {
    const auto& front = conn->write_queue.front();
    // MSG_NOSIGNAL: a dying server must read as EPIPE, not kill the run.
    const ssize_t n =
        ::send(conn->fd.get(), front.data() + conn->front_offset,
               front.size() - conn->front_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->front_offset += static_cast<std::size_t>(n);
      if (conn->front_offset == front.size()) {
        conn->front_offset = 0;
        conn->write_queue.pop_front();
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        loop_.modify(conn->fd.get(),
                     EventLoop::kReadable | EventLoop::kWritable);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    ++report_.disconnects;
    fail_remaining(conn);
    close_conn(conn);
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    loop_.modify(conn->fd.get(), EventLoop::kReadable);
  }
}

void LoadGenerator::check_retry_queue() {
  const std::uint64_t now = obs::monotonic_ns();
  while (!retry_at_.empty() && retry_at_.begin()->first <= now) {
    auto conn = retry_at_.begin()->second;
    retry_at_.erase(retry_at_.begin());
    if (conn->done || !conn->waiting_retry) continue;
    send_current_job(conn);
  }
}

void LoadGenerator::maybe_finish() {
  if (live_conns_ == 0) loop_.stop();
}

}  // namespace pufatt::net
