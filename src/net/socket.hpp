// Thin POSIX socket layer: RAII descriptors and endpoint plumbing.
//
// Everything above this header (event loop, server, load generator) is
// transport-agnostic: an Endpoint names either a TCP address or a Unix
// domain socket path, and the two factory functions hand back non-blocking
// descriptors ready for the event loop.  TCP is the deployment story —
// verifier and fleet on different machines — while Unix sockets give tests
// and single-host benches the same code path without touching the network
// stack.
//
// Error policy: setup-time failures (bind, listen, connect, bad endpoint
// spec) throw NetError with errno context; steady-state I/O is done by the
// caller on the raw fd, where EAGAIN is flow control, not an error.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace pufatt::net {

/// Raised on socket setup failures and malformed endpoint specs.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Move-only owner of a file descriptor; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  explicit operator bool() const { return fd_ >= 0; }

  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// A listen/connect target: "tcp:HOST:PORT" or "unix:PATH".
struct Endpoint {
  enum class Kind { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  ///< TCP only
  std::uint16_t port = 0;          ///< TCP only; 0 = ephemeral (serve)
  std::string path;                ///< Unix only

  static Endpoint tcp(std::string host, std::uint16_t port);
  static Endpoint unix_path(std::string path);

  /// Parses "tcp:HOST:PORT" / "unix:PATH"; throws NetError on anything
  /// else (including trailing garbage in the port).
  static Endpoint parse(const std::string& spec);

  /// Round-trips through parse(): "tcp:127.0.0.1:4433", "unix:/tmp/s".
  std::string describe() const;
};

/// Sets O_NONBLOCK; throws NetError.
void set_nonblocking(int fd);

/// Creates a non-blocking listener bound to `endpoint` (SO_REUSEADDR for
/// TCP; a stale Unix socket path is unlinked first).  Throws NetError.
Fd listen_on(const Endpoint& endpoint, int backlog = 128);

/// The endpoint a listener actually bound to — resolves an ephemeral TCP
/// port 0 to the kernel-assigned one.  Throws NetError.
Endpoint local_endpoint(int listener_fd, const Endpoint& requested);

/// Connects to `endpoint` (blocking handshake — loopback and Unix sockets
/// complete immediately), then switches the socket non-blocking.  TCP
/// connections get TCP_NODELAY: attestation frames are small and
/// latency-bound.  Throws NetError.
Fd connect_to(const Endpoint& endpoint);

/// Accepts one pending connection as a non-blocking fd.  Returns an empty
/// Fd when the accept queue is empty (EAGAIN); throws NetError on real
/// accept failures (except the per-connection ones — ECONNABORTED and
/// friends — which are reported as empty too and simply skipped).
Fd accept_on(int listener_fd);

}  // namespace pufatt::net
