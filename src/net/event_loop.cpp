#include "net/event_loop.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace pufatt::net {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#ifdef __linux__
std::uint32_t from_epoll(std::uint32_t ev) {
  std::uint32_t out = 0;
  if (ev & (EPOLLIN | EPOLLHUP)) out |= EventLoop::kReadable;
  if (ev & EPOLLOUT) out |= EventLoop::kWritable;
  if (ev & (EPOLLERR | EPOLLHUP)) out |= EventLoop::kError;
  return out;
}

std::uint32_t to_epoll(std::uint32_t interest) {
  std::uint32_t ev = 0;
  if (interest & EventLoop::kReadable) ev |= EPOLLIN;
  if (interest & EventLoop::kWritable) ev |= EPOLLOUT;
  return ev;
}
#endif

short to_poll(std::uint32_t interest) {
  short ev = 0;
  if (interest & EventLoop::kReadable) ev |= POLLIN;
  if (interest & EventLoop::kWritable) ev |= POLLOUT;
  return ev;
}

std::uint32_t from_poll(short ev) {
  std::uint32_t out = 0;
  if (ev & (POLLIN | POLLHUP)) out |= EventLoop::kReadable;
  if (ev & POLLOUT) out |= EventLoop::kWritable;
  if (ev & (POLLERR | POLLHUP | POLLNVAL)) out |= EventLoop::kError;
  return out;
}

}  // namespace

EventLoop::EventLoop(Backend backend) {
#ifdef __linux__
  if (backend != Backend::kPoll) {
    const int efd = ::epoll_create1(0);
    if (efd < 0) {
      throw NetError(std::string("epoll_create1: ") + std::strerror(errno));
    }
    epoll_fd_.reset(efd);
  }
#else
  if (backend == Backend::kEpoll) {
    throw NetError("epoll backend requested on a non-Linux platform");
  }
#endif
  (void)backend;

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    throw NetError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_.reset(pipe_fds[0]);
  wake_write_.reset(pipe_fds[1]);
  set_nonblocking(wake_read_.get());
  set_nonblocking(wake_write_.get());
  add(wake_read_.get(), kReadable, [this](std::uint32_t) {
    drain_wake_pipe();
  });
}

EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, std::uint32_t interest, IoCallback callback) {
  auto entry = std::make_shared<Entry>();
  entry->fd = fd;
  entry->interest = interest;
  entry->callback = std::move(callback);
  entries_[fd] = entry;
#ifdef __linux__
  if (using_epoll()) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
      entries_.erase(fd);
      throw NetError(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
    }
    return;
  }
#endif
  poll_dirty_ = true;
}

void EventLoop::modify(int fd, std::uint32_t interest) {
  const auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  it->second->interest = interest;
#ifdef __linux__
  if (using_epoll()) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
      throw NetError(std::string("epoll_ctl(MOD): ") + std::strerror(errno));
    }
    return;
  }
#endif
  poll_dirty_ = true;
}

void EventLoop::remove(int fd) {
  const auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  it->second->dead = true;  // a dispatch batch may still hold the entry
  entries_.erase(it);
#ifdef __linux__
  if (using_epoll()) {
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  poll_dirty_ = true;
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    stop_requested_ = true;
  }
  wake();
}

void EventLoop::set_timer(double period_ms, std::function<void()> on_tick) {
  if (timers_.empty()) timers_.resize(1);
  Timer& slot = timers_[0];
  slot.period_ms = period_ms;
  slot.on_tick = std::move(on_tick);
  slot.next_ns =
      period_ms > 0.0
          ? steady_ns() + static_cast<std::uint64_t>(period_ms * 1e6)
          : 0;
}

void EventLoop::add_timer(double period_ms, std::function<void()> on_tick) {
  if (timers_.empty()) timers_.resize(1);  // keep slot 0 for set_timer()
  Timer timer;
  timer.period_ms = period_ms;
  timer.on_tick = std::move(on_tick);
  timer.next_ns =
      period_ms > 0.0
          ? steady_ns() + static_cast<std::uint64_t>(period_ms * 1e6)
          : 0;
  timers_.push_back(std::move(timer));
}

void EventLoop::wake() {
  const char byte = 1;
  // EAGAIN means the pipe already holds a wakeup; either way the loop runs.
  [[maybe_unused]] const auto n = ::write(wake_write_.get(), &byte, 1);
}

void EventLoop::drain_wake_pipe() {
  char buf[256];
  while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::run_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

int EventLoop::timeout_ms_until_tick() const {
  std::uint64_t soonest = 0;
  bool armed = false;
  for (const Timer& timer : timers_) {
    if (timer.period_ms <= 0.0 || !timer.on_tick) continue;
    if (!armed || timer.next_ns < soonest) soonest = timer.next_ns;
    armed = true;
  }
  if (!armed) return -1;
  const std::uint64_t now = steady_ns();
  if (now >= soonest) return 0;
  const std::uint64_t delta_ms = (soonest - now) / 1'000'000u;
  return static_cast<int>(delta_ms) + 1;
}

void EventLoop::maybe_fire_timer() {
  // Index loop on purpose: a tick callback may add_timer(), growing the
  // vector (the new timer first fires on a later iteration).
  for (std::size_t i = 0; i < timers_.size(); ++i) {
    if (timers_[i].period_ms <= 0.0 || !timers_[i].on_tick) continue;
    const std::uint64_t now = steady_ns();
    if (now < timers_[i].next_ns) continue;
    timers_[i].next_ns =
        now + static_cast<std::uint64_t>(timers_[i].period_ms * 1e6);
    timers_[i].on_tick();
  }
}

int EventLoop::wait(
    std::vector<std::pair<std::shared_ptr<Entry>, std::uint32_t>>& ready,
    int timeout_ms) {
  ready.clear();
#ifdef __linux__
  if (using_epoll()) {
    epoll_event events[256];
    const int n = ::epoll_wait(epoll_fd_.get(), events, 256, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw NetError(std::string("epoll_wait: ") + std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      const auto it = entries_.find(events[i].data.fd);
      if (it == entries_.end()) continue;
      ready.emplace_back(it->second, from_epoll(events[i].events));
    }
    return n;
  }
#endif
  if (poll_dirty_) {
    pollfds_.clear();
    poll_entries_.clear();
    pollfds_.reserve(entries_.size());
    poll_entries_.reserve(entries_.size());
    for (const auto& [fd, entry] : entries_) {
      pollfds_.push_back({fd, to_poll(entry->interest), 0});
      poll_entries_.push_back(entry);
    }
    poll_dirty_ = false;
  }
  const int n = ::poll(pollfds_.data(),
                       static_cast<nfds_t>(pollfds_.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw NetError(std::string("poll: ") + std::strerror(errno));
  }
  for (std::size_t i = 0; i < pollfds_.size(); ++i) {
    if (pollfds_[i].revents == 0) continue;
    ready.emplace_back(poll_entries_[i], from_poll(pollfds_[i].revents));
  }
  return n;
}

void EventLoop::poll_once(int timeout_ms) {
  std::vector<std::pair<std::shared_ptr<Entry>, std::uint32_t>> ready;
  wait(ready, timeout_ms);
  for (auto& [entry, events] : ready) {
    if (entry->dead || events == 0) continue;
    entry->callback(events);
  }
  run_posted();
  maybe_fire_timer();
}

void EventLoop::run() {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    stop_requested_ = false;
  }
  std::vector<std::pair<std::shared_ptr<Entry>, std::uint32_t>> ready;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(post_mutex_);
      if (stop_requested_) break;
    }
    wait(ready, timeout_ms_until_tick());
    for (auto& [entry, events] : ready) {
      if (entry->dead || events == 0) continue;
      entry->callback(events);
    }
    ready.clear();  // drop entry refs before callbacks' effects pile up
    run_posted();
    maybe_fire_timer();
  }
  run_posted();  // closures posted between the stop flag and the wake
}

}  // namespace pufatt::net
