#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pufatt::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_in make_tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad IPv4 address: " + ep.host);
  }
  return addr;
}

sockaddr_un make_unix_addr(const Endpoint& ep) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (ep.path.empty() || ep.path.size() >= sizeof(addr.sun_path)) {
    throw NetError("unix socket path empty or too long: " + ep.path);
  }
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return addr;
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint ep;
  ep.kind = Kind::kTcp;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

Endpoint Endpoint::unix_path(std::string path) {
  Endpoint ep;
  ep.kind = Kind::kUnix;
  ep.path = std::move(path);
  return ep;
}

Endpoint Endpoint::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.empty()) throw NetError("unix endpoint needs a path: " + spec);
    return unix_path(path);
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      throw NetError("tcp endpoint must be tcp:HOST:PORT: " + spec);
    }
    const std::string host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    if (port_str.empty() ||
        port_str.find_first_not_of("0123456789") != std::string::npos) {
      throw NetError("bad tcp port: " + spec);
    }
    const unsigned long port = std::stoul(port_str);
    if (port > 65535) throw NetError("tcp port out of range: " + spec);
    return tcp(host, static_cast<std::uint16_t>(port));
  }
  throw NetError("endpoint must start with tcp: or unix:  — got: " + spec);
}

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
}

Fd listen_on(const Endpoint& endpoint, int backlog) {
  const int domain = endpoint.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  Fd fd(::socket(domain, SOCK_STREAM, 0));
  if (!fd) throw_errno("socket");

  if (endpoint.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
        0) {
      throw_errno("setsockopt(SO_REUSEADDR)");
    }
    const sockaddr_in addr = make_tcp_addr(endpoint);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw_errno("bind " + endpoint.describe());
    }
  } else {
    const sockaddr_un addr = make_unix_addr(endpoint);
    ::unlink(endpoint.path.c_str());  // stale socket from a previous run
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw_errno("bind " + endpoint.describe());
    }
  }
  if (::listen(fd.get(), backlog) < 0) throw_errno("listen");
  set_nonblocking(fd.get());
  return fd;
}

Endpoint local_endpoint(int listener_fd, const Endpoint& requested) {
  if (requested.kind == Endpoint::Kind::kUnix) return requested;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener_fd, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    throw_errno("getsockname");
  }
  Endpoint bound = requested;
  bound.port = ntohs(addr.sin_port);
  return bound;
}

Fd connect_to(const Endpoint& endpoint) {
  const int domain = endpoint.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  Fd fd(::socket(domain, SOCK_STREAM, 0));
  if (!fd) throw_errno("socket");

  int rc;
  if (endpoint.kind == Endpoint::Kind::kTcp) {
    const sockaddr_in addr = make_tcp_addr(endpoint);
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    const sockaddr_un addr = make_unix_addr(endpoint);
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  }
  if (rc < 0) throw_errno("connect " + endpoint.describe());

  if (endpoint.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) <
        0) {
      throw_errno("setsockopt(TCP_NODELAY)");
    }
  }
  set_nonblocking(fd.get());
  return fd;
}

Fd accept_on(int listener_fd) {
  const int fd = ::accept(listener_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED ||
        errno == EINTR) {
      return Fd();
    }
    throw_errno("accept");
  }
  Fd accepted(fd);
  set_nonblocking(fd);
  return accepted;
}

}  // namespace pufatt::net
