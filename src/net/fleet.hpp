// Deterministic simulated fleet shared by the server CLI, the network
// tests and bench/net_throughput.
//
// A networked attestation service needs real enrolled devices behind it.
// SimFleet enrolls `count` PufDevices from a fixed seed schedule (the same
// one serve-demo and the service tests use: chip seeds 0xD1CE0000+d, a
// 600-word firmware image from a seeded RNG), keeps both the registry side
// (EnrollmentRecord) and the prover side (the PufDevice itself), and hands
// out the responder factory the AttestationServer plugs into its job
// dispatch.
//
// Determinism is the point: a verdict is a pure function of (record,
// responder, channel_seed, rng_seed), and every SimFleet(count, seed)
// builds bit-identical devices, so a load generator on one side of a
// socket and an in-process VerifierPool on the other can run the *same*
// job list and must produce the same verdict per tag — that parity check
// is how the bench proves the network layer never corrupts a session.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/distributed.hpp"
#include "core/enrollment.hpp"
#include "core/session.hpp"
#include "ecc/reed_muller.hpp"
#include "service/device_registry.hpp"

namespace pufatt::net {

class SimFleet {
 public:
  /// Enrolls `count` devices.  `seed` varies the whole fleet (chip seeds,
  /// firmware image) while keeping it reproducible.
  explicit SimFleet(std::size_t count, std::uint64_t seed = 0x5E47EDE40);

  std::size_t size() const { return devices_.size(); }
  const ecc::ReedMuller1& code() const { return code_; }
  const service::RegistryView& registry() const { return registry_; }

  /// "dev-N"; out-of-range indices still format (useful for probing the
  /// unknown-device path).
  static std::string device_id(std::size_t index) {
    return "dev-" + std::to_string(index);
  }

  /// Index for a fleet-generated id; size() when the id is not ours.
  std::size_t index_of(const std::string& device_id) const;

  /// Honest responder for device `index`, deterministic in `rng_seed`.
  /// Thread-safe to *create* here; the returned responder runs sessions on
  /// whatever worker thread the pool picks, one at a time per device (the
  /// emulator-cache lease upstream guarantees that).
  core::Responder responder(std::size_t index, std::uint64_t rng_seed) const;

  /// Responder for a wire job: resolves the device id and seeds the
  /// simulated prover from the job's rng_seed (xor-folded exactly like
  /// serve-demo, so wire jobs match in-process baselines).  Returns an
  /// empty function for ids outside the fleet.
  core::Responder responder_for(const std::string& device_id,
                                std::uint64_t rng_seed) const;

 private:
  struct Device {
    std::unique_ptr<alupuf::PufDevice> device;
    core::EnrollmentRecord record;
  };

  ecc::ReedMuller1 code_;
  core::DeviceProfile profile_;
  std::vector<Device> devices_;
  service::DeviceRegistry registry_;
};

}  // namespace pufatt::net
