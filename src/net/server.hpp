// Socket front end for the attestation service.
//
// One event-loop thread owns every connection; a VerifierPool owns the
// verify work.  The seam between them is exactly the pool's submit
// contract: decoded JobRequests are submitted without blocking, and the
// two non-enqueue outcomes become wire replies — kRejectedBusy turns into
// a BusyReply carrying the pool's retry-after hint (the fleet-level
// backpressure signal), kShuttingDown into an ErrorReply.  Verdicts travel
// back from worker threads via EventLoop::post, so connection state is
// only ever touched on the loop thread.
//
// Connection lifecycle and shedding rules (DESIGN.md §14):
//   * accept → read/decode frames → submit; replies queue per connection
//     and flush as the socket drains.
//   * Any framing violation (bad magic, oversized declared length, CRC
//     mismatch) closes the connection: a desynced stream cannot be
//     re-trusted.  A structurally valid frame with an unservable payload
//     gets an ErrorReply, then the connection closes too.
//   * A connection idle (no bytes received) past `idle_timeout_ms` is
//     evicted — slow-drip clients cannot pin fds open.
//   * A connection whose write queue exceeds `max_write_queue_bytes`
//     (a client that sends jobs but never reads verdicts) is shed.
//   * Jobs whose connection died before the verdict completed are counted
//     (`replies_dropped`) and the verdict is discarded: the pool finishes
//     what it started, the socket layer just loses the delivery.
//
// Observability: `net.accept` (per accepted connection), `net.read` (per
// readable event: bytes in, frames decoded), `net.reply` (per verdict
// delivery: encode + enqueue + opportunistic flush) spans under
// `config.tracer`, plus NetCounters mirroring the service-metrics idiom.
//
// Distributed tracing (DESIGN.md §16): a traced JobRequest's context is
// adopted — the pool.job root records the client's trace id, and the
// verdict reply carries this server's root span id back — so a client
// trace file and a server trace file merge into one cross-process
// timeline.  Untraced requests get untraced replies, byte-identical to
// the pre-trace protocol.
//
// Live telemetry: a kStatsRequest frame is answered inline on the loop
// thread with stats_json(), a byte-stable snapshot of net counters, pool
// state and (when configured) the process MetricRegistry; a periodic
// loop timer can append the same snapshots to a metrics JSONL file.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/faulty_channel.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/verifier_pool.hpp"

namespace pufatt::net {

/// Builds the responder for a wire job (the simulated prover).  Runs on
/// the loop thread; the returned function runs on pool worker threads.
/// An empty responder means "unknown device": the server short-circuits a
/// kUnknownDevice verdict without consuming pool capacity.
using ResponderFactory =
    std::function<core::Responder(const JobRequest& request)>;

struct ServerConfig {
  Endpoint endpoint;                    ///< tcp:HOST:PORT (0 = ephemeral) or unix:PATH
  service::PoolConfig pool;             ///< workers, queue bound, session/channel
  core::FaultParams job_faults;         ///< simulated link faults per job
  double idle_timeout_ms = 30'000.0;    ///< evict silent connections
  std::size_t max_write_queue_bytes = 1u << 20;  ///< per-connection cap
  /// Accept-queue depth handed to listen(2); the kernel clamps it to
  /// net.core.somaxconn.  A fleet-scale connect storm overflows the
  /// historical 128 default long before the loop is actually saturated,
  /// and every overflowed SYN costs its client a ~1 s kernel retransmit.
  int listen_backlog = 4096;
  std::size_t read_chunk_bytes = 64 * 1024;
  EventLoop::Backend backend = EventLoop::Backend::kAuto;
  obs::Tracer* tracer = nullptr;        ///< must outlive the server; null = off
  /// Optional process-wide metric registry (store WAL/replication/shard
  /// gauges live there).  Included verbatim in the stats frame and the
  /// metrics JSONL; must outlive the server.  Null = "registry":{}.
  obs::MetricRegistry* registry = nullptr;
  /// When non-empty, a loop timer appends one
  /// `{"ts_ns":...,"stats":<stats_json()>}` line per tick to this file.
  std::string metrics_jsonl;
  double stats_interval_ms = 250.0;     ///< metrics ticker cadence
};

/// Monotonic event counters plus the live-connection gauge.  snapshot() is
/// loop-thread-consistent: take it via run-loop quiescence (stop) or
/// accept small skew, exactly like service metrics.
struct NetCounters {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;           ///< all closes, whatever the reason
  std::uint64_t idle_evicted = 0;
  std::uint64_t decode_errors = 0;    ///< framing violations (connection died)
  std::uint64_t payload_errors = 0;   ///< intact frame, unservable payload
  /// Structurally valid frames the server refused to dispatch (unknown
  /// type or payload failed its codec).  Always moves in lockstep with
  /// payload_errors today; split out so the shed-path accounting tests
  /// can pin the relationship down.
  std::uint64_t frames_rejected = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t requests = 0;         ///< well-formed JobRequests dispatched
  std::uint64_t verdicts_sent = 0;
  std::uint64_t stats_served = 0;     ///< StatsReply frames sent
  std::uint64_t busy_replies = 0;     ///< pool backpressure relayed to the wire
  std::uint64_t error_replies = 0;
  std::uint64_t replies_dropped = 0;  ///< verdict outlived its connection
  std::uint64_t writeq_shed = 0;      ///< connections killed by the write cap
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t open_connections = 0;  ///< gauge
};

class AttestationServer {
 public:
  /// Binds and listens immediately (so an ephemeral port is known before
  /// run()), but accepts nothing until run().  `cache` must outlive the
  /// server; `factory` is called on the loop thread.
  AttestationServer(service::EmulatorCache& cache, ResponderFactory factory,
                    const ServerConfig& config);
  ~AttestationServer();

  AttestationServer(const AttestationServer&) = delete;
  AttestationServer& operator=(const AttestationServer&) = delete;

  /// Serves until stop(); returns after every connection is closed.  The
  /// pool keeps draining in-flight jobs until destruction.
  void run();

  /// Thread-safe, idempotent.
  void stop();

  /// Where clients should connect (ephemeral TCP port resolved).
  const Endpoint& bound_endpoint() const { return bound_; }

  NetCounters counters() const;
  const service::VerifierPool& pool() const { return *pool_; }
  service::VerifierPool& pool() { return *pool_; }

  /// Byte-stable live-telemetry snapshot (the kStatsReply body): sorted
  /// keys, no whitespace, integer counters.  Thread-safe — counters are
  /// read under their mutex, the pool's metrics are relaxed-atomic reads
  /// — so mid-load snapshots are each-counter-consistent, like
  /// NetCounters::snapshot semantics.
  std::string stats_json() const;

 private:
  struct Connection {
    std::uint64_t id = 0;
    Fd fd;
    FrameDecoder decoder;
    std::deque<std::vector<std::uint8_t>> write_queue;
    std::size_t write_queue_bytes = 0;
    std::size_t front_offset = 0;   ///< bytes of write_queue.front() already sent
    bool want_write = false;        ///< kWritable interest currently registered
    std::uint64_t last_activity_ns = 0;
    bool closing = false;
  };

  void on_accept();
  void on_io(const std::shared_ptr<Connection>& conn, std::uint32_t events);
  void on_readable(const std::shared_ptr<Connection>& conn);
  void dispatch_frame(const std::shared_ptr<Connection>& conn,
                      const FrameDecoder::Frame& frame);
  void handle_job_request(const std::shared_ptr<Connection>& conn,
                          const JobRequest& request,
                          const TraceContext& trace);
  void append_metrics_snapshot();
  void on_job_complete(const service::JobResult& result);
  void send_bytes(const std::shared_ptr<Connection>& conn,
                  std::vector<std::uint8_t> bytes);
  void flush_writes(const std::shared_ptr<Connection>& conn);
  void close_connection(const std::shared_ptr<Connection>& conn);
  void sweep_idle();

  /// All counter mutations happen on the loop thread; the lock only
  /// orders them against off-thread counters() readers.
  template <typename Fn>
  void count(Fn&& fn) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    fn(counters_);
  }

  service::EmulatorCache* cache_;
  ResponderFactory factory_;
  ServerConfig config_;
  Endpoint bound_;

  EventLoop loop_;
  Fd listener_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Connection>> connections_;
  /// In-flight pool jobs: server correlation id -> (connection, client tag).
  struct Pending {
    std::uint64_t conn_id = 0;
    std::uint64_t client_tag = 0;
  };
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t next_corr_id_ = 1;
  NetCounters counters_;
  mutable std::mutex counters_mutex_;  ///< counters_ reads off-thread
  /// Metrics JSONL sink (loop thread only); null when not configured.
  std::FILE* metrics_file_ = nullptr;

  // Declared last on purpose: the pool must be destroyed (drained, workers
  // joined) while loop_ is still alive, because completions post into it.
  std::unique_ptr<service::VerifierPool> pool_;
};

}  // namespace pufatt::net
