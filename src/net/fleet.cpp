#include "net/fleet.hpp"

#include "core/protocol.hpp"
#include "support/rng.hpp"

namespace pufatt::net {

SimFleet::SimFleet(std::size_t count, std::uint64_t seed)
    : code_(5), profile_(core::DistributedParams::small_profile()) {
  support::Xoshiro256pp rng(seed);
  std::vector<std::uint32_t> firmware(600);
  for (auto& word : firmware) word = static_cast<std::uint32_t>(rng.next());
  const auto image = core::make_enrolled_image(profile_, firmware);

  devices_.resize(count);
  for (std::size_t d = 0; d < count; ++d) {
    devices_[d].device = std::make_unique<alupuf::PufDevice>(
        profile_.puf_config, 0xD1CE0000 + d + (seed << 8), code_);
    devices_[d].record = core::enroll(*devices_[d].device, profile_, image);
    registry_.store(device_id(d), devices_[d].record);
  }
}

std::size_t SimFleet::index_of(const std::string& device_id) const {
  if (device_id.rfind("dev-", 0) != 0) return devices_.size();
  const std::string num = device_id.substr(4);
  if (num.empty() || num.find_first_not_of("0123456789") != std::string::npos) {
    return devices_.size();
  }
  const unsigned long long index = std::stoull(num);
  return index < devices_.size() ? static_cast<std::size_t>(index)
                                 : devices_.size();
}

core::Responder SimFleet::responder(std::size_t index,
                                    std::uint64_t rng_seed) const {
  auto prover = std::make_shared<core::CpuProver>(
      *devices_[index].device, devices_[index].record,
      core::CpuProver::Variant::kHonest, rng_seed);
  return [prover](const core::AttestationRequest& request) {
    auto outcome = prover->respond(request);
    return core::ProverReply{std::move(outcome.response), outcome.compute_us};
  };
}

core::Responder SimFleet::responder_for(const std::string& device_id,
                                        std::uint64_t rng_seed) const {
  const std::size_t index = index_of(device_id);
  if (index >= devices_.size()) return {};
  return responder(index, rng_seed ^ 0xF00D);
}

}  // namespace pufatt::net
