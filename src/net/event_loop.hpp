// Single-threaded readiness loop over poll(2) / epoll(7).
//
// One thread owns the loop: it blocks in the kernel until a watched fd is
// ready, dispatches callbacks, runs posted closures, and fires a periodic
// timer.  Everything the server and load generator do happens on this
// thread — connection state needs no locks — while other threads (pool
// workers delivering verdicts, a controller calling stop()) reach the loop
// exclusively through the thread-safe post()/stop() pair, which wake the
// loop via a self-pipe.
//
// Backend: epoll on Linux (O(ready) dispatch, the 10k-connection story),
// portable poll everywhere else.  Both are level-triggered — combined with
// read-until-EAGAIN that is the simple correctness point — and selectable
// at runtime so the test suite exercises the poll path on Linux too.
//
// Threading contract: add()/modify()/remove() and set_timer() may be
// called only from the loop thread or before run() starts.  post() and
// stop() are safe from any thread at any time, including after run()
// returned (the closure is then simply never executed).
#pragma once

#include <poll.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"

namespace pufatt::net {

class EventLoop {
 public:
  enum class Backend {
    kAuto,   ///< epoll where available, else poll
    kPoll,
    kEpoll,  ///< throws NetError off Linux
  };

  /// Readiness bits for interest sets and callback arguments.
  static constexpr std::uint32_t kReadable = 1u;
  static constexpr std::uint32_t kWritable = 2u;
  /// Delivered (never requested): error/hangup on the fd.
  static constexpr std::uint32_t kError = 4u;

  using IoCallback = std::function<void(std::uint32_t events)>;

  explicit EventLoop(Backend backend = Backend::kAuto);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watches `fd`.  The callback may add/modify/remove any fd, including
  /// its own (a removed fd's already-collected events are discarded).
  void add(int fd, std::uint32_t interest, IoCallback callback);
  void modify(int fd, std::uint32_t interest);
  void remove(int fd);

  /// Runs `fn` on the loop thread during the next iteration.  Thread-safe;
  /// wakes the loop if it is blocked in the kernel.
  void post(std::function<void()> fn);

  /// Periodic callback on the loop thread.  set_timer() owns the primary
  /// slot (period <= 0 disables it); add_timer() registers additional
  /// independent periodic timers — the loop's poll timeout is the minimum
  /// over all armed timers, and each fires on its own cadence.  Both are
  /// loop-thread-or-pre-run only, like add()/modify()/remove().
  void set_timer(double period_ms, std::function<void()> on_tick);
  void add_timer(double period_ms, std::function<void()> on_tick);

  /// Dispatches until stop().  Must be called at most once at a time.
  void run();

  /// One wait-dispatch iteration (posted closures and the timer included)
  /// without entering run().  Lets a caller doing long synchronous setup —
  /// the load generator's 10k-connection open storm — keep servicing
  /// already-watched fds so peers never see it as idle.  Loop thread only.
  void poll_once(int timeout_ms = 0);

  /// Thread-safe; run() returns after finishing the current iteration.
  void stop();

  bool using_epoll() const { return static_cast<bool>(epoll_fd_); }
  std::size_t watched() const { return entries_.size(); }

 private:
  struct Entry {
    int fd = -1;
    std::uint32_t interest = 0;
    IoCallback callback;
    bool dead = false;  ///< removed while a dispatch batch referenced it
  };

  void wake();
  void drain_wake_pipe();
  void run_posted();
  int timeout_ms_until_tick() const;
  void maybe_fire_timer();
  int wait(std::vector<std::pair<std::shared_ptr<Entry>, std::uint32_t>>& ready,
           int timeout_ms);

  std::unordered_map<int, std::shared_ptr<Entry>> entries_;
  Fd epoll_fd_;       ///< empty when on the poll backend
  Fd wake_read_;
  Fd wake_write_;

  // poll backend scratch, rebuilt when the fd set changes
  bool poll_dirty_ = true;
  std::vector<::pollfd> pollfds_;
  std::vector<std::shared_ptr<Entry>> poll_entries_;  ///< parallel to pollfds_

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  bool stop_requested_ = false;  ///< guarded by post_mutex_

  /// Timer slot 0 belongs to set_timer(); add_timer() appends.  A slot
  /// with period_ms <= 0 (or no callback) is disarmed.
  struct Timer {
    double period_ms = 0.0;
    std::function<void()> on_tick;
    std::uint64_t next_ns = 0;
  };
  std::vector<Timer> timers_;
};

}  // namespace pufatt::net
