#include "net/frame.hpp"

#include <cstring>

namespace pufatt::net {

namespace {

using core::SerializationError;

// Device ids are operator-assigned short names; a kilobyte is already
// absurd.  Checked against the *declared* length, before it sizes a copy.
constexpr std::size_t kMaxDeviceIdBytes = 1024;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  append_u32(out, static_cast<std::uint32_t>(v));
  append_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void append_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  append_u64(out, bits);
}

/// Bounds-checked little-endian reader over a payload.
class Cursor {
 public:
  explicit Cursor(const std::vector<std::uint8_t>& data) : data_(data) {}

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  std::string bytes(std::size_t n) {
    require(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  void expect_end() const {
    if (pos_ != data_.size()) {
      throw SerializationError("message payload has trailing bytes");
    }
  }

 private:
  void require(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw SerializationError("message payload truncated");
    }
  }

  const std::vector<std::uint8_t>& data_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kJobRequest:
      return "job_request";
    case MsgType::kVerdictReply:
      return "verdict_reply";
    case MsgType::kBusyReply:
      return "busy_reply";
    case MsgType::kErrorReply:
      return "error_reply";
    case MsgType::kStatsRequest:
      return "stats_request";
    case MsgType::kStatsReply:
      return "stats_reply";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const std::vector<std::uint8_t>& payload,
                                       const TraceContext& trace) {
  std::vector<std::uint8_t> out;
  const std::size_t ctx_bytes = trace.traced() ? kTraceContextBytes : 0;
  out.reserve(kFrameOverheadBytes + ctx_bytes + payload.size());
  append_u32(out, kFrameMagic);
  append_u32(out, static_cast<std::uint32_t>(type) |
                      (trace.traced() ? kFrameTracedBit : 0u));
  append_u32(out, static_cast<std::uint32_t>(ctx_bytes + payload.size()));
  if (trace.traced()) {
    append_u64(out, trace.trace_id);
    append_u64(out, trace.span_id);
  }
  out.insert(out.end(), payload.begin(), payload.end());
  append_u32(out, core::crc32(out.data(), out.size()));
  return out;
}

std::vector<std::uint8_t> encode_job_request(const JobRequest& msg,
                                             const TraceContext& trace) {
  std::vector<std::uint8_t> payload;
  payload.reserve(4 + msg.device_id.size() + 24);
  append_u32(payload, static_cast<std::uint32_t>(msg.device_id.size()));
  payload.insert(payload.end(), msg.device_id.begin(), msg.device_id.end());
  append_u64(payload, msg.channel_seed);
  append_u64(payload, msg.rng_seed);
  append_u64(payload, msg.tag);
  return encode_frame(MsgType::kJobRequest, payload, trace);
}

std::vector<std::uint8_t> encode_verdict_reply(const VerdictReply& msg,
                                               const TraceContext& trace) {
  std::vector<std::uint8_t> payload;
  payload.reserve(28);
  append_u64(payload, msg.tag);
  append_u32(payload, static_cast<std::uint32_t>(msg.outcome));
  append_u32(payload, static_cast<std::uint32_t>(msg.status));
  append_u32(payload, msg.attempts);
  append_f64(payload, msg.total_us);
  return encode_frame(MsgType::kVerdictReply, payload, trace);
}

std::vector<std::uint8_t> encode_busy_reply(const BusyReply& msg,
                                            const TraceContext& trace) {
  std::vector<std::uint8_t> payload;
  payload.reserve(16);
  append_u64(payload, msg.tag);
  append_f64(payload, msg.retry_after_us);
  return encode_frame(MsgType::kBusyReply, payload, trace);
}

std::vector<std::uint8_t> encode_stats_request(const StatsRequest& msg) {
  std::vector<std::uint8_t> payload;
  payload.reserve(8);
  append_u64(payload, msg.tag);
  return encode_frame(MsgType::kStatsRequest, payload);
}

std::vector<std::uint8_t> encode_stats_reply(const StatsReply& msg) {
  std::vector<std::uint8_t> payload;
  payload.reserve(12 + msg.stats_json.size());
  append_u64(payload, msg.tag);
  append_u32(payload, static_cast<std::uint32_t>(msg.stats_json.size()));
  payload.insert(payload.end(), msg.stats_json.begin(), msg.stats_json.end());
  return encode_frame(MsgType::kStatsReply, payload);
}

std::vector<std::uint8_t> encode_error_reply(const ErrorReply& msg) {
  std::vector<std::uint8_t> payload;
  payload.reserve(12);
  append_u64(payload, msg.tag);
  append_u32(payload, static_cast<std::uint32_t>(msg.code));
  return encode_frame(MsgType::kErrorReply, payload);
}

JobRequest decode_job_request(const std::vector<std::uint8_t>& payload) {
  Cursor cur(payload);
  const std::uint32_t id_len = cur.u32();
  if (id_len > kMaxDeviceIdBytes) {
    throw SerializationError("device id exceeds wire limit");
  }
  JobRequest msg;
  msg.device_id = cur.bytes(id_len);
  msg.channel_seed = cur.u64();
  msg.rng_seed = cur.u64();
  msg.tag = cur.u64();
  cur.expect_end();
  return msg;
}

VerdictReply decode_verdict_reply(const std::vector<std::uint8_t>& payload) {
  Cursor cur(payload);
  VerdictReply msg;
  msg.tag = cur.u64();
  const std::uint32_t outcome = cur.u32();
  if (outcome > static_cast<std::uint32_t>(service::JobOutcome::kUnknownDevice)) {
    throw SerializationError("verdict outcome out of range");
  }
  msg.outcome = static_cast<service::JobOutcome>(outcome);
  const std::uint32_t status = cur.u32();
  if (status > static_cast<std::uint32_t>(core::SessionStatus::kRetriesExhausted)) {
    throw SerializationError("session status out of range");
  }
  msg.status = static_cast<core::SessionStatus>(status);
  msg.attempts = cur.u32();
  msg.total_us = cur.f64();
  cur.expect_end();
  return msg;
}

BusyReply decode_busy_reply(const std::vector<std::uint8_t>& payload) {
  Cursor cur(payload);
  BusyReply msg;
  msg.tag = cur.u64();
  msg.retry_after_us = cur.f64();
  cur.expect_end();
  return msg;
}

ErrorReply decode_error_reply(const std::vector<std::uint8_t>& payload) {
  Cursor cur(payload);
  ErrorReply msg;
  msg.tag = cur.u64();
  const std::uint32_t code = cur.u32();
  if (code < 1 ||
      code > static_cast<std::uint32_t>(ErrorCode::kShuttingDown)) {
    throw SerializationError("error code out of range");
  }
  msg.code = static_cast<ErrorCode>(code);
  cur.expect_end();
  return msg;
}

StatsRequest decode_stats_request(const std::vector<std::uint8_t>& payload) {
  Cursor cur(payload);
  StatsRequest msg;
  msg.tag = cur.u64();
  cur.expect_end();
  return msg;
}

StatsReply decode_stats_reply(const std::vector<std::uint8_t>& payload) {
  Cursor cur(payload);
  StatsReply msg;
  msg.tag = cur.u64();
  const std::uint32_t json_len = cur.u32();
  // The declared length is bounded by the frame limit before it sizes the
  // copy, same posture as the device-id length above.
  if (json_len > core::kMaxWireFrameBytes) {
    throw SerializationError("stats JSON exceeds wire limit");
  }
  msg.stats_json = cur.bytes(json_len);
  cur.expect_end();
  return msg;
}

bool FrameDecoder::fail(const char* why) {
  failed_ = true;
  error_ = why;
  return false;
}

bool FrameDecoder::feed(const std::uint8_t* data, std::size_t size,
                        std::vector<Frame>& out) {
  if (failed_) return false;
  buffer_.insert(buffer_.end(), data, data + size);

  for (;;) {
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < kFrameHeaderBytes) break;

    const std::uint8_t* head = buffer_.data() + consumed_;
    auto word = [&](std::size_t off) {
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(head[off + i]) << (8 * i);
      }
      return v;
    };

    if (word(0) != kFrameMagic) {
      return fail("bad frame magic (stream desynchronized)");
    }
    const std::uint32_t len = word(8);
    // The declared length is still untrusted here: bound it before it
    // influences how much we are willing to buffer for this frame.
    if (len > max_payload_) {
      return fail("declared payload exceeds frame limit");
    }
    const std::size_t frame_bytes = kFrameOverheadBytes + len;
    if (avail < frame_bytes) break;  // wait for the rest

    const std::uint32_t stored_crc = word(kFrameHeaderBytes + len);
    if (core::crc32(head, kFrameHeaderBytes + len) != stored_crc) {
      return fail("frame CRC mismatch");
    }

    const std::uint32_t type_word = word(4);
    Frame frame;
    frame.type = static_cast<MsgType>(type_word & ~kFrameTracedBit);
    std::size_t body_off = kFrameHeaderBytes;
    std::size_t body_len = len;
    if ((type_word & kFrameTracedBit) != 0) {
      // The traced flag promises 16 context bytes inside the payload
      // region; a shorter declared length lied about the bytes it covers
      // and is handled like every other bound violation: poison.
      if (len < kTraceContextBytes) {
        return fail("traced frame shorter than its trace context");
      }
      auto qword = [&](std::size_t off) {
        return static_cast<std::uint64_t>(word(off)) |
               (static_cast<std::uint64_t>(word(off + 4)) << 32);
      };
      frame.trace.trace_id = qword(kFrameHeaderBytes);
      frame.trace.span_id = qword(kFrameHeaderBytes + 8);
      body_off += kTraceContextBytes;
      body_len -= kTraceContextBytes;
    }
    frame.payload.assign(head + body_off, head + body_off + body_len);
    out.push_back(std::move(frame));
    consumed_ += frame_bytes;
  }

  // Compact once the decoded prefix dominates the buffer, so a long-lived
  // connection's buffer does not grow with total traffic.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return true;
}

}  // namespace pufatt::net
