#include "net/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

namespace pufatt::net {

namespace {

constexpr double kNsPerMs = 1e6;

}  // namespace

AttestationServer::AttestationServer(service::EmulatorCache& cache,
                                     ResponderFactory factory,
                                     const ServerConfig& config)
    : cache_(&cache),
      factory_(std::move(factory)),
      config_(config),
      bound_(config.endpoint),
      loop_(config.backend) {
  listener_ = listen_on(config_.endpoint, config_.listen_backlog);
  bound_ = local_endpoint(listener_.get(), config_.endpoint);

  loop_.add(listener_.get(), EventLoop::kReadable,
            [this](std::uint32_t) { on_accept(); });
  if (config_.idle_timeout_ms > 0.0) {
    const double sweep_ms = std::max(config_.idle_timeout_ms / 4.0, 1.0);
    loop_.set_timer(std::min(sweep_ms, 250.0), [this] { sweep_idle(); });
  }
  if (!config_.metrics_jsonl.empty() && config_.stats_interval_ms > 0.0) {
    metrics_file_ = std::fopen(config_.metrics_jsonl.c_str(), "w");
    if (metrics_file_ == nullptr) {
      throw NetError("cannot open metrics JSONL: " + config_.metrics_jsonl);
    }
    loop_.add_timer(config_.stats_interval_ms,
                    [this] { append_metrics_snapshot(); });
  }

  pool_ = std::make_unique<service::VerifierPool>(
      cache, config_.pool, [this](const service::JobResult& result) {
        // Worker thread: hop to the loop thread, where connection state
        // lives.  The copy is the handoff.
        loop_.post([this, result] { on_job_complete(result); });
      });
}

AttestationServer::~AttestationServer() {
  // pool_ (declared last) is destroyed first: workers drain and join while
  // loop_ still accepts their completion posts.  The posts simply queue.
  if (config_.endpoint.kind == Endpoint::Kind::kUnix) {
    ::unlink(config_.endpoint.path.c_str());
  }
  if (metrics_file_ != nullptr) std::fclose(metrics_file_);
}

void AttestationServer::run() {
  loop_.run();

  // stop() was called.  Let the pool finish in-flight jobs, then account
  // for verdicts that no longer have a loop iteration to deliver them.
  pool_->drain();
  count([&](NetCounters& c) { c.replies_dropped += pending_.size(); });
  pending_.clear();

  std::vector<std::shared_ptr<Connection>> open;
  open.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) open.push_back(conn);
  for (const auto& conn : open) close_connection(conn);
  loop_.remove(listener_.get());
}

void AttestationServer::stop() { loop_.stop(); }

NetCounters AttestationServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

void AttestationServer::on_accept() {
  for (;;) {
    Fd fd = accept_on(listener_.get());
    if (!fd) break;

    auto conn = std::make_shared<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = std::move(fd);
    conn->last_activity_ns = obs::monotonic_ns();
    connections_[conn->id] = conn;
    count([](NetCounters& c) {
      ++c.accepted;
      ++c.open_connections;
    });

    if (config_.tracer && config_.tracer->enabled()) {
      auto span = config_.tracer->span("net.accept");
      span.note("fd", conn->fd.get());
      span.note("open", static_cast<double>(connections_.size()));
    }

    const auto weak_self = conn;  // callback owns the connection
    loop_.add(conn->fd.get(), EventLoop::kReadable,
              [this, weak_self](std::uint32_t events) {
                on_io(weak_self, events);
              });
  }
}

void AttestationServer::on_io(const std::shared_ptr<Connection>& conn,
                              std::uint32_t events) {
  if (conn->closing) return;
  if (events & EventLoop::kReadable) on_readable(conn);
  if (conn->closing) return;
  if (events & EventLoop::kWritable) flush_writes(conn);
  if (conn->closing) return;
  if (events & EventLoop::kError) close_connection(conn);
}

void AttestationServer::on_readable(const std::shared_ptr<Connection>& conn) {
  obs::Span span;
  if (config_.tracer && config_.tracer->enabled()) {
    span = config_.tracer->span("net.read");
  }
  std::size_t event_bytes = 0;
  std::size_t event_frames = 0;
  std::uint64_t event_trace = 0;  ///< first traced frame seen this event
  std::vector<std::uint8_t> buf(config_.read_chunk_bytes);
  std::vector<FrameDecoder::Frame> frames;

  for (;;) {
    const ssize_t n = ::read(conn->fd.get(), buf.data(), buf.size());
    if (n > 0) {
      event_bytes += static_cast<std::size_t>(n);
      conn->last_activity_ns = obs::monotonic_ns();
      frames.clear();
      const bool ok =
          conn->decoder.feed(buf.data(), static_cast<std::size_t>(n), frames);
      for (const auto& frame : frames) {
        ++event_frames;
        if (event_trace == 0) event_trace = frame.trace.trace_id;
        dispatch_frame(conn, frame);
        if (conn->closing) break;
      }
      if (conn->closing) break;
      if (!ok) {
        count([](NetCounters& c) { ++c.decode_errors; });
        close_connection(conn);
        break;
      }
      continue;
    }
    if (n == 0) {  // orderly shutdown from the peer
      close_connection(conn);
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(conn);
    break;
  }

  count([&](NetCounters& c) { c.bytes_in += event_bytes; });
  if (span.active()) {
    span.note("bytes", static_cast<double>(event_bytes));
    span.note("frames", static_cast<double>(event_frames));
    if (event_trace != 0) {
      span.note("trace", static_cast<double>(event_trace));
    }
  }
}

void AttestationServer::dispatch_frame(const std::shared_ptr<Connection>& conn,
                                       const FrameDecoder::Frame& frame) {
  count([](NetCounters& c) { ++c.frames_in; });
  if (frame.type == MsgType::kStatsRequest) {
    StatsRequest probe;
    try {
      probe = decode_stats_request(frame.payload);
    } catch (const core::SerializationError&) {
      count([](NetCounters& c) {
        ++c.payload_errors;
        ++c.frames_rejected;
        ++c.error_replies;
      });
      send_bytes(conn, encode_error_reply(
                           ErrorReply{0, ErrorCode::kMalformedPayload}));
      close_connection(conn);
      return;
    }
    // Served inline on the loop thread: the snapshot is a few hundred
    // bytes of relaxed-atomic reads, cheaper than one verify, and the
    // connection stays open — an operator polls over one socket.
    StatsReply reply;
    reply.tag = probe.tag;
    reply.stats_json = stats_json();
    count([](NetCounters& c) { ++c.stats_served; });
    send_bytes(conn, encode_stats_reply(reply));
    return;
  }
  if (frame.type != MsgType::kJobRequest) {
    count([](NetCounters& c) {
      ++c.payload_errors;
      ++c.frames_rejected;
      ++c.error_replies;
    });
    send_bytes(conn, encode_error_reply(
                         ErrorReply{0, ErrorCode::kUnknownMessageType}));
    close_connection(conn);
    return;
  }
  JobRequest request;
  try {
    request = decode_job_request(frame.payload);
  } catch (const core::SerializationError&) {
    count([](NetCounters& c) {
      ++c.payload_errors;
      ++c.frames_rejected;
      ++c.error_replies;
    });
    send_bytes(conn,
               encode_error_reply(ErrorReply{0, ErrorCode::kMalformedPayload}));
    close_connection(conn);
    return;
  }
  handle_job_request(conn, request, frame.trace);
}

void AttestationServer::handle_job_request(
    const std::shared_ptr<Connection>& conn, const JobRequest& request,
    const TraceContext& trace) {
  count([](NetCounters& c) { ++c.requests; });

  core::Responder responder = factory_(request);
  if (!responder) {
    // Unknown device: same verdict the pool would produce, without
    // spending queue capacity on it.  No pool.job span exists, so a
    // traced request gets its trace id echoed with span_id = 0 — the
    // client still closes its timeline, there is just no server half.
    VerdictReply reply;
    reply.tag = request.tag;
    reply.outcome = service::JobOutcome::kUnknownDevice;
    reply.status = core::SessionStatus::kTimeout;
    count([](NetCounters& c) { ++c.verdicts_sent; });
    send_bytes(conn,
               encode_verdict_reply(reply, TraceContext{trace.trace_id, 0}));
    return;
  }

  service::AttestationJob job;
  job.device_id = request.device_id;
  job.responder = std::move(responder);
  job.faults = config_.job_faults;
  job.channel_seed = request.channel_seed;
  job.rng_seed = request.rng_seed;
  // Adopt the client's trace identity: the pool notes it on the pool.job
  // root, which is what links the server's spans into the client's trace.
  job.wire_trace_id = trace.trace_id;
  job.wire_parent_span = trace.span_id;
  const std::uint64_t corr_id = next_corr_id_++;
  job.tag = corr_id;

  const auto submitted = pool_->submit(std::move(job));
  switch (submitted.status) {
    case service::SubmitStatus::kEnqueued:
      pending_[corr_id] = Pending{conn->id, request.tag};
      break;
    case service::SubmitStatus::kRejectedBusy: {
      // The pool's backpressure, verbatim, as a wire reply: the client
      // learns both "not now" and "when".
      count([](NetCounters& c) { ++c.busy_replies; });
      send_bytes(conn,
                 encode_busy_reply(
                     BusyReply{request.tag, submitted.retry_after_us},
                     TraceContext{trace.trace_id, 0}));
      break;
    }
    case service::SubmitStatus::kShuttingDown:
      count([](NetCounters& c) { ++c.error_replies; });
      send_bytes(conn, encode_error_reply(
                           ErrorReply{request.tag, ErrorCode::kShuttingDown}));
      break;
  }
}

void AttestationServer::on_job_complete(const service::JobResult& result) {
  const auto it = pending_.find(result.tag);
  if (it == pending_.end()) return;  // already accounted at shutdown
  const Pending pending = it->second;
  pending_.erase(it);

  const auto conn_it = connections_.find(pending.conn_id);
  if (conn_it == connections_.end()) {
    count([](NetCounters& c) { ++c.replies_dropped; });
    return;
  }

  obs::Span span;
  if (config_.tracer && config_.tracer->enabled()) {
    span = config_.tracer->span("net.reply");
    span.note("outcome", static_cast<double>(result.outcome));
    span.note("attempts", static_cast<double>(result.session.attempts.size()));
    if (result.wire_trace_id != 0) {
      span.note("trace", static_cast<double>(result.wire_trace_id));
    }
  }

  VerdictReply reply;
  reply.tag = pending.client_tag;
  reply.outcome = result.outcome;
  reply.status = result.session.status;
  reply.attempts = static_cast<std::uint32_t>(result.session.attempts.size());
  reply.total_us = result.session.total_us;
  count([](NetCounters& c) { ++c.verdicts_sent; });
  // A traced job's reply echoes the client's trace id and carries this
  // server's pool.job root span id — the cross-process join key.
  send_bytes(conn_it->second,
             encode_verdict_reply(
                 reply, TraceContext{result.wire_trace_id, result.trace_span}));
}

void AttestationServer::send_bytes(const std::shared_ptr<Connection>& conn,
                                   std::vector<std::uint8_t> bytes) {
  if (conn->closing) return;
  // Outbound verdicts count as liveness: a client blocked on a slow
  // verify is waiting, not idling.
  conn->last_activity_ns = obs::monotonic_ns();
  conn->write_queue_bytes += bytes.size();
  conn->write_queue.push_back(std::move(bytes));
  if (conn->write_queue_bytes > config_.max_write_queue_bytes) {
    // The client is submitting jobs without reading verdicts; buffering
    // without bound would let one peer hold the server's memory hostage.
    count([](NetCounters& c) { ++c.writeq_shed; });
    close_connection(conn);
    return;
  }
  flush_writes(conn);
}

void AttestationServer::flush_writes(const std::shared_ptr<Connection>& conn) {
  while (!conn->write_queue.empty()) {
    const auto& front = conn->write_queue.front();
    // MSG_NOSIGNAL: a peer that closed with replies still queued must
    // surface as EPIPE here, not as a process-wide SIGPIPE.
    const ssize_t n =
        ::send(conn->fd.get(), front.data() + conn->front_offset,
               front.size() - conn->front_offset, MSG_NOSIGNAL);
    if (n > 0) {
      count([&](NetCounters& c) { c.bytes_out += static_cast<std::uint64_t>(n); });
      conn->front_offset += static_cast<std::size_t>(n);
      if (conn->front_offset == front.size()) {
        conn->write_queue_bytes -= front.size();
        conn->front_offset = 0;
        conn->write_queue.pop_front();
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        loop_.modify(conn->fd.get(),
                     EventLoop::kReadable | EventLoop::kWritable);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_connection(conn);  // EPIPE / ECONNRESET and friends
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    loop_.modify(conn->fd.get(), EventLoop::kReadable);
  }
}

void AttestationServer::close_connection(
    const std::shared_ptr<Connection>& conn) {
  if (conn->closing) return;
  conn->closing = true;
  loop_.remove(conn->fd.get());
  conn->fd.reset();
  connections_.erase(conn->id);
  count([](NetCounters& c) {
    ++c.closed;
    --c.open_connections;
  });
}

std::string AttestationServer::stats_json() const {
  const NetCounters net = counters();
  const service::MetricsSnapshot pool = pool_->metrics_snapshot();
  const std::uint64_t depth = pool_->queue_depth();

  // Hand-rolled on purpose: byte-stability is the contract (same state →
  // same bytes), so the serializer is the specification.  Keys are sorted
  // within every object, values are decimal integers, no whitespace.
  std::string out;
  out.reserve(768);
  auto field = [&out](const char* name, std::uint64_t value,
                      bool last = false) {
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(value);
    if (!last) out += ',';
  };
  out += "{\"net\":{";
  field("accepted", net.accepted);
  field("busy_replies", net.busy_replies);
  field("bytes_in", net.bytes_in);
  field("bytes_out", net.bytes_out);
  field("closed", net.closed);
  field("decode_errors", net.decode_errors);
  field("error_replies", net.error_replies);
  field("frames_in", net.frames_in);
  field("frames_rejected", net.frames_rejected);
  field("idle_evicted", net.idle_evicted);
  field("open_connections", net.open_connections);
  field("payload_errors", net.payload_errors);
  field("replies_dropped", net.replies_dropped);
  field("requests", net.requests);
  field("stats_served", net.stats_served);
  field("verdicts_sent", net.verdicts_sent);
  field("writeq_shed", net.writeq_shed, true);
  out += "},\"pool\":{";
  field("accepted", pool.accepted);
  field("inconclusive", pool.inconclusive);
  field("queue_capacity", config_.pool.queue_capacity);
  field("queue_depth", depth);
  field("queue_depth_hwm", pool.queue_depth_hwm);
  field("rejected", pool.rejected);
  field("rejected_busy", pool.rejected_busy);
  field("submitted", pool.submitted);
  field("unknown_device", pool.unknown_device);
  field("workers", config_.pool.workers, true);
  out += "},\"registry\":";
  out += config_.registry != nullptr ? config_.registry->snapshot_json() : "{}";
  out += '}';
  return out;
}

void AttestationServer::append_metrics_snapshot() {
  if (metrics_file_ == nullptr) return;
  const std::string line = "{\"ts_ns\":" + std::to_string(obs::monotonic_ns()) +
                           ",\"stats\":" + stats_json() + "}\n";
  std::fwrite(line.data(), 1, line.size(), metrics_file_);
  // Flushed per tick: the file is an operator's live tail, and a tick is
  // orders of magnitude rarer than a verdict.
  std::fflush(metrics_file_);
}

void AttestationServer::sweep_idle() {
  const std::uint64_t now = obs::monotonic_ns();
  const auto budget_ns =
      static_cast<std::uint64_t>(config_.idle_timeout_ms * kNsPerMs);
  std::vector<std::shared_ptr<Connection>> idle;
  for (const auto& [id, conn] : connections_) {
    if (now - conn->last_activity_ns > budget_ns) idle.push_back(conn);
  }
  for (const auto& conn : idle) {
    count([](NetCounters& c) { ++c.idle_evicted; });
    close_connection(conn);
  }
}

}  // namespace pufatt::net
