// Stream framing and message codecs for the attestation service protocol.
//
// A connection is a byte stream; the unit of meaning is a *frame*:
//
//   [u32 magic "PANT"][u32 type][u32 payload_len][payload][u32 crc32]
//
// little-endian throughout, CRC-32 (core::crc32) over everything before
// the trailing word.  The layout deliberately mirrors PR 1's protocol
// frames — magic first so desynchronized streams fail fast, explicit
// length, trailing CRC — but adds the length *prefix* a stream decoder
// needs to reassemble frames across arbitrary read boundaries.
//
// Trace context (distributed tracing): a frame may carry an optional
// 16-byte trace context — trace id + parent/root span id — flagged by the
// high bit of the type word.  When the flag is set, the context occupies
// the *first 16 bytes of the payload region* (so `payload_len` and the
// trailing CRC cover it exactly like message bytes) and the message
// payload follows.  An absent flag is an untraced frame, byte-identical
// to the pre-trace protocol — old captures decode unchanged, and a peer
// with tracing disabled interoperates with a traced peer frame-for-frame.
// A set flag with payload_len < 16 is a framing violation (the declared
// length lied about the bytes it promised) and poisons the decoder.
//
// Security posture (shared with core/serialize): the declared payload
// length is attacker-controlled bytes until proven otherwise, so
// FrameDecoder checks it against core::kMaxWireFrameBytes (the same bound
// the in-process deserializers enforce) *before* the length sizes any
// buffering decision.  A frame that fails magic, bound or CRC poisons the
// decoder permanently — after desync there is no way to find the next
// frame boundary, so the connection must be dropped, never resynced by
// guesswork.
//
// Message payloads (one codec per MsgType):
//   kJobRequest   client → server: run one attestation job
//   kVerdictReply server → client: terminal job outcome
//   kBusyReply    server → client: pool backpressure + retry-after hint
//   kErrorReply   server → client: protocol-level failure, connection drops
//   kStatsRequest client → server: admin probe for live telemetry
//   kStatsReply   server → client: byte-stable JSON snapshot of the
//                 server's metric registry, net counters and pool state
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/serialize.hpp"
#include "core/session.hpp"
#include "service/metrics.hpp"

namespace pufatt::net {

inline constexpr std::uint32_t kFrameMagic = 0x50414E54;  // "PANT"
inline constexpr std::size_t kFrameHeaderBytes = 12;      // magic, type, len
inline constexpr std::size_t kFrameOverheadBytes = kFrameHeaderBytes + 4;

/// High bit of the type word: the payload region starts with a 16-byte
/// trace context (see TraceContext).  Kept out of the MsgType value space
/// so type dispatch is unchanged by tracing.
inline constexpr std::uint32_t kFrameTracedBit = 0x8000'0000u;
/// Bytes the trace context occupies at the head of a traced payload.
inline constexpr std::size_t kTraceContextBytes = 16;

enum class MsgType : std::uint32_t {
  kJobRequest = 1,
  kVerdictReply = 2,
  kBusyReply = 3,
  kErrorReply = 4,
  kStatsRequest = 5,
  kStatsReply = 6,
};

const char* to_string(MsgType type);

/// Optional per-frame distributed-tracing context.
///
/// Requests: `trace_id` is the client's root span id for this job and
/// `span_id` the client span to parent under (the server adopts both, so
/// its pool.job/net.* spans join the client's trace).  Replies: the
/// server echoes `trace_id` and sets `span_id` to its own pool.job root,
/// which is the join key `trace-report` merges client and server JSONL
/// files on.  `trace_id == 0` means untraced — the frame is encoded
/// without the context and is byte-identical to the pre-trace wire
/// format.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool traced() const { return trace_id != 0; }
};

/// One attestation job as submitted over the wire.  The client names the
/// device and the deterministic seeds; the server supplies the enrollment
/// record, the simulated prover and the fault process.  `tag` is echoed
/// verbatim in the reply — it is the client's correlation id and must be
/// unique among that client's in-flight jobs.
struct JobRequest {
  std::string device_id;
  std::uint64_t channel_seed = 0;
  std::uint64_t rng_seed = 0;
  std::uint64_t tag = 0;
};

/// Terminal verdict for one job (mirrors service::JobResult).
struct VerdictReply {
  std::uint64_t tag = 0;
  service::JobOutcome outcome = service::JobOutcome::kUnknownDevice;
  core::SessionStatus status = core::SessionStatus::kTimeout;
  std::uint32_t attempts = 0;
  double total_us = 0.0;  ///< simulated session wall time
};

/// Pool backpressure: come back in `retry_after_us` host microseconds.
struct BusyReply {
  std::uint64_t tag = 0;
  double retry_after_us = 0.0;
};

enum class ErrorCode : std::uint32_t {
  kUnknownMessageType = 1,  ///< valid frame, type the server does not serve
  kMalformedPayload = 2,    ///< valid frame, payload failed its codec
  kShuttingDown = 3,        ///< server is draining; job was not run
};

struct ErrorReply {
  std::uint64_t tag = 0;
  ErrorCode code = ErrorCode::kMalformedPayload;
};

/// Admin probe for a live server's telemetry; `tag` is echoed in the reply.
struct StatsRequest {
  std::uint64_t tag = 0;
};

/// Live telemetry snapshot.  `stats_json` is the server's byte-stable
/// JSON: same server state serializes to the same bytes (sorted keys, no
/// whitespace, integer counters) — diffable, greppable, and safe to
/// assert on in tests.
struct StatsReply {
  std::uint64_t tag = 0;
  std::string stats_json;
};

// --- encoding ---------------------------------------------------------------

/// Wraps a payload in the framing layer (header + CRC).  A traced context
/// (`trace.traced()`) sets kFrameTracedBit and prepends the 16-byte
/// context to the payload region; the default context leaves the frame
/// byte-identical to the pre-trace encoding.
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const std::vector<std::uint8_t>& payload,
                                       const TraceContext& trace = {});

std::vector<std::uint8_t> encode_job_request(const JobRequest& msg,
                                             const TraceContext& trace = {});
std::vector<std::uint8_t> encode_verdict_reply(const VerdictReply& msg,
                                               const TraceContext& trace = {});
std::vector<std::uint8_t> encode_busy_reply(const BusyReply& msg,
                                            const TraceContext& trace = {});
std::vector<std::uint8_t> encode_error_reply(const ErrorReply& msg);
std::vector<std::uint8_t> encode_stats_request(const StatsRequest& msg);
std::vector<std::uint8_t> encode_stats_reply(const StatsReply& msg);

// --- payload decoding -------------------------------------------------------
// All throw core::SerializationError on malformed payloads (wrong size,
// oversized embedded lengths, trailing bytes).

JobRequest decode_job_request(const std::vector<std::uint8_t>& payload);
VerdictReply decode_verdict_reply(const std::vector<std::uint8_t>& payload);
BusyReply decode_busy_reply(const std::vector<std::uint8_t>& payload);
ErrorReply decode_error_reply(const std::vector<std::uint8_t>& payload);
StatsRequest decode_stats_request(const std::vector<std::uint8_t>& payload);
StatsReply decode_stats_reply(const std::vector<std::uint8_t>& payload);

// --- stream decoding --------------------------------------------------------

/// Incremental frame reassembler.  feed() consumes any byte-chunking the
/// transport produced — partial headers, frames split across dozens of
/// reads, many frames coalesced into one read — and appends every
/// completed frame to `out`.
///
/// The decoder is single-use per connection: the first protocol violation
/// (bad magic, declared payload beyond `max_payload`, CRC mismatch) makes
/// feed() return false and sticks; `error()` says what happened.  Callers
/// must drop the connection — a byte stream that has lost framing cannot
/// be trusted again.
class FrameDecoder {
 public:
  struct Frame {
    MsgType type = MsgType::kErrorReply;
    /// Extracted trace context; all-zero on untraced frames.  The context
    /// bytes are stripped from `payload`, so message codecs see exactly
    /// the bytes an untraced peer would have sent.
    TraceContext trace;
    std::vector<std::uint8_t> payload;
  };

  /// `max_payload` defaults to the protocol-wide frame bound shared with
  /// core/serialize's deserializers.
  explicit FrameDecoder(std::size_t max_payload = core::kMaxWireFrameBytes)
      : max_payload_(max_payload) {}

  /// Returns false when the stream is (now or previously) poisoned; `out`
  /// still receives any frames completed before the violation.
  bool feed(const std::uint8_t* data, std::size_t size,
            std::vector<Frame>& out);
  bool feed(const std::vector<std::uint8_t>& data, std::vector<Frame>& out) {
    return feed(data.data(), data.size(), out);
  }

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Bytes buffered awaiting a complete frame (bounded by
  /// kFrameOverheadBytes + max_payload once a header is validated).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  bool fail(const char* why);

  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< decoded prefix not yet compacted away
  bool failed_ = false;
  std::string error_;
};

}  // namespace pufatt::net
