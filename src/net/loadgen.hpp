// Fleet-scale load generator: N concurrent simulated devices driving the
// attestation server through real sockets.
//
// One event-loop thread multiplexes every connection (the same loop the
// server uses, so "tens of thousands of concurrent clients" costs fds,
// not threads).  Each connection works through a fixed slice of the
// global job list sequentially — send JobRequest, await the reply, move
// on — which models a fleet of devices each attesting in its own session
// while the *aggregate* keeps `connections` requests in flight.
//
// Backpressure: a BusyReply is obeyed, not retried hot — the connection
// re-sends after the server's retry-after hint (clamped by
// `max_retry_wait_ms` so a bench run cannot stall on one pessimistic
// hint), up to `max_busy_retries` attempts per job.
//
// Determinism and parity: job j's device, tag and seeds are pure
// functions of j (see job_for), identical to what an in-process
// VerifierPool baseline would submit.  The report keeps every verdict
// indexed by job, so callers can diff wire verdicts against in-process
// verdicts tag by tag — the "the network added nothing and lost nothing"
// check bench/net_throughput gates on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"

namespace pufatt::net {

struct LoadGenConfig {
  Endpoint endpoint;
  std::size_t connections = 16;
  std::size_t jobs_per_connection = 4;
  /// Distinct device ids cycled over the job list (SimFleet::device_id).
  std::size_t devices = 8;
  std::uint64_t channel_seed_base = 0xC0FFEE;
  std::uint64_t channel_seed_mult = 31;
  std::uint64_t rng_seed_base = 0x5EED;
  std::uint64_t rng_seed_mult = 17;
  std::size_t max_busy_retries = 64;
  double max_retry_wait_ms = 50.0;  ///< clamp on server retry-after hints
  /// Thundering-herd breaker: each retry waits (1-jitter, 1] x the clamped
  /// hint, drawn from a deterministic per-generator stream.  A whole fleet
  /// shed in one burst gets the same hint back; without jitter it returns
  /// in one synchronized wave that mostly sheds again while the server
  /// idles between waves.  0 disables (retry exactly at the hint).
  double retry_jitter = 0.5;
  EventLoop::Backend backend = EventLoop::Backend::kAuto;
  /// Optional span tracer (must outlive the generator; null = untraced
  /// requests, byte-identical to the pre-trace wire format).  Each
  /// sampled job yields a "client.job" root covering first-send→verdict
  /// with a "client.wire" child per attempt, and stamps its root span id
  /// into the request's trace context so the server's spans join the
  /// trace (DESIGN.md §16).
  obs::Tracer* tracer = nullptr;
};

/// Terminal state of one job.
struct JobVerdict {
  bool completed = false;  ///< a VerdictReply arrived for this job
  VerdictReply reply;
  std::uint32_t busy_retries = 0;
  double latency_us = 0.0;  ///< host time, first send to verdict
};

struct LoadGenReport {
  std::size_t jobs = 0;
  std::uint64_t verdicts = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t inconclusive = 0;
  std::uint64_t unknown_device = 0;
  std::uint64_t busy_replies = 0;      ///< individual BusyReply frames seen
  std::uint64_t retries_exhausted = 0; ///< jobs abandoned to busy-shedding
  std::uint64_t error_replies = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t disconnects = 0;       ///< connections lost mid-run
  std::uint64_t decode_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  double wall_s = 0.0;
  std::vector<JobVerdict> by_job;      ///< size == jobs, indexed by job id

  /// Completed verdicts per wall second — the bench's goodput number.
  double goodput_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(verdicts) / wall_s : 0.0;
  }
};

class LoadGenerator {
 public:
  explicit LoadGenerator(const LoadGenConfig& config);

  /// Opens every connection, drives every job to a terminal state (verdict
  /// or abandonment), closes, and reports.  Blocking; call from its own
  /// thread when the server shares the process.
  LoadGenReport run();

  /// Job j's wire request — the single source of truth the in-process
  /// parity baseline reuses: device j%devices, tag j, seeds affine in j.
  static JobRequest job_for(const LoadGenConfig& config, std::size_t job);

 private:
  struct Conn;

  void open_connection(std::size_t index);
  void on_io(const std::shared_ptr<Conn>& conn, std::uint32_t events);
  void on_reply(const std::shared_ptr<Conn>& conn,
                const FrameDecoder::Frame& frame);
  void send_current_job(const std::shared_ptr<Conn>& conn);
  void advance(const std::shared_ptr<Conn>& conn);
  void fail_remaining(const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Conn>& conn);
  void flush_writes(const std::shared_ptr<Conn>& conn);
  void check_retry_queue();
  void maybe_finish();

  LoadGenConfig config_;
  EventLoop loop_;
  LoadGenReport report_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::multimap<std::uint64_t, std::shared_ptr<Conn>> retry_at_;  ///< due ns
  std::size_t live_conns_ = 0;
  std::uint64_t jitter_state_ = 0x1D1E57A7Eull;  ///< retry-jitter stream
};

}  // namespace pufatt::net
