#include "mlattack/attack.hpp"

#include <chrono>

namespace pufatt::mlattack {

namespace {

AttackResult run_attack(std::vector<Example> train, std::vector<Example> test,
                        const AttackConfig& config,
                        support::Xoshiro256pp& rng,
                        std::chrono::steady_clock::time_point started) {
  AttackResult result;
  result.training_crps = train.size();
  result.queries_used = train.size();
  result.train_seed = config.train_seed;
  if (train.empty()) return result;
  LogisticRegression model(train.front().features.size());
  if (config.train_seed != 0) {
    support::Xoshiro256pp train_rng(config.train_seed);
    model.train(train, config.logreg, train_rng);
  } else {
    model.train(train, config.logreg, rng);
  }
  result.train_accuracy = model.accuracy(train);
  result.test_accuracy = model.accuracy(test);
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - started)
                      .count();
  return result;
}

}  // namespace

AttackResult attack_arbiter(const alupuf::ArbiterPuf& puf,
                            std::size_t training_crps,
                            support::Xoshiro256pp& rng,
                            const AttackConfig& config) {
  const auto started = std::chrono::steady_clock::now();
  auto train = collect_arbiter(puf, training_crps, rng);
  auto test = collect_arbiter(puf, config.test_crps, rng);
  return run_attack(std::move(train), std::move(test), config, rng, started);
}

AttackResult attack_xor_arbiter(const alupuf::XorArbiterPuf& puf,
                                std::size_t training_crps,
                                support::Xoshiro256pp& rng,
                                const AttackConfig& config) {
  const auto started = std::chrono::steady_clock::now();
  auto train = collect_xor_arbiter(puf, training_crps, rng);
  auto test = collect_xor_arbiter(puf, config.test_crps, rng);
  return run_attack(std::move(train), std::move(test), config, rng, started);
}

AttackResult attack_alu_raw_bit(const alupuf::AluPuf& puf, std::size_t bit,
                                std::size_t training_crps,
                                support::Xoshiro256pp& rng,
                                const AttackConfig& config) {
  const auto started = std::chrono::steady_clock::now();
  auto train = collect_alu_raw(puf, bit, training_crps, rng);
  auto test = collect_alu_raw(puf, bit, config.test_crps, rng);
  return run_attack(std::move(train), std::move(test), config, rng, started);
}

AttackResult attack_obfuscated_bit(const alupuf::PufDevice& device,
                                   std::size_t bit,
                                   std::size_t training_crps,
                                   support::Xoshiro256pp& rng,
                                   const AttackConfig& config) {
  const auto started = std::chrono::steady_clock::now();
  auto train = collect_obfuscated(device, bit, training_crps, rng);
  auto test = collect_obfuscated(device, bit, config.test_crps, rng);
  return run_attack(std::move(train), std::move(test), config, rng, started);
}

}  // namespace pufatt::mlattack
