#include "mlattack/attack.hpp"

namespace pufatt::mlattack {

namespace {

AttackResult run_attack(std::vector<Example> train, std::vector<Example> test,
                        const AttackConfig& config,
                        support::Xoshiro256pp& rng) {
  AttackResult result;
  result.training_crps = train.size();
  if (train.empty()) return result;
  LogisticRegression model(train.front().features.size());
  model.train(train, config.logreg, rng);
  result.train_accuracy = model.accuracy(train);
  result.test_accuracy = model.accuracy(test);
  return result;
}

}  // namespace

AttackResult attack_arbiter(const alupuf::ArbiterPuf& puf,
                            std::size_t training_crps,
                            support::Xoshiro256pp& rng,
                            const AttackConfig& config) {
  auto train = collect_arbiter(puf, training_crps, rng);
  auto test = collect_arbiter(puf, config.test_crps, rng);
  return run_attack(std::move(train), std::move(test), config, rng);
}

AttackResult attack_xor_arbiter(const alupuf::XorArbiterPuf& puf,
                                std::size_t training_crps,
                                support::Xoshiro256pp& rng,
                                const AttackConfig& config) {
  auto train = collect_xor_arbiter(puf, training_crps, rng);
  auto test = collect_xor_arbiter(puf, config.test_crps, rng);
  return run_attack(std::move(train), std::move(test), config, rng);
}

AttackResult attack_alu_raw_bit(const alupuf::AluPuf& puf, std::size_t bit,
                                std::size_t training_crps,
                                support::Xoshiro256pp& rng,
                                const AttackConfig& config) {
  auto train = collect_alu_raw(puf, bit, training_crps, rng);
  auto test = collect_alu_raw(puf, bit, config.test_crps, rng);
  return run_attack(std::move(train), std::move(test), config, rng);
}

AttackResult attack_obfuscated_bit(const alupuf::PufDevice& device,
                                   std::size_t bit,
                                   std::size_t training_crps,
                                   support::Xoshiro256pp& rng,
                                   const AttackConfig& config) {
  auto train = collect_obfuscated(device, bit, training_crps, rng);
  auto test = collect_obfuscated(device, bit, config.test_crps, rng);
  return run_attack(std::move(train), std::move(test), config, rng);
}

}  // namespace pufatt::mlattack
