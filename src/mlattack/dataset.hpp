// CRP dataset collection and feature maps for the modeling attacks.
//
// Feature maps:
//  * Arbiter PUF — the parity transform, under which the PUF is exactly
//    linear (the attack's textbook case).
//  * ALU PUF raw response bit — signed challenge bits plus carry-structure
//    products (propagate indicators a_i XOR b_i), which capture most of the
//    carry-chain timing structure the race depends on.
//  * Obfuscated output bit — signed bits of the 64-bit protocol challenge
//    (the only thing the adversary sees); the two-phase XOR folds 8
//    responses together, which is what defeats the attack.
#pragma once

#include <cstdint>
#include <vector>

#include "alupuf/alu_puf.hpp"
#include "alupuf/arbiter_puf.hpp"
#include "alupuf/pipeline.hpp"
#include "mlattack/logreg.hpp"

namespace pufatt::mlattack {

/// Parity features for the arbiter PUF (stages + 1 values in {-1,+1}).
std::vector<double> arbiter_features(const support::BitVector& challenge);

/// Features for one raw ALU PUF response bit: signed challenge bits, signed
/// propagate bits (a_i XOR b_i) and a bias term.
std::vector<double> alu_features(const support::BitVector& challenge);

/// Signed bits of a 64-bit word plus bias (for obfuscated-output attacks).
std::vector<double> word_features(std::uint64_t x);

/// Collects `count` labeled examples from an Arbiter PUF (noisy eval).
std::vector<Example> collect_arbiter(const alupuf::ArbiterPuf& puf,
                                     std::size_t count,
                                     support::Xoshiro256pp& rng);

/// Collects examples from a k-XOR Arbiter PUF (parity features of the
/// shared challenge; the XOR makes the target non-linear in them).
std::vector<Example> collect_xor_arbiter(const alupuf::XorArbiterPuf& puf,
                                         std::size_t count,
                                         support::Xoshiro256pp& rng);

/// Collects examples for raw ALU PUF response bit `bit`.  Harvesting is one
/// AluPuf::eval_batch call (its RNG contract applies: the whole batch
/// consumes a single `rng.next()` after the challenge draws), so `engine`
/// only selects the timing kernel — by the exactness contract the dataset
/// is byte-identical across engines.
std::vector<Example> collect_alu_raw(
    const alupuf::AluPuf& puf, std::size_t bit, std::size_t count,
    support::Xoshiro256pp& rng,
    timingsim::BatchEngine engine = timingsim::BatchEngine::kAuto);

/// Collects examples for obfuscated output bit `bit` of the full pipeline
/// (labels from one PufDevice::query_batch over random 64-bit protocol
/// challenges; engine-independent like collect_alu_raw).
std::vector<Example> collect_obfuscated(
    const alupuf::PufDevice& device, std::size_t bit, std::size_t count,
    support::Xoshiro256pp& rng,
    timingsim::BatchEngine engine = timingsim::BatchEngine::kAuto);

/// Shard-parallel CRP collection.  Work is cut into fixed `block`-sized
/// shards; shard k derives its own generator from (seed, k) and writes its
/// examples into the preallocated output slice [k*block, ...), so the
/// dataset is identical at every thread count (and differs from the
/// sequential collect_* functions only in RNG schedule, not distribution).
struct ParallelCrpConfig {
  std::size_t threads = 1;
  std::size_t block = 256;     ///< challenges per shard (determinism unit)
  std::uint64_t seed = 1;      ///< dataset seed (shard rngs derive from it)
  /// Timing kernel for the batched evaluations.  Datasets are
  /// engine-independent (the exactness contract), so this only trades
  /// speed; kAuto picks the bit-sliced engine for full shards.
  timingsim::BatchEngine engine = timingsim::BatchEngine::kAuto;
};

/// Parallel variant of collect_alu_raw over AluPuf::eval_batch (one batch
/// per shard).  Call order inside a shard follows the eval_batch RNG
/// contract with the shard generator.
std::vector<Example> collect_alu_raw_parallel(const alupuf::AluPuf& puf,
                                              std::size_t bit,
                                              std::size_t count,
                                              const ParallelCrpConfig& config);

/// Parallel variant of collect_obfuscated over PufDevice::query_batch.
std::vector<Example> collect_obfuscated_parallel(
    const alupuf::PufDevice& device, std::size_t bit, std::size_t count,
    const ParallelCrpConfig& config);

}  // namespace pufatt::mlattack
