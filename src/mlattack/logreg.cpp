#include "mlattack/logreg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pufatt::mlattack {

LogisticRegression::LogisticRegression(std::size_t num_features)
    : weights_(num_features, 0.0) {
  if (num_features == 0) {
    throw std::invalid_argument("LogisticRegression: no features");
  }
}

double LogisticRegression::predict_probability(
    const std::vector<double>& features) const {
  if (features.size() != weights_.size()) {
    throw std::invalid_argument("LogisticRegression: feature size mismatch");
  }
  double z = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    z += weights_[i] * features[i];
  }
  return 1.0 / (1.0 + std::exp(-z));
}

void LogisticRegression::train(const std::vector<Example>& dataset,
                               const LogRegParams& params,
                               support::Xoshiro256pp& rng) {
  if (dataset.empty()) return;
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> velocity(weights_.size(), 0.0);
  std::vector<double> gradient(weights_.size(), 0.0);

  for (std::size_t epoch = 0; epoch < params.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic generator.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_u64(i)]);
    }
    for (std::size_t start = 0; start < order.size();
         start += params.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + params.batch_size);
      std::fill(gradient.begin(), gradient.end(), 0.0);
      for (std::size_t k = start; k < end; ++k) {
        const Example& ex = dataset[order[k]];
        const double p = predict_probability(ex.features);
        const double err = p - (ex.label ? 1.0 : 0.0);
        for (std::size_t i = 0; i < weights_.size(); ++i) {
          gradient[i] += err * ex.features[i];
        }
      }
      const double scale = 1.0 / static_cast<double>(end - start);
      for (std::size_t i = 0; i < weights_.size(); ++i) {
        const double g = gradient[i] * scale + params.l2 * weights_[i];
        velocity[i] = params.momentum * velocity[i] - params.learning_rate * g;
        weights_[i] += velocity[i];
      }
    }
  }
}

double LogisticRegression::accuracy(const std::vector<Example>& dataset) const {
  if (dataset.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& ex : dataset) {
    if (predict(ex.features) == ex.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace pufatt::mlattack
