// Modeling-attack orchestration: train on N CRPs, report train/test
// accuracy.  Reproduces the paper's side-channel/ML discussion: the plain
// Arbiter PUF collapses to the attacker, the raw ALU PUF leaks partially,
// the obfuscated output resists (test accuracy ~ 50%).
#pragma once

#include <cstddef>

#include "alupuf/alu_puf.hpp"
#include "alupuf/arbiter_puf.hpp"
#include "alupuf/pipeline.hpp"
#include "mlattack/dataset.hpp"
#include "mlattack/logreg.hpp"

namespace pufatt::mlattack {

struct AttackResult {
  std::size_t training_crps = 0;
  /// Oracle queries actually consumed for training (== training_crps for
  /// these attacks; adversary-lab attacks may stop short of their budget).
  std::size_t queries_used = 0;
  /// Seed the training run used (AttackConfig::train_seed, or 0 when
  /// training consumed the caller's stream).
  std::uint64_t train_seed = 0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  /// Wall-clock spent collecting + training, seconds.  Reporting only —
  /// never serialize it into byte-stable artifacts.
  double wall_s = 0.0;
};

struct AttackConfig {
  std::size_t test_crps = 2000;
  /// 0: train on the caller's rng stream (historical behaviour, keeps
  /// existing streams intact).  Nonzero: training shuffles use a private
  /// Xoshiro256pp(train_seed), making the fit reproducible independently
  /// of how much stream the collection phase consumed.
  std::uint64_t train_seed = 0;
  LogRegParams logreg;
};

/// LR attack on the classic Arbiter PUF (the textbook break).
AttackResult attack_arbiter(const alupuf::ArbiterPuf& puf,
                            std::size_t training_crps,
                            support::Xoshiro256pp& rng,
                            const AttackConfig& config = {});

/// LR attack on a k-XOR arbiter PUF: accuracy collapses toward 50% as k
/// grows (linear models cannot express the XOR of k halfspaces) — the
/// same mechanism the ALU PUF's obfuscation network relies on.
AttackResult attack_xor_arbiter(const alupuf::XorArbiterPuf& puf,
                                std::size_t training_crps,
                                support::Xoshiro256pp& rng,
                                const AttackConfig& config = {});

/// LR attack on one raw ALU PUF response bit.
AttackResult attack_alu_raw_bit(const alupuf::AluPuf& puf, std::size_t bit,
                                std::size_t training_crps,
                                support::Xoshiro256pp& rng,
                                const AttackConfig& config = {});

/// LR attack on one obfuscated output bit of the full pipeline.
AttackResult attack_obfuscated_bit(const alupuf::PufDevice& device,
                                   std::size_t bit,
                                   std::size_t training_crps,
                                   support::Xoshiro256pp& rng,
                                   const AttackConfig& config = {});

}  // namespace pufatt::mlattack
