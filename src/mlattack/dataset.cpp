#include "mlattack/dataset.hpp"

#include "support/parallel.hpp"

namespace pufatt::mlattack {

using support::BitVector;

namespace {

support::Xoshiro256pp shard_rng(std::uint64_t seed, std::size_t shard) {
  return support::Xoshiro256pp(
      support::SplitMix64::mix(seed ^ (0xA5A5A5A5A5A5A5A5ULL + shard)));
}

}  // namespace

std::vector<double> arbiter_features(const BitVector& challenge) {
  return alupuf::ArbiterPuf::features(challenge);
}

std::vector<double> alu_features(const BitVector& challenge) {
  const std::size_t width = challenge.size() / 2;
  std::vector<double> features;
  features.reserve(challenge.size() + width + 1);
  for (std::size_t i = 0; i < challenge.size(); ++i) {
    features.push_back(challenge.get(i) ? 1.0 : -1.0);
  }
  for (std::size_t i = 0; i < width; ++i) {
    const bool propagate = challenge.get(i) != challenge.get(width + i);
    features.push_back(propagate ? 1.0 : -1.0);
  }
  features.push_back(1.0);
  return features;
}

std::vector<double> word_features(std::uint64_t x) {
  std::vector<double> features;
  features.reserve(65);
  for (unsigned i = 0; i < 64; ++i) {
    features.push_back(((x >> i) & 1ULL) != 0 ? 1.0 : -1.0);
  }
  features.push_back(1.0);
  return features;
}

std::vector<Example> collect_arbiter(const alupuf::ArbiterPuf& puf,
                                     std::size_t count,
                                     support::Xoshiro256pp& rng) {
  std::vector<Example> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto challenge = BitVector::random(puf.challenge_bits(), rng);
    out.push_back(Example{arbiter_features(challenge), puf.eval(challenge, rng)});
  }
  return out;
}

std::vector<Example> collect_xor_arbiter(const alupuf::XorArbiterPuf& puf,
                                         std::size_t count,
                                         support::Xoshiro256pp& rng) {
  std::vector<Example> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto challenge = BitVector::random(puf.challenge_bits(), rng);
    out.push_back(
        Example{arbiter_features(challenge), puf.eval(challenge, rng)});
  }
  return out;
}

std::vector<Example> collect_alu_raw(const alupuf::AluPuf& puf,
                                     std::size_t bit, std::size_t count,
                                     support::Xoshiro256pp& rng,
                                     timingsim::BatchEngine engine) {
  const auto env = variation::Environment::nominal();
  std::vector<alupuf::Challenge> challenges;
  challenges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    challenges.push_back(BitVector::random(puf.challenge_bits(), rng));
  }
  const auto responses = puf.eval_batch(challenges.data(), count, env, rng,
                                        /*clock=*/nullptr, /*scratch=*/nullptr,
                                        engine);
  std::vector<Example> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Example{alu_features(challenges[i]), responses[i].get(bit)});
  }
  return out;
}

std::vector<Example> collect_obfuscated(const alupuf::PufDevice& device,
                                        std::size_t bit, std::size_t count,
                                        support::Xoshiro256pp& rng,
                                        timingsim::BatchEngine engine) {
  const auto env = variation::Environment::nominal();
  std::vector<std::uint64_t> xs(count);
  for (auto& x : xs) x = rng.next();
  const auto results =
      device.query_batch(xs.data(), count, env, rng, /*clock=*/nullptr,
                         /*scratch=*/nullptr, engine);
  std::vector<Example> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Example{word_features(xs[i]), results[i].z.get(bit)});
  }
  return out;
}

std::vector<Example> collect_alu_raw_parallel(
    const alupuf::AluPuf& puf, std::size_t bit, std::size_t count,
    const ParallelCrpConfig& config) {
  const auto env = variation::Environment::nominal();
  puf.prewarm(env);  // const evaluation below must not mutate shared caches
  std::vector<Example> out(count);
  const std::size_t workers = std::max<std::size_t>(1, config.threads);
  std::vector<alupuf::AluPufBatchScratch> scratch(workers);
  support::parallel_blocks(
      count, config.block, config.threads,
      [&](std::size_t shard, std::size_t begin, std::size_t end,
          std::size_t slot) {
        auto rng = shard_rng(config.seed, shard);
        std::vector<alupuf::Challenge> challenges;
        challenges.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          challenges.push_back(
              BitVector::random(puf.challenge_bits(), rng));
        }
        const auto responses = puf.eval_batch(
            challenges.data(), challenges.size(), env, rng,
            /*clock=*/nullptr, &scratch[slot], config.engine);
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = Example{alu_features(challenges[i - begin]),
                           responses[i - begin].get(bit)};
        }
      });
  return out;
}

std::vector<Example> collect_obfuscated_parallel(
    const alupuf::PufDevice& device, std::size_t bit, std::size_t count,
    const ParallelCrpConfig& config) {
  const auto env = variation::Environment::nominal();
  device.prewarm(env);
  std::vector<Example> out(count);
  const std::size_t workers = std::max<std::size_t>(1, config.threads);
  std::vector<alupuf::AluPufBatchScratch> scratch(workers);
  support::parallel_blocks(
      count, config.block, config.threads,
      [&](std::size_t shard, std::size_t begin, std::size_t end,
          std::size_t slot) {
        auto rng = shard_rng(config.seed, shard);
        std::vector<std::uint64_t> xs(end - begin);
        for (auto& x : xs) x = rng.next();
        const auto results = device.query_batch(xs.data(), xs.size(), env, rng,
                                                /*clock=*/nullptr,
                                                &scratch[slot], config.engine);
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = Example{word_features(xs[i - begin]),
                           results[i - begin].z.get(bit)};
        }
      });
  return out;
}

}  // namespace pufatt::mlattack
