// Logistic regression trained by mini-batch SGD with momentum — the
// standard machine-learning modeling attack on delay PUFs (Ruehrmair et
// al., CCS 2010 — the paper's reference [27]).  The classic Arbiter PUF is
// exactly linear in its parity features, so LR recovers it from a few
// thousand CRPs; the experiment suite uses this attacker against the raw
// and obfuscated ALU PUF to reproduce the paper's response-obfuscation
// claim.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace pufatt::mlattack {

struct LogRegParams {
  double learning_rate = 0.05;
  double momentum = 0.9;
  double l2 = 1e-5;
  std::size_t epochs = 60;
  std::size_t batch_size = 32;
};

/// One training example: real-valued features and a binary label.
struct Example {
  std::vector<double> features;
  bool label = false;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(std::size_t num_features);

  /// P(label = 1 | features).
  double predict_probability(const std::vector<double>& features) const;
  bool predict(const std::vector<double>& features) const {
    return predict_probability(features) > 0.5;
  }

  /// Trains on the dataset (shuffled each epoch with `rng`).
  void train(const std::vector<Example>& dataset, const LogRegParams& params,
             support::Xoshiro256pp& rng);

  /// Fraction of correct predictions on a dataset.
  double accuracy(const std::vector<Example>& dataset) const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  /// One weight per feature; callers include a constant feature for bias.
  std::vector<double> weights_;
};

}  // namespace pufatt::mlattack
