#include "timingsim/bitslice.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace pufatt::timingsim {

using netlist::GateId;
using netlist::GateKind;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline bool word_bit(const std::uint64_t* words, std::size_t lane) {
  return (words[lane >> 6] >> (lane & 63)) & 1ULL;
}

obs::Span trace_bitslice(std::size_t lanes, std::size_t gates) {
  if (!obs::global_trace_enabled()) return obs::Span{};
  // Same occupancy counters as the SoA run_batch hook — sim.lanes /
  // sim.batches is the mean batch fill regardless of which batched engine
  // served it — plus an engine-distinguishing span name for trace-report.
  auto& registry = obs::global_registry();
  static obs::Counter& batches = registry.counter("sim.batches");
  static obs::Counter& lane_count = registry.counter("sim.lanes");
  static obs::Gauge& occupancy = registry.gauge("sim.batch_occupancy");
  batches.add(1);
  lane_count.add(lanes);
  occupancy.set(static_cast<double>(lanes));
  obs::Span span = obs::global_tracer().span("sim.run_bitslice");
  span.note("lanes", static_cast<double>(lanes));
  span.note("gates", static_cast<double>(gates));
  return span;
}

/// Per-fanin time source for the wide time kernels: how to materialize the
/// fanin's settle time at a given lane.  `vw` (the fanin's value words) is
/// always set — the AND/MUX kernels need fanin values regardless of rep.
struct Src {
  std::uint8_t mode = 0;  // TimeRep
  double t0 = 0.0;
  double t1 = 0.0;
  const double* wide = nullptr;
  const std::uint64_t* vw = nullptr;

  double at(std::size_t lane) const {
    if (mode == 2) return wide[lane];
    if (mode == 1) return word_bit(vw, lane) ? t1 : t0;
    return t0;
  }
};

#if defined(__AVX512F__)
/// Vector form of Src with the two broadcasts hoisted out of the lane loop.
struct SrcV {
  int mode;
  __m512d b0, b1;
  const double* wide;
  const std::uint64_t* vw;
};

inline SrcV make_srcv(const Src& s) {
  return SrcV{s.mode, _mm512_set1_pd(s.t0), _mm512_set1_pd(s.t1), s.wide,
              s.vw};
}

inline __m512d fetchv(const SrcV& s, std::size_t lane) {
  if (s.mode == 2) return _mm512_loadu_pd(s.wide + lane);
  if (s.mode == 1) {
    const __mmask8 m =
        static_cast<__mmask8>(s.vw[lane >> 6] >> (lane & 63));
    return _mm512_mask_blend_pd(m, s.b0, s.b1);
  }
  return s.b0;
}

/// Mode-templated fetch for the hot 2-input kernels: the fanin's time rep
/// is loop-invariant, so the dispatch happens once per gate (9-way switch)
/// and the inner loop carries no branches.  `mv` views the fanin's value
/// words as bytes — byte g of the value array IS the __mmask8 for lane
/// group g, so mask extraction is a single byte load.
template <int M>
inline __m512d fetch_m(const SrcV& s, const std::uint8_t* mv,
                       std::size_t lane) {
  if constexpr (M == 2) {
    return _mm512_loadu_pd(s.wide + lane);
  } else if constexpr (M == 1) {
    return _mm512_mask_blend_pd(static_cast<__mmask8>(mv[lane >> 3]), s.b0,
                                s.b1);
  } else {
    return s.b0;
  }
}

template <bool kLane, int MA, int MB>
void and2_avx(const SrcV& va, const SrcV& vb, const std::uint8_t* mva,
              const std::uint8_t* mvb, const std::uint8_t* mvo,
              std::uint8_t cinv, __m512d vr, __m512d vf, const double* rp,
              const double* fp, double* tp, std::size_t vlim) {
  const __m512d vinf = _mm512_set1_pd(kInf);
#pragma GCC unroll 2
  for (std::size_t lane = 0; lane < vlim; lane += 8) {
    const std::size_t gi = lane >> 3;
    const __mmask8 ma = static_cast<__mmask8>(mva[gi] ^ cinv);
    const __mmask8 mb = static_cast<__mmask8>(mvb[gi] ^ cinv);
    const __mmask8 ko = static_cast<__mmask8>(mvo[gi]);
    const __m512d xa = fetch_m<MA>(va, mva, lane);
    const __m512d xb = fetch_m<MB>(vb, mvb, lane);
    const __m512d ca = _mm512_mask_blend_pd(ma, vinf, xa);
    const __m512d cb = _mm512_mask_blend_pd(mb, vinf, xb);
    const __m512d mn = _mm512_min_pd(ca, cb);
    const __m512d mx = _mm512_max_pd(xa, xb);
    const __mmask8 fin = _mm512_cmp_pd_mask(mn, vinf, _CMP_NEQ_OQ);
    const __m512d det = _mm512_mask_blend_pd(fin, mx, mn);
    __m512d dr = vr;
    __m512d df = vf;
    if constexpr (kLane) {
      dr = _mm512_loadu_pd(rp + lane);
      df = _mm512_loadu_pd(fp + lane);
    }
    const __m512d d = _mm512_mask_blend_pd(ko, df, dr);
    _mm512_storeu_pd(tp + lane, _mm512_add_pd(det, d));
  }
}

template <bool kLane, int MA, int MB>
void xor2_avx(const SrcV& va, const SrcV& vb, const std::uint8_t* mva,
              const std::uint8_t* mvb, const std::uint8_t* mvo, __m512d vr,
              __m512d vf, const double* rp, const double* fp, double* tp,
              std::size_t vlim) {
#pragma GCC unroll 2
  for (std::size_t lane = 0; lane < vlim; lane += 8) {
    const std::size_t gi = lane >> 3;
    const __mmask8 ko = static_cast<__mmask8>(mvo[gi]);
    const __m512d xa = fetch_m<MA>(va, mva, lane);
    const __m512d xb = fetch_m<MB>(vb, mvb, lane);
    const __m512d det = _mm512_max_pd(xa, xb);
    __m512d dr = vr;
    __m512d df = vf;
    if constexpr (kLane) {
      dr = _mm512_loadu_pd(rp + lane);
      df = _mm512_loadu_pd(fp + lane);
    }
    const __m512d d = _mm512_mask_blend_pd(ko, df, dr);
    _mm512_storeu_pd(tp + lane, _mm512_add_pd(det, d));
  }
}
#endif

// ------------------------------------------------------ wide time kernels
//
// Every kernel reproduces the SoA batch kernel's per-lane operation order
// exactly (same selections, same single add), so the produced doubles are
// bit-identical to run_batch and the scalar engine.  The AVX-512 paths use
// only min/max/compare/blend/add — all exact selections — and the scalar
// tails repeat the identical expressions, so vector and tail lanes agree
// too.  kLane = per-lane delays (device batches); shared mode processes
// the padded tail lanes as well (inputs are zero-filled there and nothing
// exposes them), which keeps its loop a clean multiple of the word size.

/// Portable per-lane bodies over [start, limit): the scalar reference for
/// the vector kernels (identical expressions), the non-multiple-of-8 tail
/// in lane-delay mode, and the whole loop on non-AVX-512 builds.
template <bool kLane>
void and2_span(const Src& sa, const Src& sb, const std::uint64_t* vow,
               bool ctrl, double grise, double gfall, const double* rp,
               const double* fp, double* tp, std::size_t start,
               std::size_t limit) {
  for (std::size_t lane = start; lane < limit; ++lane) {
    const bool a = word_bit(sa.vw, lane);
    const bool b = word_bit(sb.vw, lane);
    const double xa = sa.at(lane);
    const double xb = sb.at(lane);
    const double ca = a == ctrl ? xa : kInf;
    const double cb = b == ctrl ? xb : kInf;
    const double mn = std::min(ca, cb);
    const double det = mn != kInf ? mn : std::max(xa, xb);
    const bool val = word_bit(vow, lane);
    const double dr = kLane ? rp[lane] : grise;
    const double df = kLane ? fp[lane] : gfall;
    tp[lane] = det + (val ? dr : df);
  }
}

template <bool kLane>
void xor2_span(const Src& sa, const Src& sb, const std::uint64_t* vow,
               double grise, double gfall, const double* rp, const double* fp,
               double* tp, std::size_t start, std::size_t limit) {
  for (std::size_t lane = start; lane < limit; ++lane) {
    const double xa = sa.at(lane);
    const double xb = sb.at(lane);
    const bool val = word_bit(vow, lane);
    const double dr = kLane ? rp[lane] : grise;
    const double df = kLane ? fp[lane] : gfall;
    tp[lane] = std::max(xa, xb) + (val ? dr : df);
  }
}

template <bool kLane>
void wide_and2(const Src& sa, const Src& sb, const std::uint64_t* vow,
               bool ctrl, double grise, double gfall, const double* rp,
               const double* fp, double* tp, std::size_t count,
               std::size_t padded) {
  const std::size_t limit = kLane ? count : padded;
  std::size_t lane = 0;
#if defined(__AVX512F__)
  const SrcV va = make_srcv(sa);
  const SrcV vb = make_srcv(sb);
  const auto* const mva = reinterpret_cast<const std::uint8_t*>(sa.vw);
  const auto* const mvb = reinterpret_cast<const std::uint8_t*>(sb.vw);
  const auto* const mvo = reinterpret_cast<const std::uint8_t*>(vow);
  const std::uint8_t cinv = ctrl ? 0x00 : 0xFF;
  const __m512d vr = _mm512_set1_pd(grise);
  const __m512d vf = _mm512_set1_pd(gfall);
  const std::size_t vlim = limit & ~std::size_t{7};
  switch (sa.mode * 3 + sb.mode) {
    case 0 * 3 + 0:
      and2_avx<kLane, 0, 0>(va, vb, mva, mvb, mvo, cinv, vr, vf, rp, fp, tp,
                            vlim);
      break;
    case 0 * 3 + 1:
      and2_avx<kLane, 0, 1>(va, vb, mva, mvb, mvo, cinv, vr, vf, rp, fp, tp,
                            vlim);
      break;
    case 0 * 3 + 2:
      and2_avx<kLane, 0, 2>(va, vb, mva, mvb, mvo, cinv, vr, vf, rp, fp, tp,
                            vlim);
      break;
    case 1 * 3 + 0:
      and2_avx<kLane, 1, 0>(va, vb, mva, mvb, mvo, cinv, vr, vf, rp, fp, tp,
                            vlim);
      break;
    case 1 * 3 + 1:
      and2_avx<kLane, 1, 1>(va, vb, mva, mvb, mvo, cinv, vr, vf, rp, fp, tp,
                            vlim);
      break;
    case 1 * 3 + 2:
      and2_avx<kLane, 1, 2>(va, vb, mva, mvb, mvo, cinv, vr, vf, rp, fp, tp,
                            vlim);
      break;
    case 2 * 3 + 0:
      and2_avx<kLane, 2, 0>(va, vb, mva, mvb, mvo, cinv, vr, vf, rp, fp, tp,
                            vlim);
      break;
    case 2 * 3 + 1:
      and2_avx<kLane, 2, 1>(va, vb, mva, mvb, mvo, cinv, vr, vf, rp, fp, tp,
                            vlim);
      break;
    default:
      and2_avx<kLane, 2, 2>(va, vb, mva, mvb, mvo, cinv, vr, vf, rp, fp, tp,
                            vlim);
      break;
  }
  lane = vlim;
#endif
  and2_span<kLane>(sa, sb, vow, ctrl, grise, gfall, rp, fp, tp, lane, limit);
}

template <bool kLane>
void wide_xor2(const Src& sa, const Src& sb, const std::uint64_t* vow,
               double grise, double gfall, const double* rp, const double* fp,
               double* tp, std::size_t count, std::size_t padded) {
  const std::size_t limit = kLane ? count : padded;
  std::size_t lane = 0;
#if defined(__AVX512F__)
  const SrcV va = make_srcv(sa);
  const SrcV vb = make_srcv(sb);
  const auto* const mva = reinterpret_cast<const std::uint8_t*>(sa.vw);
  const auto* const mvb = reinterpret_cast<const std::uint8_t*>(sb.vw);
  const auto* const mvo = reinterpret_cast<const std::uint8_t*>(vow);
  const __m512d vr = _mm512_set1_pd(grise);
  const __m512d vf = _mm512_set1_pd(gfall);
  const std::size_t vlim = limit & ~std::size_t{7};
  switch (sa.mode * 3 + sb.mode) {
    case 0 * 3 + 0:
      xor2_avx<kLane, 0, 0>(va, vb, mva, mvb, mvo, vr, vf, rp, fp, tp, vlim);
      break;
    case 0 * 3 + 1:
      xor2_avx<kLane, 0, 1>(va, vb, mva, mvb, mvo, vr, vf, rp, fp, tp, vlim);
      break;
    case 0 * 3 + 2:
      xor2_avx<kLane, 0, 2>(va, vb, mva, mvb, mvo, vr, vf, rp, fp, tp, vlim);
      break;
    case 1 * 3 + 0:
      xor2_avx<kLane, 1, 0>(va, vb, mva, mvb, mvo, vr, vf, rp, fp, tp, vlim);
      break;
    case 1 * 3 + 1:
      xor2_avx<kLane, 1, 1>(va, vb, mva, mvb, mvo, vr, vf, rp, fp, tp, vlim);
      break;
    case 1 * 3 + 2:
      xor2_avx<kLane, 1, 2>(va, vb, mva, mvb, mvo, vr, vf, rp, fp, tp, vlim);
      break;
    case 2 * 3 + 0:
      xor2_avx<kLane, 2, 0>(va, vb, mva, mvb, mvo, vr, vf, rp, fp, tp, vlim);
      break;
    case 2 * 3 + 1:
      xor2_avx<kLane, 2, 1>(va, vb, mva, mvb, mvo, vr, vf, rp, fp, tp, vlim);
      break;
    default:
      xor2_avx<kLane, 2, 2>(va, vb, mva, mvb, mvo, vr, vf, rp, fp, tp, vlim);
      break;
  }
  lane = vlim;
#endif
  xor2_span<kLane>(sa, sb, vow, grise, gfall, rp, fp, tp, lane, limit);
}

/// One gate of a fused plan op: where its value bytes, delays, and output
/// time lanes live.  `cinv` is the AND-family controlling-value invert
/// (0x00 when the controlling value is 1, 0xFF when it is 0).
struct FusedGate {
  const std::uint64_t* vw = nullptr;  ///< own value words (delay select)
  double r = 0.0, f = 0.0;            ///< shared-mode delays
  const double* rp = nullptr;         ///< lane-mode delay rows
  const double* fp = nullptr;
  double* tp = nullptr;               ///< output time lanes
  std::uint8_t cinv = 0;
};

/// A fused full-adder step: P = AND-family(x, y), optionally S = XOR(x, y)
/// (shares max(xa, xb) with P) and C = AND-family(g, P) (P's freshly
/// computed times forward in registers).  Each gate's arithmetic is exactly
/// the single-gate kernel's — fusion only shares fetches and loop overhead.
struct FusedCtx {
  Src x, y, g;
  bool has_s = false;
  bool has_c = false;
  FusedGate P, S, C;
};

/// One materialized time-pass step: kernel arguments fully resolved to
/// pointers.  Non-fused ops reuse the FusedCtx storage — fanin sources in
/// x/y/g, the output gate's descriptors in P.
struct PreOp {
  enum Kind : std::uint8_t {
    kFused,
    kUnary,
    kMux,
    kAnd2,
    kXor2,
    kNaryAnd,
    kNaryXor,
  };
  Kind kind = kFused;
  bool ctrl = false;          // AND-family controlling value
  std::uint32_t nf = 0;       // n-ary fanin count
  std::uint32_t nary_off = 0; // offset into ExecPlan::nary
  FusedCtx fc;
  Src pSrc;                   // fused: P as a fanin source for C's tail span
};

/// The cached dispatch for one (engine, state shape, buffer placement).
/// Everything the stamp covers is baked into the PreOp pointers, so a
/// matching stamp means the ops can run as-is.
struct ExecPlan {
  const void* owner = nullptr;
  std::size_t count = 0;
  const std::uint64_t* values = nullptr;
  const double* times = nullptr;
  const double* ldr = nullptr;  // lane-delay rows (null in shared mode)
  const double* ldf = nullptr;
  std::vector<PreOp> ops;
  std::vector<Src> nary;  // flat fanin-source pool for n-ary ops
};

#if defined(__AVX512F__)
template <bool kLane, int MX, int MY>
void fused_avx(const FusedCtx& c, std::size_t vlim) {
  const __m512d vinf = _mm512_set1_pd(kInf);
  const SrcV vx = make_srcv(c.x);
  const SrcV vy = make_srcv(c.y);
  const SrcV vg = make_srcv(c.g);
  const auto* const mvx = reinterpret_cast<const std::uint8_t*>(c.x.vw);
  const auto* const mvy = reinterpret_cast<const std::uint8_t*>(c.y.vw);
  const auto* const mvg = reinterpret_cast<const std::uint8_t*>(c.g.vw);
  const auto* const mvp = reinterpret_cast<const std::uint8_t*>(c.P.vw);
  const auto* const mvs = reinterpret_cast<const std::uint8_t*>(c.S.vw);
  const auto* const mvc = reinterpret_cast<const std::uint8_t*>(c.C.vw);
  const __m512d pr = _mm512_set1_pd(c.P.r);
  const __m512d pf = _mm512_set1_pd(c.P.f);
  const __m512d sr = _mm512_set1_pd(c.S.r);
  const __m512d sf = _mm512_set1_pd(c.S.f);
  const __m512d cr = _mm512_set1_pd(c.C.r);
  const __m512d cf = _mm512_set1_pd(c.C.f);
#pragma GCC unroll 2
  for (std::size_t lane = 0; lane < vlim; lane += 8) {
    const std::size_t gi = lane >> 3;
    const __m512d xa = fetch_m<MX>(vx, mvx, lane);
    const __m512d xb = fetch_m<MY>(vy, mvy, lane);
    // P = AND-family(x, y): the single-gate and2 sequence verbatim.
    const __mmask8 kp = static_cast<__mmask8>(mvp[gi]);
    const __mmask8 maP = static_cast<__mmask8>(mvx[gi] ^ c.P.cinv);
    const __mmask8 mbP = static_cast<__mmask8>(mvy[gi] ^ c.P.cinv);
    const __m512d caP = _mm512_mask_blend_pd(maP, vinf, xa);
    const __m512d cbP = _mm512_mask_blend_pd(mbP, vinf, xb);
    const __m512d mnP = _mm512_min_pd(caP, cbP);
    const __m512d mxAB = _mm512_max_pd(xa, xb);
    const __mmask8 finP = _mm512_cmp_pd_mask(mnP, vinf, _CMP_NEQ_OQ);
    const __m512d detP = _mm512_mask_blend_pd(finP, mxAB, mnP);
    __m512d dpr = pr;
    __m512d dpf = pf;
    if constexpr (kLane) {
      dpr = _mm512_loadu_pd(c.P.rp + lane);
      dpf = _mm512_loadu_pd(c.P.fp + lane);
    }
    const __m512d tP =
        _mm512_add_pd(detP, _mm512_mask_blend_pd(kp, dpf, dpr));
    _mm512_storeu_pd(c.P.tp + lane, tP);
    // S = XOR(x, y): its determined time is exactly max(xa, xb) = mxAB.
    if (c.has_s) {
      const __mmask8 ks = static_cast<__mmask8>(mvs[gi]);
      __m512d dsr = sr;
      __m512d dsf = sf;
      if constexpr (kLane) {
        dsr = _mm512_loadu_pd(c.S.rp + lane);
        dsf = _mm512_loadu_pd(c.S.fp + lane);
      }
      _mm512_storeu_pd(
          c.S.tp + lane,
          _mm512_add_pd(mxAB, _mm512_mask_blend_pd(ks, dsf, dsr)));
    }
    // C = AND-family(g, P): tP never leaves registers.  min/max selection
    // is operand-order independent (ties select equal doubles), so the
    // (g, P) order here matches the single-gate kernel bit-for-bit even
    // when C's netlist fanins are (P, g).
    if (c.has_c) {
      const __m512d xg = fetchv(vg, lane);
      const __mmask8 mgC = static_cast<__mmask8>(mvg[gi] ^ c.C.cinv);
      const __mmask8 mpC = static_cast<__mmask8>(mvp[gi] ^ c.C.cinv);
      const __m512d cgC = _mm512_mask_blend_pd(mgC, vinf, xg);
      const __m512d cpC = _mm512_mask_blend_pd(mpC, vinf, tP);
      const __m512d mnC = _mm512_min_pd(cgC, cpC);
      const __m512d mxC = _mm512_max_pd(xg, tP);
      const __mmask8 finC = _mm512_cmp_pd_mask(mnC, vinf, _CMP_NEQ_OQ);
      const __m512d detC = _mm512_mask_blend_pd(finC, mxC, mnC);
      const __mmask8 kc = static_cast<__mmask8>(mvc[gi]);
      __m512d dcr = cr;
      __m512d dcf = cf;
      if constexpr (kLane) {
        dcr = _mm512_loadu_pd(c.C.rp + lane);
        dcf = _mm512_loadu_pd(c.C.fp + lane);
      }
      _mm512_storeu_pd(
          c.C.tp + lane,
          _mm512_add_pd(detC, _mm512_mask_blend_pd(kc, dcf, dcr)));
    }
  }
}

template <bool kLane>
void fused_run_avx(const FusedCtx& c, std::size_t vlim) {
  switch (c.x.mode * 3 + c.y.mode) {
    case 0 * 3 + 0:
      fused_avx<kLane, 0, 0>(c, vlim);
      break;
    case 0 * 3 + 1:
      fused_avx<kLane, 0, 1>(c, vlim);
      break;
    case 0 * 3 + 2:
      fused_avx<kLane, 0, 2>(c, vlim);
      break;
    case 1 * 3 + 0:
      fused_avx<kLane, 1, 0>(c, vlim);
      break;
    case 1 * 3 + 1:
      fused_avx<kLane, 1, 1>(c, vlim);
      break;
    case 1 * 3 + 2:
      fused_avx<kLane, 1, 2>(c, vlim);
      break;
    case 2 * 3 + 0:
      fused_avx<kLane, 2, 0>(c, vlim);
      break;
    case 2 * 3 + 1:
      fused_avx<kLane, 2, 1>(c, vlim);
      break;
    default:
      fused_avx<kLane, 2, 2>(c, vlim);
      break;
  }
}
#endif

/// Runs a fused plan op: AVX-512 over the aligned prefix, then the
/// single-gate portable spans over the tail (P first so C's span can read
/// P's freshly stored times through `pSrc`).
template <bool kLane>
void fused_run(const FusedCtx& c, const Src& pSrc, std::size_t count,
               std::size_t padded) {
  const std::size_t limit = kLane ? count : padded;
  std::size_t lane = 0;
#if defined(__AVX512F__)
  const std::size_t vlim = limit & ~std::size_t{7};
  fused_run_avx<kLane>(c, vlim);
  lane = vlim;
#endif
  if (lane >= limit) return;
  and2_span<kLane>(c.x, c.y, c.P.vw, c.P.cinv == 0, c.P.r, c.P.f, c.P.rp,
                   c.P.fp, c.P.tp, lane, limit);
  if (c.has_s) {
    xor2_span<kLane>(c.x, c.y, c.S.vw, c.S.r, c.S.f, c.S.rp, c.S.fp, c.S.tp,
                     lane, limit);
  }
  if (c.has_c) {
    and2_span<kLane>(c.g, pSrc, c.C.vw, c.C.cinv == 0, c.C.r, c.C.f, c.C.rp,
                     c.C.fp, c.C.tp, lane, limit);
  }
}

template <bool kLane>
void wide_unary(const Src& sa, const std::uint64_t* vow, double grise,
                double gfall, const double* rp, const double* fp, double* tp,
                std::size_t count, std::size_t padded) {
  const std::size_t limit = kLane ? count : padded;
  for (std::size_t lane = 0; lane < limit; ++lane) {
    const bool val = word_bit(vow, lane);
    const double dr = kLane ? rp[lane] : grise;
    const double df = kLane ? fp[lane] : gfall;
    tp[lane] = sa.at(lane) + (val ? dr : df);
  }
}

template <bool kLane>
void wide_mux(const Src& ss, const Src& s0, const Src& s1,
              const std::uint64_t* vow, double grise, double gfall,
              const double* rp, const double* fp, double* tp,
              std::size_t count, std::size_t padded) {
  const std::size_t limit = kLane ? count : padded;
  for (std::size_t lane = 0; lane < limit; ++lane) {
    const bool sel = word_bit(ss.vw, lane);
    const bool y0 = word_bit(s0.vw, lane);
    const bool y1 = word_bit(s1.vw, lane);
    const double xs = ss.at(lane);
    const double x0 = s0.at(lane);
    const double x1 = s1.at(lane);
    const double chosen_t = sel ? x1 : x0;
    const double det =
        xs == kAlwaysSettled
            ? chosen_t
            : (y0 == y1 ? std::max(x0, x1) : std::max(xs, chosen_t));
    const bool val = word_bit(vow, lane);
    const double dr = kLane ? rp[lane] : grise;
    const double df = kLane ? fp[lane] : gfall;
    tp[lane] = det + (val ? dr : df);
  }
}

template <bool kLane>
void wide_nary_and(const Src* srcs, std::size_t nf, const std::uint64_t* vow,
                   bool ctrl, double grise, double gfall, const double* rp,
                   const double* fp, double* tp, std::size_t count,
                   std::size_t padded) {
  const std::size_t limit = kLane ? count : padded;
  for (std::size_t lane = 0; lane < limit; ++lane) {
    double latest = kAlwaysSettled;
    double earliest = kInf;
    for (std::size_t k = 0; k < nf; ++k) {
      const double x = srcs[k].at(lane);
      const double e = earliest;
      latest = std::max(latest, x);
      earliest = word_bit(srcs[k].vw, lane) == ctrl ? std::min(e, x) : e;
    }
    const bool any = earliest != kInf;
    const double det = any ? earliest : latest;
    const bool val = word_bit(vow, lane);
    const double dr = kLane ? rp[lane] : grise;
    const double df = kLane ? fp[lane] : gfall;
    tp[lane] = det + (val ? dr : df);
  }
}

template <bool kLane>
void wide_nary_xor(const Src* srcs, std::size_t nf, const std::uint64_t* vow,
                   double grise, double gfall, const double* rp,
                   const double* fp, double* tp, std::size_t count,
                   std::size_t padded) {
  const std::size_t limit = kLane ? count : padded;
  for (std::size_t lane = 0; lane < limit; ++lane) {
    double latest = kAlwaysSettled;
    for (std::size_t k = 0; k < nf; ++k) {
      latest = std::max(latest, srcs[k].at(lane));
    }
    const bool val = word_bit(vow, lane);
    const double dr = kLane ? rp[lane] : grise;
    const double df = kLane ? fp[lane] : gfall;
    tp[lane] = latest + (val ? dr : df);
  }
}

/// Classification-time evaluation of one fanin value combination, using
/// the scalar engine's exact semantics (same selections, same single add).
struct VT {
  bool v;
  double t;
};

VT eval_combo(GateKind kind, const VT* ins, std::size_t nf, double rise,
              double fall) {
  bool value = false;
  double det = 0.0;
  switch (kind) {
    case GateKind::kBuf:
      value = ins[0].v;
      det = ins[0].t;
      break;
    case GateKind::kNot:
      value = !ins[0].v;
      det = ins[0].t;
      break;
    case GateKind::kMux: {
      const VT& sel = ins[0];
      const VT& d0 = ins[1];
      const VT& d1 = ins[2];
      const VT& chosen = sel.v ? d1 : d0;
      value = chosen.v;
      if (sel.t == kAlwaysSettled) {
        det = chosen.t;
      } else if (d0.v == d1.v) {
        det = std::max(d0.t, d1.t);
      } else {
        det = std::max(sel.t, chosen.t);
      }
      break;
    }
    case GateKind::kAnd:
    case GateKind::kNand:
    case GateKind::kOr:
    case GateKind::kNor: {
      const bool controlling =
          (kind == GateKind::kOr || kind == GateKind::kNor);
      bool any = false;
      double earliest = 0.0;
      double latest = kAlwaysSettled;
      for (std::size_t k = 0; k < nf; ++k) {
        latest = std::max(latest, ins[k].t);
        if (ins[k].v == controlling) {
          if (!any || ins[k].t < earliest) earliest = ins[k].t;
          any = true;
        }
      }
      const bool raw = any ? controlling : !controlling;
      const bool inverted =
          (kind == GateKind::kNand || kind == GateKind::kNor);
      value = inverted ? !raw : raw;
      det = any ? earliest : latest;
      break;
    }
    case GateKind::kXor:
    case GateKind::kXnor: {
      bool v = (kind == GateKind::kXnor);
      double latest = kAlwaysSettled;
      for (std::size_t k = 0; k < nf; ++k) {
        v = v != ins[k].v;
        latest = std::max(latest, ins[k].t);
      }
      value = v;
      det = latest;
      break;
    }
    default:
      break;  // inputs/constants never reach enumeration
  }
  return {value, det + (value ? rise : fall)};
}

// Value pass: one word op evaluates a gate for 64 lanes.  Templated on the
// word count so the common batch sizes (64..1024 lanes) get fully unrolled
// inner loops — at runtime trip counts the loop overhead dwarfs the single
// AND/XOR it wraps.  NWC == 0 is the generic any-size fallback.
template <std::size_t NWC>
void value_pass(const CompiledNetlist& cn, const std::uint64_t* input_words,
                std::uint64_t* values, std::size_t nw_dynamic) {
  const std::size_t NW = NWC != 0 ? NWC : nw_dynamic;
  const netlist::GateId* const fanins = cn.fanins().data();
  for (const netlist::GateId g : cn.schedule()) {
    const std::uint32_t fb = cn.fanin_begin(g);
    std::uint64_t* const v = values + static_cast<std::size_t>(g) * NW;
    const BatchOp op = cn.op(g);
    switch (op) {
      case BatchOp::kInput: {
        const std::uint64_t* const src =
            input_words + static_cast<std::size_t>(cn.input_pos(g)) * NW;
        for (std::size_t w = 0; w < NW; ++w) v[w] = src[w];
        break;
      }
      case BatchOp::kConst0:
        break;  // values already zero
      case BatchOp::kConst1:
        for (std::size_t w = 0; w < NW; ++w) v[w] = ~0ULL;
        break;
      case BatchOp::kBuf:
      case BatchOp::kNot: {
        const std::uint64_t* const a =
            values + static_cast<std::size_t>(fanins[fb]) * NW;
        if (op == BatchOp::kNot) {
          for (std::size_t w = 0; w < NW; ++w) v[w] = ~a[w];
        } else {
          for (std::size_t w = 0; w < NW; ++w) v[w] = a[w];
        }
        break;
      }
      case BatchOp::kMux: {
        const std::uint64_t* const s =
            values + static_cast<std::size_t>(fanins[fb]) * NW;
        const std::uint64_t* const d0 =
            values + static_cast<std::size_t>(fanins[fb + 1]) * NW;
        const std::uint64_t* const d1 =
            values + static_cast<std::size_t>(fanins[fb + 2]) * NW;
        for (std::size_t w = 0; w < NW; ++w) {
          v[w] = (s[w] & d1[w]) | (~s[w] & d0[w]);
        }
        break;
      }
      case BatchOp::kAnd2:
      case BatchOp::kNand2:
      case BatchOp::kOr2:
      case BatchOp::kNor2:
      case BatchOp::kXor2:
      case BatchOp::kXnor2: {
        const std::uint64_t* const a =
            values + static_cast<std::size_t>(fanins[fb]) * NW;
        const std::uint64_t* const b =
            values + static_cast<std::size_t>(fanins[fb + 1]) * NW;
        switch (op) {
          case BatchOp::kAnd2:
            for (std::size_t w = 0; w < NW; ++w) v[w] = a[w] & b[w];
            break;
          case BatchOp::kNand2:
            for (std::size_t w = 0; w < NW; ++w) v[w] = ~(a[w] & b[w]);
            break;
          case BatchOp::kOr2:
            for (std::size_t w = 0; w < NW; ++w) v[w] = a[w] | b[w];
            break;
          case BatchOp::kNor2:
            for (std::size_t w = 0; w < NW; ++w) v[w] = ~(a[w] | b[w]);
            break;
          case BatchOp::kXor2:
            for (std::size_t w = 0; w < NW; ++w) v[w] = a[w] ^ b[w];
            break;
          default:
            for (std::size_t w = 0; w < NW; ++w) v[w] = ~(a[w] ^ b[w]);
            break;
        }
        break;
      }
      case BatchOp::kAndN:
      case BatchOp::kNandN:
      case BatchOp::kOrN:
      case BatchOp::kNorN: {
        const bool or_like = (op == BatchOp::kOrN || op == BatchOp::kNorN);
        const bool inverted = (op == BatchOp::kNandN || op == BatchOp::kNorN);
        const std::uint32_t fe = fb + cn.fanin_count(g);
        for (std::size_t w = 0; w < NW; ++w) {
          std::uint64_t acc = or_like ? 0 : ~0ULL;
          for (std::uint32_t k = fb; k < fe; ++k) {
            const std::uint64_t fw =
                values[static_cast<std::size_t>(fanins[k]) * NW + w];
            acc = or_like ? (acc | fw) : (acc & fw);
          }
          v[w] = inverted ? ~acc : acc;
        }
        break;
      }
      case BatchOp::kXorN:
      case BatchOp::kXnorN: {
        const std::uint32_t fe = fb + cn.fanin_count(g);
        for (std::size_t w = 0; w < NW; ++w) {
          std::uint64_t acc = op == BatchOp::kXnorN ? ~0ULL : 0;
          for (std::uint32_t k = fb; k < fe; ++k) {
            acc ^= values[static_cast<std::size_t>(fanins[k]) * NW + w];
          }
          v[w] = acc;
        }
        break;
      }
    }
  }
}

}  // namespace

void pack_input_words(const support::BitVector* challenges, std::size_t count,
                      std::size_t num_inputs,
                      std::vector<std::uint64_t>& out) {
  const std::size_t nwords = (count + 63) / 64;
  out.assign(num_inputs * nwords, 0);
  for (std::size_t blk = 0; blk < nwords; ++blk) {
    const std::size_t lanes = std::min<std::size_t>(64, count - blk * 64);
    support::pack_bit_columns(challenges + blk * 64, lanes, num_inputs,
                              out.data() + blk, nwords);
  }
}

BitSliceEngine::BitSliceEngine(const CompiledNetlist& compiled)
    : cn_(&compiled) {
  init_common();
  // Lane-delay mode: every lane jitters its own delays, so no gate's time
  // can be lane-invariant except the delay-free inputs and constants.
  for (const GateId g : cn_->schedule()) {
    switch (cn_->kind(g)) {
      case GateKind::kInput:
        break;  // kConstT, t0 = 0
      case GateKind::kConst0:
      case GateKind::kConst1:
        t0_[g] = kAlwaysSettled;
        break;
      default:
        rep_[g] = kWideT;
        slot_[g] = static_cast<std::uint32_t>(wide_count_++);
        break;
    }
  }
  build_plan();
}

BitSliceEngine::BitSliceEngine(const CompiledNetlist& compiled,
                               const DelaySet& delays)
    : cn_(&compiled), shared_(true) {
  if (delays.rise_ps.size() != cn_->num_gates() ||
      delays.fall_ps.size() != cn_->num_gates()) {
    throw std::invalid_argument("BitSliceEngine: wrong delay count");
  }
  init_common();
  rise_ = delays.rise_ps;
  fall_ = delays.fall_ps;
  classify_shared(delays);
  build_plan();
}

void BitSliceEngine::init_common() {
  const std::size_t n = cn_->num_gates();
  rep_.assign(n, kConstT);
  t0_.assign(n, 0.0);
  t1_.assign(n, 0.0);
  slot_.assign(n, 0);
}

void BitSliceEngine::classify_shared(const DelaySet& delays) {
  const CompiledNetlist& cn = *cn_;
  const GateId* const fanins = cn.fanins().data();
  // -1 = value varies across lanes; 0/1 = provably constant.
  std::vector<std::int8_t> fixed(cn.num_gates(), -1);

  for (const GateId g : cn.schedule()) {
    const GateKind kind = cn.kind(g);
    if (kind == GateKind::kInput) continue;  // kConstT, t0 = 0
    if (kind == GateKind::kConst0 || kind == GateKind::kConst1) {
      t0_[g] = kAlwaysSettled;
      fixed[g] = kind == GateKind::kConst1 ? 1 : 0;
      continue;
    }
    const std::uint32_t fb = cn.fanin_begin(g);
    const std::size_t nf = cn.fanin_count(g);

    // Collect each fanin's possible (value, time) pairs.  Any wide fanin
    // or an oversized combination space forces this gate wide.
    bool wide = false;
    std::size_t combos = 1;
    std::vector<std::array<VT, 2>> opts(nf);
    std::vector<std::size_t> nopts(nf);
    for (std::size_t k = 0; k < nf && !wide; ++k) {
      const GateId f = fanins[fb + k];
      switch (rep_[f]) {
        case kWideT:
          wide = true;
          break;
        case kBimodalT:
          opts[k] = {VT{false, t0_[f]}, VT{true, t1_[f]}};
          nopts[k] = 2;
          break;
        default:
          if (fixed[f] >= 0) {
            opts[k] = {VT{fixed[f] != 0, t0_[f]}, VT{}};
            nopts[k] = 1;
          } else {
            opts[k] = {VT{false, t0_[f]}, VT{true, t0_[f]}};
            nopts[k] = 2;
          }
          break;
      }
      combos *= nopts[k];
      if (combos > 64) wide = true;
    }

    if (!wide) {
      // Enumerate all combinations (a superset of the reachable ones —
      // correlations between fanins can only shrink the real set, so the
      // verdict is conservative) and see whether the gate's own value
      // determines its time.
      bool have[2] = {false, false};
      double tt[2] = {0.0, 0.0};
      bool multi = false;
      std::vector<VT> ins(nf);
      for (std::size_t idx = 0; idx < combos && !multi; ++idx) {
        std::size_t rem = idx;
        for (std::size_t k = 0; k < nf; ++k) {
          ins[k] = opts[k][rem % nopts[k]];
          rem /= nopts[k];
        }
        const VT r = eval_combo(kind, ins.data(), nf, delays.rise_ps[g],
                                delays.fall_ps[g]);
        const int vi = r.v ? 1 : 0;
        if (!have[vi]) {
          have[vi] = true;
          tt[vi] = r.t;
        } else if (tt[vi] != r.t) {
          multi = true;
        }
      }
      if (!multi) {
        if (have[0] && have[1]) {
          if (tt[0] == tt[1]) {
            t0_[g] = tt[0];  // kConstT with free value
          } else {
            rep_[g] = kBimodalT;
            t0_[g] = tt[0];
            t1_[g] = tt[1];
          }
        } else {
          t0_[g] = have[0] ? tt[0] : tt[1];
          fixed[g] = have[0] ? 0 : 1;
        }
        continue;
      }
    }
    rep_[g] = kWideT;
    slot_[g] = static_cast<std::uint32_t>(wide_count_++);
  }
}

void BitSliceEngine::build_plan() {
  const CompiledNetlist& cn = *cn_;
  const GateId* const fanins = cn.fanins().data();
  const auto& sched = cn.schedule();
  const auto& lo = cn.level_offsets();
  plan_.clear();
  plan_.reserve(wide_count_);

  const auto is_and2 = [&](GateId h) {
    const BatchOp o = cn.op(h);
    return o == BatchOp::kAnd2 || o == BatchOp::kNand2 ||
           o == BatchOp::kOr2 || o == BatchOp::kNor2;
  };
  const auto is_xor2 = [&](GateId h) {
    const BatchOp o = cn.op(h);
    return o == BatchOp::kXor2 || o == BatchOp::kXnor2;
  };
  const auto same_pair = [&](GateId h, GateId x, GateId y) {
    const std::uint32_t hb = cn.fanin_begin(h);
    const GateId hx = fanins[hb];
    const GateId hy = fanins[hb + 1];
    return (hx == x && hy == y) || (hx == y && hy == x);
  };

  // Schedule position per gate — "already computed at step i" checks.
  std::vector<std::uint32_t> pos(cn.num_gates(), 0);
  for (std::size_t i = 0; i < sched.size(); ++i) {
    pos[sched[i]] = static_cast<std::uint32_t>(i);
  }
  // Gates already emitted into the plan (as p, s, or c of some entry).
  std::vector<std::uint8_t> emitted(cn.num_gates(), 0);

  for (std::size_t i = 0; i < sched.size(); ++i) {
    GateId g = sched[i];
    if (rep_[g] != kWideT || emitted[g]) continue;
    PlanOp po{g, kNoGate, kNoGate};
    emitted[g] = 1;

    // If g is the XOR half of a full adder, look for its AND-family twin
    // later in the same level and make that the anchor (P must be the
    // AND-family gate — its output feeds the carry).
    const std::uint32_t lvl = cn.level(g);
    if (is_xor2(g)) {
      const std::uint32_t gb = cn.fanin_begin(g);
      for (std::uint32_t j = lo[lvl]; j < lo[lvl + 1]; ++j) {
        const GateId h = sched[j];
        if (emitted[h] || rep_[h] != kWideT || !is_and2(h)) continue;
        if (same_pair(h, fanins[gb], fanins[gb + 1])) {
          po.s = g;
          po.p = h;
          emitted[h] = 1;
          break;
        }
      }
    }
    if (is_and2(po.p)) {
      const GateId p = po.p;
      const std::uint32_t pb = cn.fanin_begin(p);
      const GateId x = fanins[pb];
      const GateId y = fanins[pb + 1];
      // Sibling XOR sharing both fanins (sum next to carry-propagate).
      if (po.s == kNoGate) {
        for (std::uint32_t j = lo[lvl]; j < lo[lvl + 1]; ++j) {
          const GateId h = sched[j];
          if (emitted[h] || rep_[h] != kWideT || !is_xor2(h)) continue;
          if (same_pair(h, x, y)) {
            po.s = h;
            emitted[h] = 1;
            break;
          }
        }
      }
      // 2-input AND-family consumer of p in the next level whose other
      // fanin is already computed (the carry-out OR).
      if (lvl + 1 < cn.num_levels()) {
        for (std::uint32_t j = lo[lvl + 1]; j < lo[lvl + 2]; ++j) {
          const GateId h = sched[j];
          if (emitted[h] || rep_[h] != kWideT || !is_and2(h)) continue;
          const std::uint32_t hb = cn.fanin_begin(h);
          const GateId hx = fanins[hb];
          const GateId hy = fanins[hb + 1];
          const GateId other = hx == p ? hy : (hy == p ? hx : kNoGate);
          if (other == kNoGate || other == p) continue;
          if (pos[other] >= i && rep_[other] == kWideT) continue;
          po.c = h;
          emitted[h] = 1;
          break;
        }
      }
    }
    plan_.push_back(po);
  }
}

double BitSliceEngine::time_ps(const BitSliceState& s, GateId g,
                               std::size_t lane) const {
  switch (rep_[g]) {
    case kWideT:
      return s.times[static_cast<std::size_t>(slot_[g]) * s.padded + lane];
    case kBimodalT:
      return value(s, g, lane) ? t1_[g] : t0_[g];
    default:
      return t0_[g];
  }
}

void BitSliceEngine::race_words(const BitSliceState& s, GateId g0, GateId g1,
                                std::uint64_t* out) const {
  for (std::size_t w = 0; w < s.nwords; ++w) {
    const std::size_t base = w * 64;
    const std::size_t lim = std::min<std::size_t>(64, s.count - base);
    std::uint64_t bits = 0;
    if (rep_[g0] == kWideT && rep_[g1] == kWideT) {
      const double* const p0 =
          s.times.data() + static_cast<std::size_t>(slot_[g0]) * s.padded;
      const double* const p1 =
          s.times.data() + static_cast<std::size_t>(slot_[g1]) * s.padded;
      for (std::size_t l = 0; l < lim; ++l) {
        const double delta = p1[base + l] - p0[base + l];
        bits |= static_cast<std::uint64_t>(delta > 0.0 ? 1 : 0) << l;
      }
    } else {
      for (std::size_t l = 0; l < lim; ++l) {
        const double delta = time_ps(s, g1, base + l) - time_ps(s, g0, base + l);
        bits |= static_cast<std::uint64_t>(delta > 0.0 ? 1 : 0) << l;
      }
    }
    out[w] = bits;
  }
}

void BitSliceEngine::prepare(BitSliceState& out, std::size_t count) const {
  if (count == 0) {
    throw std::invalid_argument("BitSliceEngine::run: empty batch");
  }
  const std::size_t n = cn_->num_gates();
  out.count = count;
  out.nwords = (count + 63) / 64;
  out.padded = out.nwords * 64;
  // Re-zeroing a same-size buffer is wasted work: the value pass rewrites
  // every scheduled gate's words, and gates outside the schedule (or
  // kConst0) are never written after the first zero-fill, so they still
  // read 0 from the previous run — as long as the previous run was this
  // engine (another netlist's schedule leaves different gates untouched).
  const std::size_t vneed = n * out.nwords;
  if (out.values.size() != vneed || out.owner != this) {
    out.values.assign(vneed, 0);
    out.owner = this;
  }
  const std::size_t tneed = wide_count_ * out.padded;
  if (out.times.size() != tneed) out.times.assign(tneed, 0.0);
}

template <bool kLaneDelays>
void BitSliceEngine::run_impl(const std::uint64_t* input_words,
                              std::size_t count,
                              const BatchDelays* lane_delays,
                              BitSliceState& out) const {
  const CompiledNetlist& cn = *cn_;
  prepare(out, count);
  const std::size_t NW = out.nwords;
  const std::size_t P = out.padded;
  std::uint64_t* const values = out.values.data();
  double* const times = out.times.data();
  const GateId* const fanins = cn.fanins().data();
  const double* const ld_rise =
      kLaneDelays ? lane_delays->rise_ps.data() : nullptr;
  const double* const ld_fall =
      kLaneDelays ? lane_delays->fall_ps.data() : nullptr;

  const auto src_of = [&](GateId f) {
    Src s;
    s.mode = rep_[f];
    s.t0 = t0_[f];
    s.t1 = t1_[f];
    s.vw = values + static_cast<std::size_t>(f) * NW;
    if (s.mode == kWideT) {
      s.wide = times + static_cast<std::size_t>(slot_[f]) * P;
    }
    return s;
  };

  switch (NW) {
    case 1: value_pass<1>(cn, input_words, values, NW); break;
    case 2: value_pass<2>(cn, input_words, values, NW); break;
    case 4: value_pass<4>(cn, input_words, values, NW); break;
    case 8: value_pass<8>(cn, input_words, values, NW); break;
    case 16: value_pass<16>(cn, input_words, values, NW); break;
    default: value_pass<0>(cn, input_words, values, NW); break;
  }

  // ---- phase 2: settle times for wide gates, in plan order.  Times never
  // feed back into values, so the phases separate cleanly — and the
  // separation is what lets fused ops compute a later-scheduled gate's
  // times (its value words already exist).
  //
  // The kernel arguments are materialized once into the state's ExecPlan
  // and replayed while the stamp holds (same engine, lane count, buffer
  // addresses, delay rows) — per-gate setup vanishes from the steady-state
  // batch loop.
  ExecPlan* ep = static_cast<ExecPlan*>(out.exec.get());
  if (ep == nullptr || ep->owner != this || ep->count != count ||
      ep->values != values || ep->times != times || ep->ldr != ld_rise ||
      ep->ldf != ld_fall) {
    auto fresh = std::make_shared<ExecPlan>();
    ep = fresh.get();
    out.exec = std::move(fresh);
    ep->owner = this;
    ep->count = count;
    ep->values = values;
    ep->times = times;
    ep->ldr = ld_rise;
    ep->ldf = ld_fall;
    ep->ops.reserve(plan_.size());

    const auto fill_out = [&](GateId h, FusedGate& fg) {
      fg.vw = values + static_cast<std::size_t>(h) * NW;
      fg.r = shared_ ? rise_[h] : 0.0;
      fg.f = shared_ ? fall_[h] : 0.0;
      fg.rp = kLaneDelays ? ld_rise + static_cast<std::size_t>(h) * count
                          : nullptr;
      fg.fp = kLaneDelays ? ld_fall + static_cast<std::size_t>(h) * count
                          : nullptr;
      fg.tp = times + static_cast<std::size_t>(slot_[h]) * P;
      const BatchOp ho = cn.op(h);
      fg.cinv = (ho == BatchOp::kOr2 || ho == BatchOp::kNor2) ? 0x00 : 0xFF;
    };

    for (const PlanOp& po : plan_) {
      const GateId g = po.p;
      const std::uint32_t fb = cn.fanin_begin(g);
      const BatchOp op = cn.op(g);
      PreOp q;
      fill_out(g, q.fc.P);

      if (po.s != kNoGate || po.c != kNoGate) {
        q.kind = PreOp::kFused;
        q.fc.x = src_of(fanins[fb]);
        q.fc.y = src_of(fanins[fb + 1]);
        if (po.s != kNoGate) {
          q.fc.has_s = true;
          fill_out(po.s, q.fc.S);
        }
        if (po.c != kNoGate) {
          q.fc.has_c = true;
          fill_out(po.c, q.fc.C);
          const std::uint32_t cb = cn.fanin_begin(po.c);
          const GateId other = fanins[cb] == g ? fanins[cb + 1] : fanins[cb];
          q.fc.g = src_of(other);
        }
        q.pSrc = src_of(g);
        ep->ops.push_back(q);
        continue;
      }

      switch (op) {
        case BatchOp::kBuf:
        case BatchOp::kNot:
          q.kind = PreOp::kUnary;
          q.fc.x = src_of(fanins[fb]);
          break;
        case BatchOp::kMux:
          q.kind = PreOp::kMux;
          q.fc.x = src_of(fanins[fb]);
          q.fc.y = src_of(fanins[fb + 1]);
          q.fc.g = src_of(fanins[fb + 2]);
          break;
        case BatchOp::kAnd2:
        case BatchOp::kNand2:
        case BatchOp::kOr2:
        case BatchOp::kNor2:
          q.kind = PreOp::kAnd2;
          q.ctrl = (op == BatchOp::kOr2 || op == BatchOp::kNor2);
          q.fc.x = src_of(fanins[fb]);
          q.fc.y = src_of(fanins[fb + 1]);
          break;
        case BatchOp::kXor2:
        case BatchOp::kXnor2:
          q.kind = PreOp::kXor2;
          q.fc.x = src_of(fanins[fb]);
          q.fc.y = src_of(fanins[fb + 1]);
          break;
        case BatchOp::kAndN:
        case BatchOp::kNandN:
        case BatchOp::kOrN:
        case BatchOp::kNorN:
        case BatchOp::kXorN:
        case BatchOp::kXnorN: {
          const bool is_xor =
              (op == BatchOp::kXorN || op == BatchOp::kXnorN);
          q.kind = is_xor ? PreOp::kNaryXor : PreOp::kNaryAnd;
          q.ctrl = (op == BatchOp::kOrN || op == BatchOp::kNorN);
          q.nf = cn.fanin_count(g);
          q.nary_off = static_cast<std::uint32_t>(ep->nary.size());
          for (std::uint32_t k = 0; k < q.nf; ++k) {
            ep->nary.push_back(src_of(fanins[fb + k]));
          }
          break;
        }
        default:
          continue;  // inputs/constants never enter the plan
      }
      ep->ops.push_back(q);
    }
  }

  for (const PreOp& q : ep->ops) {
    const FusedGate& og = q.fc.P;
    switch (q.kind) {
      case PreOp::kFused:
        fused_run<kLaneDelays>(q.fc, q.pSrc, count, P);
        break;
      case PreOp::kUnary:
        wide_unary<kLaneDelays>(q.fc.x, og.vw, og.r, og.f, og.rp, og.fp,
                                og.tp, count, P);
        break;
      case PreOp::kMux:
        wide_mux<kLaneDelays>(q.fc.x, q.fc.y, q.fc.g, og.vw, og.r, og.f,
                              og.rp, og.fp, og.tp, count, P);
        break;
      case PreOp::kAnd2:
        wide_and2<kLaneDelays>(q.fc.x, q.fc.y, og.vw, q.ctrl, og.r, og.f,
                               og.rp, og.fp, og.tp, count, P);
        break;
      case PreOp::kXor2:
        wide_xor2<kLaneDelays>(q.fc.x, q.fc.y, og.vw, og.r, og.f, og.rp,
                               og.fp, og.tp, count, P);
        break;
      case PreOp::kNaryAnd:
        wide_nary_and<kLaneDelays>(ep->nary.data() + q.nary_off, q.nf, og.vw,
                                   q.ctrl, og.r, og.f, og.rp, og.fp, og.tp,
                                   count, P);
        break;
      case PreOp::kNaryXor:
        wide_nary_xor<kLaneDelays>(ep->nary.data() + q.nary_off, q.nf, og.vw,
                                   og.r, og.f, og.rp, og.fp, og.tp, count, P);
        break;
    }
  }
}

void BitSliceEngine::run(const std::uint64_t* input_words, std::size_t count,
                         BitSliceState& out) const {
  if (!shared_) {
    throw std::logic_error(
        "BitSliceEngine: shared-delay run on a lane-delay engine");
  }
  obs::Span span = trace_bitslice(count, cn_->num_gates());
  run_impl<false>(input_words, count, nullptr, out);
}

void BitSliceEngine::run(const std::uint64_t* input_words, std::size_t count,
                         const BatchDelays& delays, BitSliceState& out) const {
  if (shared_) {
    throw std::logic_error(
        "BitSliceEngine: lane-delay run on a shared-delay engine");
  }
  if (delays.batch != count ||
      delays.rise_ps.size() != cn_->num_gates() * count ||
      delays.fall_ps.size() != cn_->num_gates() * count) {
    throw std::invalid_argument(
        "BitSliceEngine::run: wrong per-lane delay count");
  }
  obs::Span span = trace_bitslice(count, cn_->num_gates());
  run_impl<true>(input_words, count, &delays, out);
}

}  // namespace pufatt::timingsim
