// Bit-sliced fleet evaluation: 64 evaluations ("lanes") per machine word.
//
// The third evaluation path beside the scalar engine and the SoA
// `run_batch`.  Logic VALUES are packed 64 lanes per `uint64_t`, so every
// word operation of the value pass evaluates one gate for 64 devices or
// challenges at once.  Settle TIMES are real numbers and cannot be
// bit-sliced without giving up the repo's exactness contract (engines must
// agree double-for-double so near-tie races decide identically), so the
// time pass keeps per-lane doubles — but classifies every gate's time
// representation first:
//
//   * kConstT   — the settle time is the same in every lane (inputs,
//                 constants, and any gate whose fanin combinations all
//                 yield one time).  Zero storage, zero per-lane work.
//   * kBimodalT — the time is a function of the gate's own value
//                 (t = v ? t1 : t0).  Zero storage; consumers rebuild the
//                 lane times from two broadcasts and the value word.  In
//                 the ALU PUF adders every input-fed XOR/AND classifies
//                 this way.
//   * kWideT    — genuinely lane-dependent; 64 doubles per word of lanes,
//                 computed with exactly the SoA kernels' operation order
//                 (same min/max/add sequence per lane => identical
//                 doubles => identical arbiter decisions).
//
// Classification happens once per (netlist, shared DelaySet) by
// enumerating fanin value combinations; it is conservative (a gate whose
// enumerated times disagree is wide even if the disagreeing combinations
// are unreachable), which can only cost speed, never correctness.  With
// per-lane delays (the noisy device path) every computed gate is wide and
// the classification shortcut vanishes — the win there is the word-wide
// value pass and mask-driven delay selection.
//
// Lane layout: lane l of word w is evaluation index w*64 + l.  Inputs
// arrive as transposed challenge words from `pack_input_words`
// (`words[i*nwords + w]` = input bit i across lanes); responses come back
// through the word-parallel arbiter `race_words` and
// `support::unpack_bit_columns`.  Input arrival-time overrides
// (`input_times_ps`) are not supported — every PUF path launches inputs at
// t=0, which is what the engine assumes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/bitvec.hpp"
#include "timingsim/compiled_netlist.hpp"
#include "timingsim/timing_sim.hpp"

namespace pufatt::timingsim {

/// Evaluation-engine selector for batch entry points (AluPuf /
/// AluPufEmulator / PufDevice / gen-crps).  All four produce identical
/// doubles and therefore identical responses; they differ only in speed.
enum class BatchEngine : std::uint8_t {
  kAuto,      ///< bit-sliced when the batch fills a word, SoA otherwise
  kScalar,    ///< one scalar `run` per lane (reference path)
  kBatch,     ///< SoA `run_batch`
  kBitslice,  ///< BitSliceEngine
};

/// Batches at/above this lane count route to the bit-sliced engine under
/// BatchEngine::kAuto.
inline constexpr std::size_t kBitsliceMinLanes = 64;

/// Packs `count` challenges into transposed lane words:
/// `out[i*nwords + w]` holds input bit i of lanes [w*64, w*64+64), lane l
/// in bit l.  `nwords = ceil(count/64)`; tail lanes are zero.  Every
/// challenge must have exactly `num_inputs` bits (std::invalid_argument).
void pack_input_words(const support::BitVector* challenges, std::size_t count,
                      std::size_t num_inputs, std::vector<std::uint64_t>& out);

/// Result of one bit-sliced run.  Value words for every gate; wide time
/// lanes only for gates the engine classified kWideT (slot-indexed — read
/// through the engine's accessors, which know each gate's representation).
/// Gates outside the observed cone read as value 0 / time 0 like
/// BatchState.
struct BitSliceState {
  std::size_t count = 0;   ///< live lanes
  std::size_t nwords = 0;  ///< ceil(count/64)
  std::size_t padded = 0;  ///< nwords * 64 (wide-lane stride)
  std::vector<std::uint64_t> values;  ///< [gate*nwords + w]
  std::vector<double> times;          ///< [wide_slot*padded + lane]
  /// Engine that last filled this state.  Same engine + same shape lets a
  /// rerun skip re-zeroing `values`: unscheduled gates were zeroed once and
  /// are never written, scheduled gates are fully rewritten.
  const void* owner = nullptr;
  /// Materialized time-pass dispatch (kernel arguments resolved to
  /// pointers), rebuilt whenever the engine, lane count, buffer addresses,
  /// or per-lane delay rows change.  Fleet workloads reuse one state across
  /// thousands of same-shape batches, so the per-gate argument setup
  /// amortizes to zero.  Opaque: the entry types live in the engine's TU.
  std::shared_ptr<void> exec;
};

/// Reusable bit-sliced evaluator for one compiled netlist.
///
/// Two modes, fixed at construction:
///  * shared-delay mode bakes one DelaySet into the gate plan (time-rep
///    classification above) — the deterministic emulation path;
///  * lane-delay mode takes per-lane BatchDelays at run time (every
///    computed gate wide) — the noisy device path.
/// The CompiledNetlist (and in shared mode nothing else) must outlive the
/// engine.
class BitSliceEngine {
 public:
  /// Lane-delay mode.
  explicit BitSliceEngine(const CompiledNetlist& compiled);

  /// Shared-delay mode; `delays` are copied into the plan.
  BitSliceEngine(const CompiledNetlist& compiled, const DelaySet& delays);

  bool shared_mode() const { return shared_; }

  /// Gates carrying per-lane double time lanes (diagnostics: the fraction
  /// of the netlist that still pays per-lane time arithmetic).
  std::size_t num_wide() const { return wide_count_; }

  /// Time-pass steps after full-adder fusion (diagnostics: num_wide()
  /// minus the gates folded into a sibling's step).
  std::size_t num_plan_ops() const { return plan_.size(); }

  /// Shared-delay run.  `input_words` as produced by pack_input_words for
  /// this netlist's input count; `count` live lanes (any count >= 1).
  void run(const std::uint64_t* input_words, std::size_t count,
           BitSliceState& out) const;

  /// Lane-delay run; `delays.batch` must equal `count`.
  void run(const std::uint64_t* input_words, std::size_t count,
           const BatchDelays& delays, BitSliceState& out) const;

  bool value(const BitSliceState& s, netlist::GateId g,
             std::size_t lane) const {
    return (s.values[static_cast<std::size_t>(g) * s.nwords + (lane >> 6)] >>
            (lane & 63)) &
           1ULL;
  }

  double time_ps(const BitSliceState& s, netlist::GateId g,
                 std::size_t lane) const;

  /// Word-parallel arbiter: writes `s.nwords` words where bit l of word w
  /// is Arbiter::decide(t[g1] - t[g0]) for lane w*64+l.  Tail bits beyond
  /// `s.count` are zero.
  void race_words(const BitSliceState& s, netlist::GateId g0,
                  netlist::GateId g1, std::uint64_t* out) const;

 private:
  enum TimeRep : std::uint8_t { kConstT = 0, kBimodalT = 1, kWideT = 2 };

  /// One time-pass step: a wide gate `p`, optionally fused with a sibling
  /// XOR `s` sharing both fanins (a full adder's sum next to its carry
  /// propagate — the max(xa, xb) is shared) and a 2-input AND-family
  /// consumer `c` of p (the carry-out — p's lanes forward in registers
  /// instead of round-tripping through memory).  Fusion only reorders
  /// whole-gate computations within dataflow order, so results are
  /// unchanged; kNoGate marks an absent slot.
  struct PlanOp {
    netlist::GateId p;
    netlist::GateId s;
    netlist::GateId c;
  };
  static constexpr netlist::GateId kNoGate =
      static_cast<netlist::GateId>(-1);

  void init_common();
  void classify_shared(const DelaySet& delays);
  void build_plan();
  void prepare(BitSliceState& out, std::size_t count) const;
  template <bool kLaneDelays>
  void run_impl(const std::uint64_t* input_words, std::size_t count,
                const BatchDelays* lane_delays, BitSliceState& out) const;

  const CompiledNetlist* cn_;
  bool shared_ = false;
  std::size_t wide_count_ = 0;
  // Per-gate plan (indexed by gate id).
  std::vector<std::uint8_t> rep_;
  std::vector<double> t0_;            ///< kConstT time / kBimodalT value-0 time
  std::vector<double> t1_;            ///< kBimodalT value-1 time
  std::vector<std::uint32_t> slot_;   ///< kWideT time-lane slot
  std::vector<double> rise_, fall_;   ///< shared-mode delays (baked copy)
  std::vector<PlanOp> plan_;          ///< time-pass order (one entry per
                                      ///< unfused wide gate / fused group)
};

}  // namespace pufatt::timingsim
