// Precomputed evaluation schedule for one netlist.
//
// The timing simulator's hot path used to chase `Gate::fanins` vectors (one
// heap allocation per gate) and re-derive per-gate facts on every call.
// CompiledNetlist hoists everything that depends only on the *structure* of
// the netlist into flat arrays built once:
//
//   * a levelized topological schedule (gates grouped by logic depth, which
//     is also a valid forward evaluation order);
//   * CSR-flattened fanin arrays (one contiguous GateId span per gate);
//   * a micro-op table that pre-resolves gate kind x fanin arity, so the
//     batch kernel dispatches once per gate instead of re-inspecting
//     `Gate` records;
//   * the input-gate index map (gate id -> primary-input position);
//   * an observed-cone mask: when the consumer only reads a subset of nets
//     (the arbiter cones of a PUF), gates outside their transitive fanin
//     are dropped from the schedule entirely.
//
// It also records whether input gates appear in netlist (gate-id) order —
// the invariant the scalar engine's `next_input` cursor silently relied on.
// TimingSimulator now rejects netlists that violate it (see timing_sim.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace pufatt::timingsim {

/// Pre-resolved gate operation: kind with the 2-input common case split out
/// so the evaluation kernels run a tight two-operand path for the gates
/// that dominate real circuits (every gate of the raced adders is 2-input).
enum class BatchOp : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kMux,
  kAnd2,
  kOr2,
  kNand2,
  kNor2,
  kXor2,
  kXnor2,
  kAndN,
  kOrN,
  kNandN,
  kNorN,
  kXorN,
  kXnorN,
};

class CompiledNetlist {
 public:
  /// Sentinel for `input_pos` of non-input gates.
  static constexpr std::uint32_t kNotAnInput = 0xFFFFFFFFu;

  /// Compiles the full netlist (every gate observed / scheduled).
  explicit CompiledNetlist(const netlist::Netlist& net);

  /// Compiles only the transitive fanin cone of `observed` gates: gates
  /// outside the cone are never evaluated (their batch lanes stay zero).
  CompiledNetlist(const netlist::Netlist& net,
                  const std::vector<netlist::GateId>& observed);

  const netlist::Netlist& net() const { return *net_; }
  std::size_t num_gates() const { return kinds_.size(); }
  std::size_t num_inputs() const { return net_->num_inputs(); }
  std::size_t num_levels() const { return level_offsets_.size() - 1; }

  /// True when the k-th kInput gate in gate-id order is `net.inputs()[k]`
  /// for every k — the layout every sequential-cursor consumer assumes.
  bool inputs_in_netlist_order() const { return inputs_in_netlist_order_; }

  /// Scheduled (active) gates in level-major topological order.
  const std::vector<netlist::GateId>& schedule() const { return schedule_; }

  /// CSR offsets into `schedule()` per level (size num_levels()+1).
  const std::vector<std::uint32_t>& level_offsets() const {
    return level_offsets_;
  }

  /// Logic depth of a gate (inputs/constants are level 0).
  std::uint32_t level(netlist::GateId id) const { return level_[id]; }

  /// Observed-cone membership (1 = evaluated by the schedule).
  bool active(netlist::GateId id) const { return active_[id] != 0; }
  const std::vector<std::uint8_t>& active_mask() const { return active_; }
  std::size_t num_active() const { return schedule_.size(); }

  netlist::GateKind kind(netlist::GateId id) const { return kinds_[id]; }
  BatchOp op(netlist::GateId id) const { return ops_[id]; }

  /// Primary-input position of an input gate, kNotAnInput otherwise.
  std::uint32_t input_pos(netlist::GateId id) const { return input_pos_[id]; }

  /// CSR fanin access: fanins of gate `id` are
  /// `fanins()[fanin_begin(id) .. fanin_begin(id+1))`.
  std::uint32_t fanin_begin(netlist::GateId id) const {
    return fanin_offsets_[id];
  }
  std::uint32_t fanin_count(netlist::GateId id) const {
    return fanin_offsets_[id + 1] - fanin_offsets_[id];
  }
  const std::vector<netlist::GateId>& fanins() const { return fanins_; }

 private:
  void build(const netlist::Netlist& net,
             const std::vector<netlist::GateId>* observed);

  const netlist::Netlist* net_;
  std::vector<netlist::GateKind> kinds_;
  std::vector<BatchOp> ops_;
  std::vector<std::uint32_t> fanin_offsets_;  ///< size num_gates()+1
  std::vector<netlist::GateId> fanins_;
  std::vector<std::uint32_t> input_pos_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint8_t> active_;
  std::vector<netlist::GateId> schedule_;
  std::vector<std::uint32_t> level_offsets_;
  bool inputs_in_netlist_order_ = true;
};

}  // namespace pufatt::timingsim
