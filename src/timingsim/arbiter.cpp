#include "timingsim/arbiter.hpp"

#include <cmath>

namespace pufatt::timingsim {

double Arbiter::probability_one(double delta_ps) const {
  if (params_.meta_tau_ps <= 0.0) return delta_ps > 0.0 ? 1.0 : 0.0;
  // Logistic resolution curve centred at delta = 0.
  return 1.0 / (1.0 + std::exp(-delta_ps / params_.meta_tau_ps));
}

bool Arbiter::sample(double delta_ps, support::Xoshiro256pp& rng) const {
  return rng.bernoulli(probability_one(delta_ps));
}

}  // namespace pufatt::timingsim
