// Event-driven gate-level simulation with inertial delays.
//
// The production engine (timing_sim.hpp) computes settling times in one
// topological pass using controlling-input ("floating mode") semantics —
// fast enough for million-challenge experiments but an approximation: it
// ignores glitching.  This engine simulates the actual transition
// dynamics: inputs switch from a previous vector to the new one at t = 0,
// transitions propagate as discrete events, and a gate's pending output
// change is cancelled if its inputs revert before the delay elapses
// (inertial filtering).  It reports, per net, the final value, the time of
// the *last* transition (the true settling time) and the number of
// transitions (glitch activity).
//
// Used by the validation tests and `bench/engine_crosscheck` to bound the
// error of the fast engine on exactly the circuits the PUF races.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"
#include "timingsim/timing_sim.hpp"

namespace pufatt::timingsim {

/// Result of one event-driven run, per net.
struct EventState {
  bool value = false;       ///< final settled value
  double settle_ps = 0.0;   ///< time of the last output transition (0 if none)
  std::size_t transitions = 0;  ///< total output changes (glitches included)
};

class EventSimulator {
 public:
  explicit EventSimulator(const netlist::Netlist& net);

  /// Simulates the transition from `previous` inputs (settled since
  /// forever) to `next` inputs (applied at t = 0) under `delays`.
  /// Gates use the rise delay when switching to 1 and the fall delay when
  /// switching to 0.
  std::vector<EventState> run(const std::vector<bool>& previous,
                              const std::vector<bool>& next,
                              const DelaySet& delays) const;

 private:
  const netlist::Netlist* net_;
  std::vector<std::vector<netlist::GateId>> fanouts_;
};

}  // namespace pufatt::timingsim
