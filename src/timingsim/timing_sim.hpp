// Value-aware settling-time simulation.
//
// For a given input vector and per-gate delays, computes for every net both
// its final logic value and the time at which it settles, using controlling-
// input semantics ("floating mode"):
//   * XOR/XNOR settle when the last input settles;
//   * AND/OR settle at the earliest controlling input (a 0 on an AND, a 1 on
//     an OR) if one exists, else at the latest input;
//   * MUX with a statically-settled select settles when the selected data
//     path settles.
// This is what makes the PUF response genuinely challenge-dependent: carry
// chains are only exercised where the operands actually propagate a carry,
// exactly the mechanism the paper describes ("delay characteristics ...
// depend on the inputs x_{i-1} and x_{i+3} because carry bits ... are
// propagated from the LSB side to the MSB side").
#pragma once

#include <limits>
#include <vector>

#include "netlist/netlist.hpp"

namespace pufatt::timingsim {

/// Settled state of one net.
struct SignalState {
  bool value = false;
  double time_ps = 0.0;
};

/// Time value for nets that are settled "since forever" (constants, static
/// configuration).
inline constexpr double kAlwaysSettled =
    -std::numeric_limits<double>::infinity();

/// Per-gate delays for one evaluation, split by output transition
/// direction.  Rise/fall asymmetry is a first-order property of CMOS
/// gates (PMOS vs NMOS drive) and is what makes the settling time of even
/// a structurally-fixed path depend on the data values it carries — the
/// PUFatt protocol leans on this (its PUF challenges drive the full carry
/// chain; the chip-specific rise/fall mix encodes the challenge).
struct DelaySet {
  std::vector<double> rise_ps;  ///< delay when the gate output is 1
  std::vector<double> fall_ps;  ///< delay when the gate output is 0
};

/// Reusable simulator for one netlist.  The per-gate delay set changes
/// per evaluation (noise) or per operating point; the netlist does not.
class TimingSimulator {
 public:
  explicit TimingSimulator(const netlist::Netlist& net);

  /// Runs one evaluation.
  /// `inputs` — value per primary input, in input order.
  /// `delays` — rise/fall delay per gate id (inputs/constants ignored).
  /// `input_times_ps` — optional arrival time per primary input (defaults
  ///   to 0: the synchronized launch the paper's sync logic provides).
  /// Results for all gates land in `states` (resized as needed).
  void run(const std::vector<bool>& inputs, const DelaySet& delays,
           std::vector<SignalState>& states,
           const std::vector<double>* input_times_ps = nullptr) const;

  /// Symmetric-delay convenience overload (rise == fall).
  void run(const std::vector<bool>& inputs,
           const std::vector<double>& gate_delays_ps,
           std::vector<SignalState>& states,
           const std::vector<double>* input_times_ps = nullptr) const;

  /// Convenience wrapper returning a fresh state vector.
  std::vector<SignalState> run(const std::vector<bool>& inputs,
                               const std::vector<double>& gate_delays_ps) const;

  const netlist::Netlist& net() const { return *net_; }

 private:
  template <typename DelayOf>
  void run_impl(const std::vector<bool>& inputs, DelayOf&& delay_of,
                std::vector<SignalState>& states,
                const std::vector<double>* input_times_ps) const;

  const netlist::Netlist* net_;
};

}  // namespace pufatt::timingsim
