// Value-aware settling-time simulation.
//
// For a given input vector and per-gate delays, computes for every net both
// its final logic value and the time at which it settles, using controlling-
// input semantics ("floating mode"):
//   * XOR/XNOR settle when the last input settles;
//   * AND/OR settle at the earliest controlling input (a 0 on an AND, a 1 on
//     an OR) if one exists, else at the latest input;
//   * MUX with a statically-settled select settles when the selected data
//     path settles.
// This is what makes the PUF response genuinely challenge-dependent: carry
// chains are only exercised where the operands actually propagate a carry,
// exactly the mechanism the paper describes ("delay characteristics ...
// depend on the inputs x_{i-1} and x_{i+3} because carry bits ... are
// propagated from the LSB side to the MSB side").
//
// Two engines share the semantics above and are bit-identical per net:
//   * the scalar engine (`run`) evaluates one input vector;
//   * the batch engine (`run_batch`) evaluates B input vectors per pass over
//     a structure-of-arrays state (contiguous per-gate value/time lanes), so
//     per-gate dispatch and delay loads amortize over the batch and the lane
//     loops vectorize.  Million-challenge experiments (HD sweeps, CRP
//     datasets, verifier emulation) run on the batch engine.
// Both walk the CompiledNetlist schedule (levelized topological order, CSR
// fanins) instead of chasing per-gate fanin vectors.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "netlist/netlist.hpp"
#include "support/bitvec.hpp"
#include "timingsim/compiled_netlist.hpp"

namespace pufatt::timingsim {

/// Settled state of one net.
struct SignalState {
  bool value = false;
  double time_ps = 0.0;
};

/// Time value for nets that are settled "since forever" (constants, static
/// configuration).
inline constexpr double kAlwaysSettled =
    -std::numeric_limits<double>::infinity();

/// Per-gate delays for one evaluation, split by output transition
/// direction.  Rise/fall asymmetry is a first-order property of CMOS
/// gates (PMOS vs NMOS drive) and is what makes the settling time of even
/// a structurally-fixed path depend on the data values it carries — the
/// PUFatt protocol leans on this (its PUF challenges drive the full carry
/// chain; the chip-specific rise/fall mix encodes the challenge).
struct DelaySet {
  std::vector<double> rise_ps;  ///< delay when the gate output is 1
  std::vector<double> fall_ps;  ///< delay when the gate output is 0
};

/// Per-gate, per-lane delays for one batch evaluation (SoA, gate-major:
/// lane b of gate g lives at `[g * batch + b]`).  This is the layout the
/// noisy device path uses — every evaluation in a batch jitters its own
/// delay realization.
struct BatchDelays {
  std::size_t batch = 0;
  std::vector<double> rise_ps;
  std::vector<double> fall_ps;
};

/// Structure-of-arrays result of one batch evaluation: for every gate, a
/// contiguous lane of values and settle times (gate-major, `[g*batch+b]`).
/// Gates outside the simulator's observed cone keep zeroed lanes.
struct BatchState {
  std::size_t batch = 0;
  std::vector<std::uint8_t> values;  ///< 0/1 per gate-lane
  std::vector<double> times_ps;

  bool value(netlist::GateId g, std::size_t lane) const {
    return values[static_cast<std::size_t>(g) * batch + lane] != 0;
  }
  double time_ps(netlist::GateId g, std::size_t lane) const {
    return times_ps[static_cast<std::size_t>(g) * batch + lane];
  }

  /// Internal scratch for n-ary gate reductions; sized by the kernel.
  std::vector<double> scratch_a;
  std::vector<double> scratch_b;
};

/// Packs `count` challenge vectors into the input-major lane layout the
/// batch engine consumes: `out[i*count + lane] = challenges[lane].bit(i)`.
/// Every challenge must have exactly `num_inputs` bits.
void pack_input_lanes(const support::BitVector* challenges, std::size_t count,
                      std::size_t num_inputs, std::vector<std::uint8_t>& out);

/// Reusable simulator for one netlist.  The per-gate delay set changes
/// per evaluation (noise) or per operating point; the netlist does not.
///
/// Construction compiles the netlist (levelized schedule, CSR fanins) and
/// validates that input gates appear in netlist order — the layout the
/// input cursor of every evaluation path assumes; a permuted netlist (see
/// Netlist::reorder_inputs) is rejected with std::invalid_argument rather
/// than silently mis-binding challenge bits.
class TimingSimulator {
 public:
  explicit TimingSimulator(const netlist::Netlist& net);

  /// Cone-restricted simulator: only the transitive fanin of `observed`
  /// gates is evaluated (states/lanes of other gates are left zeroed by
  /// run_batch; the scalar engine still fills every gate, see run).
  TimingSimulator(const netlist::Netlist& net,
                  const std::vector<netlist::GateId>& observed);

  // ------------------------------------------------------- scalar engine
  //
  // `inputs` — value per primary input, in input order.
  // `delays` — rise/fall delay per gate id (inputs/constants ignored).
  // `input_times_ps` — optional arrival time per primary input (defaults
  //   to 0: the synchronized launch the paper's sync logic provides).
  // Results for all gates land in `states` (resized as needed).

  /// Primary overload: BitVector challenge, no conversion allocation.
  void run(const support::BitVector& inputs, const DelaySet& delays,
           std::vector<SignalState>& states,
           const std::vector<double>* input_times_ps = nullptr) const;

  /// Raw byte-lane inputs (0/1 per entry), e.g. one lane of a batch.
  void run(const std::uint8_t* inputs, std::size_t count,
           const DelaySet& delays, std::vector<SignalState>& states,
           const std::vector<double>* input_times_ps = nullptr) const;

  /// Legacy vector<bool> overload (thin wrapper; avoid on hot paths).
  void run(const std::vector<bool>& inputs, const DelaySet& delays,
           std::vector<SignalState>& states,
           const std::vector<double>* input_times_ps = nullptr) const;

  /// Symmetric-delay convenience overloads (rise == fall).
  void run(const support::BitVector& inputs,
           const std::vector<double>& gate_delays_ps,
           std::vector<SignalState>& states,
           const std::vector<double>* input_times_ps = nullptr) const;
  void run(const std::vector<bool>& inputs,
           const std::vector<double>& gate_delays_ps,
           std::vector<SignalState>& states,
           const std::vector<double>* input_times_ps = nullptr) const;

  /// Convenience wrapper returning a fresh state vector (test/diagnostic
  /// use; evaluation loops should pass a reused `states` instead).
  std::vector<SignalState> run(const std::vector<bool>& inputs,
                               const std::vector<double>& gate_delays_ps) const;

  // -------------------------------------------------------- batch engine
  //
  // `inputs` — input-major lanes: `inputs[i*batch + lane]` is the value of
  //   primary input i for evaluation `lane` (see pack_input_lanes).
  // Responses are bit-identical to `batch` scalar `run` calls: the kernels
  // perform the same floating-point operations in the same order per lane.

  /// Shared delays across lanes (deterministic emulation, HD sweeps).
  void run_batch(const std::uint8_t* inputs, std::size_t batch,
                 const DelaySet& delays, BatchState& out,
                 const std::vector<double>* input_times_ps = nullptr) const;

  /// Per-lane delays (noisy device evaluation).
  void run_batch(const std::uint8_t* inputs, std::size_t batch,
                 const BatchDelays& delays, BatchState& out,
                 const std::vector<double>* input_times_ps = nullptr) const;

  const netlist::Netlist& net() const { return *net_; }
  const CompiledNetlist& compiled() const { return compiled_; }

 private:
  template <typename InputAt, typename DelayOf>
  void run_impl(InputAt&& input_at, DelayOf&& delay_of,
                std::vector<SignalState>& states,
                const std::vector<double>* input_times_ps) const;

  template <typename LaneDelay>
  void run_batch_impl(const std::uint8_t* inputs, std::size_t batch,
                      LaneDelay&& delay_at, BatchState& out,
                      const std::vector<double>* input_times_ps) const;

  void check_delay_count(std::size_t rise, std::size_t fall) const;

  const netlist::Netlist* net_;
  CompiledNetlist compiled_;
};

}  // namespace pufatt::timingsim
