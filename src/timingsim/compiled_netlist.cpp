#include "timingsim/compiled_netlist.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pufatt::timingsim {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;

namespace {

BatchOp op_for(GateKind kind, std::size_t fanins) {
  const bool two = fanins == 2;
  switch (kind) {
    case GateKind::kInput: return BatchOp::kInput;
    case GateKind::kConst0: return BatchOp::kConst0;
    case GateKind::kConst1: return BatchOp::kConst1;
    case GateKind::kBuf: return BatchOp::kBuf;
    case GateKind::kNot: return BatchOp::kNot;
    case GateKind::kMux: return BatchOp::kMux;
    case GateKind::kAnd: return two ? BatchOp::kAnd2 : BatchOp::kAndN;
    case GateKind::kOr: return two ? BatchOp::kOr2 : BatchOp::kOrN;
    case GateKind::kNand: return two ? BatchOp::kNand2 : BatchOp::kNandN;
    case GateKind::kNor: return two ? BatchOp::kNor2 : BatchOp::kNorN;
    case GateKind::kXor: return two ? BatchOp::kXor2 : BatchOp::kXorN;
    case GateKind::kXnor: return two ? BatchOp::kXnor2 : BatchOp::kXnorN;
  }
  return BatchOp::kBuf;
}

}  // namespace

CompiledNetlist::CompiledNetlist(const netlist::Netlist& net) : net_(&net) {
  build(net, nullptr);
}

CompiledNetlist::CompiledNetlist(const netlist::Netlist& net,
                                 const std::vector<GateId>& observed)
    : net_(&net) {
  build(net, &observed);
}

void CompiledNetlist::build(const netlist::Netlist& net,
                            const std::vector<GateId>* observed) {
  // Compilation is the cold half of a cache miss (cache.build ends up
  // here via the Verifier constructor); a span per compile makes cold
  // starts visible next to the per-batch kernels they amortize into.
  obs::Span span;
  if (obs::global_trace_enabled()) {
    obs::global_registry().counter("sim.compiles").add(1);
    span = obs::global_tracer().span("sim.compile");
  }
  const auto& gates = net.gates();
  const std::size_t n = gates.size();
  kinds_.resize(n);
  ops_.resize(n);
  input_pos_.assign(n, kNotAnInput);
  level_.assign(n, 0);
  fanin_offsets_.assign(n + 1, 0);

  std::size_t total_fanins = 0;
  std::size_t next_input = 0;
  for (std::size_t id = 0; id < n; ++id) {
    const Gate& g = gates[id];
    kinds_[id] = g.kind;
    ops_[id] = op_for(g.kind, g.fanins.size());
    total_fanins += g.fanins.size();
    if (g.kind == GateKind::kInput) {
      // The k-th input gate encountered in id order must be inputs()[k]
      // for the sequential-cursor layout to be valid.
      if (next_input >= net.num_inputs() ||
          net.inputs()[next_input] != static_cast<GateId>(id)) {
        inputs_in_netlist_order_ = false;
      }
      // Record the true position regardless, so diagnostics can name it.
      for (std::size_t k = 0; k < net.num_inputs(); ++k) {
        if (net.inputs()[k] == static_cast<GateId>(id)) {
          input_pos_[id] = static_cast<std::uint32_t>(k);
          break;
        }
      }
      ++next_input;
    }
  }

  fanins_.reserve(total_fanins);
  std::uint32_t offset = 0;
  std::uint32_t max_level = 0;
  for (std::size_t id = 0; id < n; ++id) {
    fanin_offsets_[id] = offset;
    std::uint32_t lvl = 0;
    for (const GateId f : gates[id].fanins) {
      fanins_.push_back(f);
      lvl = std::max(lvl, level_[f] + 1);
    }
    level_[id] = lvl;
    max_level = std::max(max_level, lvl);
    offset += static_cast<std::uint32_t>(gates[id].fanins.size());
  }
  fanin_offsets_[n] = offset;

  // Observed cone: walk fanins backwards from the observed set (gate ids
  // are topological, so a reverse id sweep propagates membership in one
  // pass).  Without an observed set, everything is active.
  if (observed == nullptr) {
    active_.assign(n, 1);
  } else {
    active_.assign(n, 0);
    for (const GateId g : *observed) active_.at(g) = 1;
    for (std::size_t id = n; id-- > 0;) {
      if (active_[id] == 0) continue;
      const auto begin = fanin_offsets_[id];
      const auto end = fanin_offsets_[id + 1];
      for (std::uint32_t k = begin; k < end; ++k) active_[fanins_[k]] = 1;
    }
  }

  // Levelized schedule: counting sort of active gates by level.  Gate ids
  // are already topological, so (level, id) order is too.
  level_offsets_.assign(static_cast<std::size_t>(max_level) + 2, 0);
  std::size_t active_count = 0;
  for (std::size_t id = 0; id < n; ++id) {
    if (active_[id] != 0) {
      ++level_offsets_[level_[id] + 1];
      ++active_count;
    }
  }
  for (std::size_t l = 1; l < level_offsets_.size(); ++l) {
    level_offsets_[l] += level_offsets_[l - 1];
  }
  schedule_.resize(active_count);
  std::vector<std::uint32_t> cursor(level_offsets_.begin(),
                                    level_offsets_.end() - 1);
  for (std::size_t id = 0; id < n; ++id) {
    if (active_[id] != 0) {
      schedule_[cursor[level_[id]]++] = static_cast<GateId>(id);
    }
  }
  if (span.active()) {
    span.note("gates", static_cast<double>(n));
    span.note("levels", static_cast<double>(num_levels()));
    span.note("active", static_cast<double>(active_count));
  }
}

}  // namespace pufatt::timingsim
