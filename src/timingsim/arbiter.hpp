// Arbiter (race-resolution) model with metastability.
//
// A physical arbiter is a latch that records which of two transitions
// arrived first.  When the arrival gap falls inside the latch's resolution
// window the output is effectively random.  We model the decision as a
// logistic function of the time difference — the standard soft model for
// arbiter PUFs — which reproduces the paper's finding that "the main factor
// affecting the intra-chip HD is arbiter metastability".
#pragma once

#include "support/rng.hpp"

namespace pufatt::timingsim {

struct ArbiterParams {
  /// Resolution time constant in picoseconds: the width of the region where
  /// the outcome is noticeably random.  Larger tau = noisier arbiter.
  double meta_tau_ps = 1.0;
};

class Arbiter {
 public:
  explicit Arbiter(const ArbiterParams& params = {}) : params_(params) {}

  /// Probability that the arbiter outputs 1 given delta = t_b - t_a
  /// (output 1 means "signal A settled first", matching the paper's
  /// convention that the response bit reflects which ALU won the race).
  double probability_one(double delta_ps) const;

  /// Samples the arbiter decision.
  bool sample(double delta_ps, support::Xoshiro256pp& rng) const;

  /// Deterministic (noise-free) decision: the sign of delta.  Used by the
  /// verifier's emulator, which has no metastability.
  static bool decide(double delta_ps) { return delta_ps > 0.0; }

  const ArbiterParams& params() const { return params_; }

 private:
  ArbiterParams params_;
};

}  // namespace pufatt::timingsim
