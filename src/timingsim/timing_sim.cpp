#include "timingsim/timing_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace pufatt::timingsim {

using netlist::Gate;
using netlist::GateKind;

TimingSimulator::TimingSimulator(const netlist::Netlist& net) : net_(&net) {}

template <typename DelayOf>
void TimingSimulator::run_impl(const std::vector<bool>& inputs,
                               DelayOf&& delay_of,
                               std::vector<SignalState>& states,
                               const std::vector<double>* input_times_ps) const {
  const auto& gates = net_->gates();
  if (inputs.size() != net_->num_inputs()) {
    throw std::invalid_argument("TimingSimulator::run: wrong input count");
  }
  states.resize(gates.size());

  std::size_t next_input = 0;
  for (std::size_t id = 0; id < gates.size(); ++id) {
    const Gate& g = gates[id];
    SignalState& out = states[id];
    bool value = false;
    double determined = 0.0;  // input-side determination time (pre-delay)
    switch (g.kind) {
      case GateKind::kInput: {
        out.value = inputs[next_input];
        out.time_ps =
            input_times_ps != nullptr ? (*input_times_ps)[next_input] : 0.0;
        ++next_input;
        continue;
      }
      case GateKind::kConst0:
        out = {false, kAlwaysSettled};
        continue;
      case GateKind::kConst1:
        out = {true, kAlwaysSettled};
        continue;
      case GateKind::kBuf: {
        const SignalState& in = states[g.fanins[0]];
        value = in.value;
        determined = in.time_ps;
        break;
      }
      case GateKind::kNot: {
        const SignalState& in = states[g.fanins[0]];
        value = !in.value;
        determined = in.time_ps;
        break;
      }
      case GateKind::kMux: {
        const SignalState& sel = states[g.fanins[0]];
        const SignalState& d0 = states[g.fanins[1]];
        const SignalState& d1 = states[g.fanins[2]];
        const SignalState& chosen = sel.value ? d1 : d0;
        value = chosen.value;
        if (sel.time_ps == kAlwaysSettled) {
          // Static configuration select (PDL): pure data-path delay.
          determined = chosen.time_ps;
        } else if (d0.value == d1.value) {
          // Output independent of select; settled once both datas are.
          determined = std::max(d0.time_ps, d1.time_ps);
        } else {
          determined = std::max(sel.time_ps, chosen.time_ps);
        }
        break;
      }
      case GateKind::kAnd:
      case GateKind::kNand:
      case GateKind::kOr:
      case GateKind::kNor: {
        const bool controlling =
            (g.kind == GateKind::kOr || g.kind == GateKind::kNor);
        bool any_controlling = false;
        double earliest_controlling = 0.0;
        double latest = kAlwaysSettled;
        for (const auto f : g.fanins) {
          const SignalState& in = states[f];
          latest = std::max(latest, in.time_ps);
          if (in.value == controlling) {
            if (!any_controlling || in.time_ps < earliest_controlling) {
              earliest_controlling = in.time_ps;
            }
            any_controlling = true;
          }
        }
        const bool raw = any_controlling ? controlling : !controlling;
        const bool inverted =
            (g.kind == GateKind::kNand || g.kind == GateKind::kNor);
        value = inverted ? !raw : raw;
        determined = any_controlling ? earliest_controlling : latest;
        break;
      }
      case GateKind::kXor:
      case GateKind::kXnor: {
        bool v = (g.kind == GateKind::kXnor);
        double latest = kAlwaysSettled;
        for (const auto f : g.fanins) {
          const SignalState& in = states[f];
          v = v != in.value;
          latest = std::max(latest, in.time_ps);
        }
        value = v;
        determined = latest;
        break;
      }
    }
    out.value = value;
    out.time_ps = determined + delay_of(id, value);
  }
}

void TimingSimulator::run(const std::vector<bool>& inputs,
                          const DelaySet& delays,
                          std::vector<SignalState>& states,
                          const std::vector<double>* input_times_ps) const {
  if (delays.rise_ps.size() != net_->num_gates() ||
      delays.fall_ps.size() != net_->num_gates()) {
    throw std::invalid_argument("TimingSimulator::run: wrong delay count");
  }
  run_impl(
      inputs,
      [&delays](std::size_t id, bool value) {
        return value ? delays.rise_ps[id] : delays.fall_ps[id];
      },
      states, input_times_ps);
}

void TimingSimulator::run(const std::vector<bool>& inputs,
                          const std::vector<double>& gate_delays_ps,
                          std::vector<SignalState>& states,
                          const std::vector<double>* input_times_ps) const {
  if (gate_delays_ps.size() != net_->num_gates()) {
    throw std::invalid_argument("TimingSimulator::run: wrong delay count");
  }
  run_impl(
      inputs,
      [&gate_delays_ps](std::size_t id, bool) { return gate_delays_ps[id]; },
      states, input_times_ps);
}

std::vector<SignalState> TimingSimulator::run(
    const std::vector<bool>& inputs,
    const std::vector<double>& gate_delays_ps) const {
  std::vector<SignalState> states;
  run(inputs, gate_delays_ps, states);
  return states;
}

}  // namespace pufatt::timingsim
