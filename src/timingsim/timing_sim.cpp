#include "timingsim/timing_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pufatt::timingsim {

using netlist::GateId;
using netlist::GateKind;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Profiling hook shared by both run_batch overloads.  Inert (one relaxed
// load + branch, or nothing at all under -DPUFATT_TRACE=0) unless the
// global tracer is on; then each batch gets a "sim.run_batch" span plus
// occupancy metrics — sim.lanes/sim.batches is the mean batch fill, the
// number the batched engine's speedup lives or dies by.
obs::Span trace_batch(std::size_t batch, std::size_t gates) {
  if (!obs::global_trace_enabled()) return obs::Span{};
  auto& registry = obs::global_registry();
  static obs::Counter& batches = registry.counter("sim.batches");
  static obs::Counter& lanes = registry.counter("sim.lanes");
  static obs::Gauge& occupancy = registry.gauge("sim.batch_occupancy");
  batches.add(1);
  lanes.add(batch);
  occupancy.set(static_cast<double>(batch));
  obs::Span span = obs::global_tracer().span("sim.run_batch");
  span.note("batch", static_cast<double>(batch));
  span.note("gates", static_cast<double>(gates));
  return span;
}

void check_netlist_input_order(const CompiledNetlist& compiled) {
  if (!compiled.inputs_in_netlist_order()) {
    throw std::invalid_argument(
        "TimingSimulator: netlist input gates are permuted relative to "
        "gate-id order (e.g. after Netlist::reorder_inputs); the evaluation "
        "engines bind challenge bits by netlist order and would silently "
        "mis-assign them");
  }
}

// The delay policies use a two-step bind(gate) -> (lane, value) protocol so
// the per-gate delay lookups happen OUTSIDE the lane loops.  Two reasons:
// the batch state's value lanes are uint8_t (char-family, aliases
// everything), so an in-loop rise[g] load would be reloaded after every
// value store; and both Bound functors load rise AND fall unconditionally
// before selecting — a load inside only one ternary arm reads as a
// *conditional load* to GCC's if-converter and blocks vectorization of
// every lane loop it inlines into.

/// Shared-across-lanes delay lookup (deterministic emulation).
struct SharedDelayAt {
  const double* rise;
  const double* fall;
  struct Bound {
    double r;
    double f;
    double operator()(std::size_t, std::uint8_t v) const {
      return v != 0 ? r : f;
    }
  };
  Bound bind(std::size_t g) const { return {rise[g], fall[g]}; }
};

/// Per-lane delay lookup (noisy device batches).
struct LaneDelayAt {
  const double* rise;
  const double* fall;
  std::size_t batch;
  struct Bound {
    const double* __restrict r;
    const double* __restrict f;
    double operator()(std::size_t b, std::uint8_t v) const {
      const double rr = r[b];
      const double ff = f[b];
      return v != 0 ? rr : ff;
    }
  };
  Bound bind(std::size_t g) const {
    return {rise + g * batch, fall + g * batch};
  }
};

}  // namespace

void pack_input_lanes(const support::BitVector* challenges, std::size_t count,
                      std::size_t num_inputs, std::vector<std::uint8_t>& out) {
  out.assign(num_inputs * count, 0);
  for (std::size_t lane = 0; lane < count; ++lane) {
    if (challenges[lane].size() != num_inputs) {
      throw std::invalid_argument("pack_input_lanes: wrong challenge width");
    }
    for (std::size_t i = 0; i < num_inputs; ++i) {
      out[i * count + lane] = challenges[lane].get(i) ? 1 : 0;
    }
  }
}

TimingSimulator::TimingSimulator(const netlist::Netlist& net)
    : net_(&net), compiled_(net) {
  check_netlist_input_order(compiled_);
}

TimingSimulator::TimingSimulator(const netlist::Netlist& net,
                                 const std::vector<GateId>& observed)
    : net_(&net), compiled_(net, observed) {
  check_netlist_input_order(compiled_);
}

void TimingSimulator::check_delay_count(std::size_t rise,
                                        std::size_t fall) const {
  if (rise != net_->num_gates() || fall != net_->num_gates()) {
    throw std::invalid_argument("TimingSimulator::run: wrong delay count");
  }
}

// ---------------------------------------------------------- scalar engine

template <typename InputAt, typename DelayOf>
void TimingSimulator::run_impl(InputAt&& input_at, DelayOf&& delay_of,
                               std::vector<SignalState>& states,
                               const std::vector<double>* input_times_ps) const {
  const CompiledNetlist& cn = compiled_;
  const std::size_t n = cn.num_gates();
  states.resize(n);
  const GateId* fanins = cn.fanins().data();

  // The scalar engine fills every gate (callers inspect arbitrary nets),
  // walking ids in order — already a topological schedule.
  for (std::size_t id = 0; id < n; ++id) {
    const std::uint32_t fb = cn.fanin_begin(static_cast<GateId>(id));
    SignalState& out = states[id];
    bool value = false;
    double determined = 0.0;  // input-side determination time (pre-delay)
    switch (cn.kind(static_cast<GateId>(id))) {
      case GateKind::kInput: {
        const std::uint32_t pos = cn.input_pos(static_cast<GateId>(id));
        out.value = input_at(pos);
        out.time_ps = input_times_ps != nullptr ? (*input_times_ps)[pos] : 0.0;
        continue;
      }
      case GateKind::kConst0:
        out = {false, kAlwaysSettled};
        continue;
      case GateKind::kConst1:
        out = {true, kAlwaysSettled};
        continue;
      case GateKind::kBuf: {
        const SignalState& in = states[fanins[fb]];
        value = in.value;
        determined = in.time_ps;
        break;
      }
      case GateKind::kNot: {
        const SignalState& in = states[fanins[fb]];
        value = !in.value;
        determined = in.time_ps;
        break;
      }
      case GateKind::kMux: {
        const SignalState& sel = states[fanins[fb]];
        const SignalState& d0 = states[fanins[fb + 1]];
        const SignalState& d1 = states[fanins[fb + 2]];
        const SignalState& chosen = sel.value ? d1 : d0;
        value = chosen.value;
        if (sel.time_ps == kAlwaysSettled) {
          // Static configuration select (PDL): pure data-path delay.
          determined = chosen.time_ps;
        } else if (d0.value == d1.value) {
          // Output independent of select; settled once both datas are.
          determined = std::max(d0.time_ps, d1.time_ps);
        } else {
          determined = std::max(sel.time_ps, chosen.time_ps);
        }
        break;
      }
      case GateKind::kAnd:
      case GateKind::kNand:
      case GateKind::kOr:
      case GateKind::kNor: {
        const GateKind kind = cn.kind(static_cast<GateId>(id));
        const bool controlling =
            (kind == GateKind::kOr || kind == GateKind::kNor);
        bool any_controlling = false;
        double earliest_controlling = 0.0;
        double latest = kAlwaysSettled;
        const std::uint32_t fe = fb + cn.fanin_count(static_cast<GateId>(id));
        for (std::uint32_t k = fb; k < fe; ++k) {
          const SignalState& in = states[fanins[k]];
          latest = std::max(latest, in.time_ps);
          if (in.value == controlling) {
            if (!any_controlling || in.time_ps < earliest_controlling) {
              earliest_controlling = in.time_ps;
            }
            any_controlling = true;
          }
        }
        const bool raw = any_controlling ? controlling : !controlling;
        const bool inverted =
            (kind == GateKind::kNand || kind == GateKind::kNor);
        value = inverted ? !raw : raw;
        determined = any_controlling ? earliest_controlling : latest;
        break;
      }
      case GateKind::kXor:
      case GateKind::kXnor: {
        bool v = (cn.kind(static_cast<GateId>(id)) == GateKind::kXnor);
        double latest = kAlwaysSettled;
        const std::uint32_t fe = fb + cn.fanin_count(static_cast<GateId>(id));
        for (std::uint32_t k = fb; k < fe; ++k) {
          const SignalState& in = states[fanins[k]];
          v = v != in.value;
          latest = std::max(latest, in.time_ps);
        }
        value = v;
        determined = latest;
        break;
      }
    }
    out.value = value;
    out.time_ps = determined + delay_of(id, value);
  }
}

void TimingSimulator::run(const support::BitVector& inputs,
                          const DelaySet& delays,
                          std::vector<SignalState>& states,
                          const std::vector<double>* input_times_ps) const {
  if (inputs.size() != net_->num_inputs()) {
    throw std::invalid_argument("TimingSimulator::run: wrong input count");
  }
  check_delay_count(delays.rise_ps.size(), delays.fall_ps.size());
  run_impl(
      [&inputs](std::size_t i) { return inputs.get(i); },
      [&delays](std::size_t id, bool value) {
        return value ? delays.rise_ps[id] : delays.fall_ps[id];
      },
      states, input_times_ps);
}

void TimingSimulator::run(const std::uint8_t* inputs, std::size_t count,
                          const DelaySet& delays,
                          std::vector<SignalState>& states,
                          const std::vector<double>* input_times_ps) const {
  if (count != net_->num_inputs()) {
    throw std::invalid_argument("TimingSimulator::run: wrong input count");
  }
  check_delay_count(delays.rise_ps.size(), delays.fall_ps.size());
  run_impl(
      [inputs](std::size_t i) { return inputs[i] != 0; },
      [&delays](std::size_t id, bool value) {
        return value ? delays.rise_ps[id] : delays.fall_ps[id];
      },
      states, input_times_ps);
}

void TimingSimulator::run(const std::vector<bool>& inputs,
                          const DelaySet& delays,
                          std::vector<SignalState>& states,
                          const std::vector<double>* input_times_ps) const {
  if (inputs.size() != net_->num_inputs()) {
    throw std::invalid_argument("TimingSimulator::run: wrong input count");
  }
  check_delay_count(delays.rise_ps.size(), delays.fall_ps.size());
  run_impl(
      [&inputs](std::size_t i) { return inputs[i]; },
      [&delays](std::size_t id, bool value) {
        return value ? delays.rise_ps[id] : delays.fall_ps[id];
      },
      states, input_times_ps);
}

void TimingSimulator::run(const support::BitVector& inputs,
                          const std::vector<double>& gate_delays_ps,
                          std::vector<SignalState>& states,
                          const std::vector<double>* input_times_ps) const {
  if (inputs.size() != net_->num_inputs()) {
    throw std::invalid_argument("TimingSimulator::run: wrong input count");
  }
  check_delay_count(gate_delays_ps.size(), gate_delays_ps.size());
  run_impl(
      [&inputs](std::size_t i) { return inputs.get(i); },
      [&gate_delays_ps](std::size_t id, bool) { return gate_delays_ps[id]; },
      states, input_times_ps);
}

void TimingSimulator::run(const std::vector<bool>& inputs,
                          const std::vector<double>& gate_delays_ps,
                          std::vector<SignalState>& states,
                          const std::vector<double>* input_times_ps) const {
  if (inputs.size() != net_->num_inputs()) {
    throw std::invalid_argument("TimingSimulator::run: wrong input count");
  }
  check_delay_count(gate_delays_ps.size(), gate_delays_ps.size());
  run_impl(
      [&inputs](std::size_t i) { return inputs[i]; },
      [&gate_delays_ps](std::size_t id, bool) { return gate_delays_ps[id]; },
      states, input_times_ps);
}

std::vector<SignalState> TimingSimulator::run(
    const std::vector<bool>& inputs,
    const std::vector<double>& gate_delays_ps) const {
  std::vector<SignalState> states;
  run(inputs, gate_delays_ps, states);
  return states;
}

// ----------------------------------------------------------- batch engine

template <typename LaneDelay>
void TimingSimulator::run_batch_impl(
    const std::uint8_t* inputs, std::size_t batch, LaneDelay&& delay_at,
    BatchState& out, const std::vector<double>* input_times_ps) const {
  const CompiledNetlist& cn = compiled_;
  const std::size_t n = cn.num_gates();
  const std::size_t B = batch;
  if (B == 0) {
    throw std::invalid_argument("run_batch: empty batch");
  }
  out.batch = B;
  // Every scheduled gate fully overwrites its lanes below, so only
  // inactive (non-cone) gates need explicit zeroes — re-zeroing the whole
  // n*B state per call would cost more bandwidth than the evaluation of
  // small batches.
  if (out.values.size() != n * B) {
    out.values.assign(n * B, 0);
    out.times_ps.assign(n * B, 0.0);
  } else if (cn.num_active() != n) {
    const std::uint8_t* const active = cn.active_mask().data();
    for (std::size_t g = 0; g < n; ++g) {
      if (active[g]) continue;
      std::fill_n(out.values.begin() + g * B, B, std::uint8_t{0});
      std::fill_n(out.times_ps.begin() + g * B, B, 0.0);
    }
  }
  out.scratch_a.resize(B);
  out.scratch_b.resize(B);

  std::uint8_t* const values = out.values.data();
  double* const times = out.times_ps.data();
  const GateId* const fanins = cn.fanins().data();

  for (const GateId g : cn.schedule()) {
    const std::size_t base = static_cast<std::size_t>(g) * B;
    std::uint8_t* const v = values + base;
    double* const t = times + base;
    const std::uint32_t fb = cn.fanin_begin(g);

    switch (cn.op(g)) {
      case BatchOp::kInput: {
        const std::uint32_t pos = cn.input_pos(g);
        const std::uint8_t* const src = inputs + pos * B;
        const double arrive =
            input_times_ps != nullptr ? (*input_times_ps)[pos] : 0.0;
        for (std::size_t b = 0; b < B; ++b) v[b] = src[b];
        for (std::size_t b = 0; b < B; ++b) t[b] = arrive;
        continue;
      }
      case BatchOp::kConst0:
        for (std::size_t b = 0; b < B; ++b) v[b] = 0;
        for (std::size_t b = 0; b < B; ++b) t[b] = kAlwaysSettled;
        continue;
      case BatchOp::kConst1:
        for (std::size_t b = 0; b < B; ++b) v[b] = 1;
        for (std::size_t b = 0; b < B; ++b) t[b] = kAlwaysSettled;
        continue;
      case BatchOp::kBuf:
      case BatchOp::kNot: {
        const std::size_t f = static_cast<std::size_t>(fanins[fb]) * B;
        const std::uint8_t* const va = values + f;
        const double* const ta = times + f;
        const std::uint8_t invert = cn.op(g) == BatchOp::kNot ? 1 : 0;
        const auto d = delay_at.bind(g);
        for (std::size_t b = 0; b < B; ++b) {
          const std::uint8_t val = va[b] ^ invert;
          v[b] = val;
          t[b] = ta[b] + d(b, val);
        }
        continue;
      }
      case BatchOp::kMux: {
        const std::size_t fs = static_cast<std::size_t>(fanins[fb]) * B;
        const std::size_t f0 = static_cast<std::size_t>(fanins[fb + 1]) * B;
        const std::size_t f1 = static_cast<std::size_t>(fanins[fb + 2]) * B;
        const std::uint8_t* const vs = values + fs;
        const double* const ts = times + fs;
        const std::uint8_t* const v0 = values + f0;
        const double* const t0 = times + f0;
        const std::uint8_t* const v1 = values + f1;
        const double* const t1 = times + f1;
        const auto d = delay_at.bind(g);
        for (std::size_t b = 0; b < B; ++b) {
          // Same three cases as the scalar engine, as selects over
          // unconditionally-loaded locals (see the kAnd2 comment).
          const std::uint8_t s = vs[b];
          const std::uint8_t y0 = v0[b];
          const std::uint8_t y1 = v1[b];
          const double xs = ts[b];
          const double x0 = t0[b];
          const double x1 = t1[b];
          const bool sel = s != 0;
          const std::uint8_t val = sel ? y1 : y0;
          const double chosen_t = sel ? x1 : x0;
          const double det =
              xs == kAlwaysSettled
                  ? chosen_t
                  : (y0 == y1 ? std::max(x0, x1) : std::max(xs, chosen_t));
          v[b] = val;
          t[b] = det + d(b, val);
        }
        continue;
      }
      case BatchOp::kAnd2:
      case BatchOp::kNand2:
      case BatchOp::kOr2:
      case BatchOp::kNor2: {
        const BatchOp op = cn.op(g);
        const bool controlling =
            (op == BatchOp::kOr2 || op == BatchOp::kNor2);
        const std::uint8_t invert =
            (op == BatchOp::kNand2 || op == BatchOp::kNor2) ? 1 : 0;
        const std::size_t f0 = static_cast<std::size_t>(fanins[fb]) * B;
        const std::size_t f1 = static_cast<std::size_t>(fanins[fb + 1]) * B;
        const std::uint8_t* __restrict const va = values + f0;
        const double* __restrict const ta = times + f0;
        const std::uint8_t* __restrict const vb = values + f1;
        const double* __restrict const tb = times + f1;
        std::uint8_t* __restrict const vo = v;
        double* __restrict const to = t;
        const std::uint8_t ctrl = controlling ? 1 : 0;
        const auto d = delay_at.bind(g);
        for (std::size_t b = 0; b < B; ++b) {
          // Branchless form of the scalar loop's dataflow (earliest
          // controlling input if any, else the latest input): controlling
          // inputs keep their time, others become +inf, then one min
          // against a max fallback.  Loads are hoisted into locals first —
          // GCC refuses to if-convert `cond ? mem[b] : const` (it sees a
          // conditional load), which silently kills vectorization.
          const std::uint8_t sa = va[b];
          const std::uint8_t sb = vb[b];
          const double xa = ta[b];
          const double xb = tb[b];
          const double ca = sa == ctrl ? xa : kInf;
          const double cb = sb == ctrl ? xb : kInf;
          const double m = std::min(ca, cb);
          const double det = m != kInf ? m : std::max(xa, xb);
          const std::uint8_t val =
              (controlling ? (sa | sb) : (sa & sb)) ^ invert;
          vo[b] = val;
          to[b] = det + d(b, val);
        }
        continue;
      }
      case BatchOp::kXor2:
      case BatchOp::kXnor2: {
        const std::uint8_t invert = cn.op(g) == BatchOp::kXnor2 ? 1 : 0;
        const std::size_t f0 = static_cast<std::size_t>(fanins[fb]) * B;
        const std::size_t f1 = static_cast<std::size_t>(fanins[fb + 1]) * B;
        const std::uint8_t* __restrict const va = values + f0;
        const double* __restrict const ta = times + f0;
        const std::uint8_t* __restrict const vb = values + f1;
        const double* __restrict const tb = times + f1;
        std::uint8_t* __restrict const vo = v;
        double* __restrict const to = t;
        const auto d = delay_at.bind(g);
        for (std::size_t b = 0; b < B; ++b) {
          const std::uint8_t val = va[b] ^ vb[b] ^ invert;
          vo[b] = val;
          to[b] = std::max(ta[b], tb[b]) + d(b, val);
        }
        continue;
      }
      case BatchOp::kAndN:
      case BatchOp::kNandN:
      case BatchOp::kOrN:
      case BatchOp::kNorN: {
        const BatchOp op = cn.op(g);
        const bool controlling = (op == BatchOp::kOrN || op == BatchOp::kNorN);
        const bool inverted = (op == BatchOp::kNandN || op == BatchOp::kNorN);
        const std::uint8_t ctrl = controlling ? 1 : 0;
        double* const latest = out.scratch_a.data();
        double* const earliest = out.scratch_b.data();  // +inf = none yet
        for (std::size_t b = 0; b < B; ++b) latest[b] = kAlwaysSettled;
        for (std::size_t b = 0; b < B; ++b) earliest[b] = kInf;
        const std::uint32_t fe = fb + cn.fanin_count(g);
        for (std::uint32_t k = fb; k < fe; ++k) {
          const std::size_t f = static_cast<std::size_t>(fanins[k]) * B;
          const std::uint8_t* const vi = values + f;
          const double* const ti = times + f;
          for (std::size_t b = 0; b < B; ++b) {
            const double x = ti[b];
            const double e = earliest[b];
            latest[b] = std::max(latest[b], x);
            earliest[b] = vi[b] == ctrl ? std::min(e, x) : e;
          }
        }
        const auto d = delay_at.bind(g);
        for (std::size_t b = 0; b < B; ++b) {
          const double e = earliest[b];
          const double l = latest[b];
          const bool any = e != kInf;
          const bool raw = any ? controlling : !controlling;
          const std::uint8_t val = (raw != inverted) ? 1 : 0;
          const double det = any ? e : l;
          v[b] = val;
          t[b] = det + d(b, val);
        }
        continue;
      }
      case BatchOp::kXorN:
      case BatchOp::kXnorN: {
        const std::uint8_t init = cn.op(g) == BatchOp::kXnorN ? 1 : 0;
        double* const latest = out.scratch_a.data();
        for (std::size_t b = 0; b < B; ++b) latest[b] = kAlwaysSettled;
        for (std::size_t b = 0; b < B; ++b) v[b] = init;
        const std::uint32_t fe = fb + cn.fanin_count(g);
        for (std::uint32_t k = fb; k < fe; ++k) {
          const std::size_t f = static_cast<std::size_t>(fanins[k]) * B;
          const std::uint8_t* const vi = values + f;
          const double* const ti = times + f;
          for (std::size_t b = 0; b < B; ++b) {
            v[b] ^= vi[b];
            latest[b] = std::max(latest[b], ti[b]);
          }
        }
        const auto d = delay_at.bind(g);
        for (std::size_t b = 0; b < B; ++b) {
          t[b] = latest[b] + d(b, v[b]);
        }
        continue;
      }
    }
  }
}

void TimingSimulator::run_batch(const std::uint8_t* inputs, std::size_t batch,
                                const DelaySet& delays, BatchState& out,
                                const std::vector<double>* input_times_ps) const {
  check_delay_count(delays.rise_ps.size(), delays.fall_ps.size());
  obs::Span span = trace_batch(batch, net_->num_gates());
  run_batch_impl(inputs, batch,
                 SharedDelayAt{delays.rise_ps.data(), delays.fall_ps.data()},
                 out, input_times_ps);
}

void TimingSimulator::run_batch(const std::uint8_t* inputs, std::size_t batch,
                                const BatchDelays& delays, BatchState& out,
                                const std::vector<double>* input_times_ps) const {
  if (delays.batch != batch ||
      delays.rise_ps.size() != net_->num_gates() * batch ||
      delays.fall_ps.size() != net_->num_gates() * batch) {
    throw std::invalid_argument("run_batch: wrong per-lane delay count");
  }
  obs::Span span = trace_batch(batch, net_->num_gates());
  run_batch_impl(
      inputs, batch,
      LaneDelayAt{delays.rise_ps.data(), delays.fall_ps.data(), batch}, out,
      input_times_ps);
}

}  // namespace pufatt::timingsim
