#include "timingsim/event_sim.hpp"

#include <queue>
#include <stdexcept>

namespace pufatt::timingsim {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;

namespace {

bool gate_function(const Gate& g, const std::vector<bool>& value) {
  switch (g.kind) {
    case GateKind::kInput:
    case GateKind::kConst0:
      return false;
    case GateKind::kConst1:
      return true;
    case GateKind::kBuf:
      return value[g.fanins[0]];
    case GateKind::kNot:
      return !value[g.fanins[0]];
    case GateKind::kMux:
      return value[g.fanins[0]] ? value[g.fanins[2]] : value[g.fanins[1]];
    case GateKind::kAnd:
    case GateKind::kNand: {
      bool v = true;
      for (const auto f : g.fanins) v = v && value[f];
      return g.kind == GateKind::kNand ? !v : v;
    }
    case GateKind::kOr:
    case GateKind::kNor: {
      bool v = false;
      for (const auto f : g.fanins) v = v || value[f];
      return g.kind == GateKind::kNor ? !v : v;
    }
    case GateKind::kXor:
    case GateKind::kXnor: {
      bool v = g.kind == GateKind::kXnor;
      for (const auto f : g.fanins) v = v != value[f];
      return v;
    }
  }
  return false;
}

struct Event {
  double time = 0.0;
  GateId gate = 0;
  bool value = false;
  std::uint64_t sequence = 0;  ///< tie-break for deterministic ordering

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return sequence > other.sequence;
  }
};

}  // namespace

EventSimulator::EventSimulator(const netlist::Netlist& net) : net_(&net) {
  fanouts_.resize(net.num_gates());
  const auto& gates = net.gates();
  for (GateId id = 0; id < gates.size(); ++id) {
    for (const auto f : gates[id].fanins) {
      fanouts_[f].push_back(id);
    }
  }
}

std::vector<EventState> EventSimulator::run(const std::vector<bool>& previous,
                                            const std::vector<bool>& next,
                                            const DelaySet& delays) const {
  const auto& gates = net_->gates();
  if (previous.size() != net_->num_inputs() ||
      next.size() != net_->num_inputs()) {
    throw std::invalid_argument("EventSimulator::run: wrong input count");
  }
  if (delays.rise_ps.size() != gates.size() ||
      delays.fall_ps.size() != gates.size()) {
    throw std::invalid_argument("EventSimulator::run: wrong delay count");
  }

  // Settle the circuit on the previous input vector (steady state).
  std::vector<bool> value(gates.size(), false);
  {
    std::size_t next_input = 0;
    for (GateId id = 0; id < gates.size(); ++id) {
      if (gates[id].kind == GateKind::kInput) {
        value[id] = previous[next_input++];
      } else {
        value[id] = gate_function(gates[id], value);
      }
    }
  }

  std::vector<EventState> states(gates.size());
  for (GateId id = 0; id < gates.size(); ++id) {
    states[id].value = value[id];
  }

  // Pending inertial event per gate: time of the scheduled change, or < 0.
  std::vector<double> pending_time(gates.size(), -1.0);
  std::vector<bool> pending_value(gates.size(), false);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::uint64_t sequence = 0;

  // Input transitions at t = 0.
  {
    std::size_t next_input = 0;
    for (GateId id = 0; id < gates.size(); ++id) {
      if (gates[id].kind != GateKind::kInput) continue;
      const bool nv = next[next_input++];
      if (nv != value[id]) {
        queue.push(Event{0.0, id, nv, sequence++});
      }
    }
  }

  auto evaluate_fanout = [&](GateId id, double now) {
    const bool target = gate_function(gates[id], value);
    if (pending_time[id] >= 0.0) {
      // An output change is already in flight.
      if (pending_value[id] == target) return;  // still heading there
      // Inertial cancellation: the inputs reverted before the output
      // could move.  Drop the pending change (the queued event will be
      // ignored because pending_time no longer matches).
      pending_time[id] = -1.0;
      if (target == value[id]) return;  // back to the current value: no event
    } else if (target == value[id]) {
      return;  // nothing to do
    }
    const double delay =
        target ? delays.rise_ps[id] : delays.fall_ps[id];
    const double when = now + delay;
    pending_time[id] = when;
    pending_value[id] = target;
    queue.push(Event{when, id, target, sequence++});
  };

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();
    const GateId id = event.gate;
    if (gates[id].kind == GateKind::kInput) {
      // Input transitions always fire.
      if (value[id] == event.value) continue;
    } else {
      // Stale or cancelled event?
      if (pending_time[id] != event.time || pending_value[id] != event.value) {
        continue;
      }
      pending_time[id] = -1.0;
      if (value[id] == event.value) continue;
    }
    value[id] = event.value;
    states[id].value = event.value;
    states[id].settle_ps = event.time;
    ++states[id].transitions;
    for (const auto out : fanouts_[id]) {
      evaluate_fanout(out, event.time);
    }
  }

  return states;
}

}  // namespace pufatt::timingsim
