#include "store/sharded_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "obs/metrics.hpp"
#include "support/faulty_file.hpp"
#include "support/fsyncutil.hpp"
#include "support/parallel.hpp"

namespace pufatt::store {

namespace {

namespace fs = std::filesystem;

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* data) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  return v;
}

}  // namespace

std::string ShardedVerifierStore::shard_dir(const std::string& dir,
                                            std::size_t shard) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04zu", shard);
  return dir + "/" + name;
}

std::string ShardedVerifierStore::manifest_path(const std::string& dir) {
  return dir + "/store.shards";
}

bool ShardedVerifierStore::read_manifest(const std::string& dir,
                                         std::size_t& shards) {
  const std::string path = manifest_path(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!fs::exists(path, ec)) return false;
    throw StoreError("cannot open store manifest " + path);
  }
  std::uint8_t bytes[sizeof(kManifestMagic) + 8];
  in.read(reinterpret_cast<char*>(bytes), sizeof(bytes));
  if (!in ||
      std::memcmp(bytes, kManifestMagic, sizeof(kManifestMagic)) != 0) {
    throw StoreError("bad store manifest magic: " + path);
  }
  if (get_u32(bytes + 8) != kManifestVersion) {
    throw StoreError("unsupported store manifest version: " + path);
  }
  const std::uint32_t count = get_u32(bytes + 12);
  if (count == 0 || count > kMaxStoreShards) {
    throw StoreError("store manifest shard count out of range: " + path);
  }
  shards = count;
  return true;
}

void ShardedVerifierStore::write_manifest(const std::string& dir,
                                          std::size_t shards) {
  if (shards == 0 || shards > kMaxStoreShards) {
    throw StoreError("shard count out of range for " + dir);
  }
  fs::create_directories(dir);
  const std::string path = manifest_path(dir);
  const std::string tmp = path + ".tmp";
  std::uint8_t bytes[sizeof(kManifestMagic) + 8];
  std::memcpy(bytes, kManifestMagic, sizeof(kManifestMagic));
  put_u32(bytes + 8, kManifestVersion);
  put_u32(bytes + 12, static_cast<std::uint32_t>(shards));

  std::FILE* out = support::io_fopen(tmp.c_str(), "wb");
  if (out == nullptr) throw StoreError("cannot open " + tmp);
  const bool wrote =
      support::io_fwrite(bytes, sizeof(bytes), out) == sizeof(bytes);
  const bool flushed = support::io_fflush(out) == 0;
  const bool synced = support::io_fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (!wrote || !flushed || !synced) {
    support::io_remove(tmp.c_str());
    throw StoreError("store manifest write failed: " + tmp);
  }
  if (support::io_rename(tmp.c_str(), path.c_str()) != 0) {
    support::io_remove(tmp.c_str());
    throw StoreError("cannot rename " + tmp + " -> " + path);
  }
  support::fsync_dir(dir);
}

std::unique_ptr<ShardedVerifierStore> ShardedVerifierStore::open(
    std::string dir, ShardedStoreOptions options) {
  std::size_t count = 0;
  if (read_manifest(dir, count)) {
    if (options.shards != 0 && options.shards != count) {
      // hash % N routing: opening with a different N would look up every
      // device in the wrong shard — refuse rather than "work", empty.
      throw StoreError("store at " + dir + " has " + std::to_string(count) +
                       " shards, but " + std::to_string(options.shards) +
                       " were requested");
    }
  } else {
    count = options.shards == 0 ? 1 : options.shards;
    // Manifest before shards: a crash in between leaves a manifest plus
    // empty shard directories, which the next open resumes unchanged.
    write_manifest(dir, count);
  }

  std::size_t threads = options.recovery_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  // Shards are fully independent, so recovery is embarrassingly parallel:
  // each block recovers one shard into its own preallocated slot.
  std::vector<std::unique_ptr<VerifierStore>> shards(count);
  support::parallel_blocks(
      count, 1, threads,
      [&](std::size_t k, std::size_t, std::size_t, std::size_t) {
        shards[k] = VerifierStore::open(shard_dir(dir, k), options.store);
      });

  return std::unique_ptr<ShardedVerifierStore>(
      new ShardedVerifierStore(std::move(dir), std::move(shards)));
}

ShardedVerifierStore::ShardedVerifierStore(
    std::string dir, std::vector<std::unique_ptr<VerifierStore>> shards)
    : dir_(std::move(dir)), shards_(std::move(shards)), view_(*this) {}

std::size_t ShardedVerifierStore::shard_of(
    const std::string& device_id) const {
  return service::stable_device_hash(device_id) % shards_.size();
}

VerifierStore& ShardedVerifierStore::shard_for(const std::string& device_id) {
  return *shards_[shard_of(device_id)];
}

const VerifierStore& ShardedVerifierStore::shard_for(
    const std::string& device_id) const {
  return *shards_[shard_of(device_id)];
}

bool ShardedVerifierStore::enroll(const std::string& device_id,
                                  core::EnrollmentRecord record) {
  return shard_for(device_id).enroll(device_id, std::move(record));
}

bool ShardedVerifierStore::evict(const std::string& device_id) {
  return shard_for(device_id).evict(device_id);
}

void ShardedVerifierStore::enroll_crps(const std::string& device_id,
                                       core::CrpDatabase db) {
  shard_for(device_id).enroll_crps(device_id, std::move(db));
}

std::optional<core::CrpDatabase::AuthResult>
ShardedVerifierStore::authenticate_crp(const std::string& device_id,
                                       const alupuf::AluPuf& device,
                                       support::Xoshiro256pp& rng,
                                       double threshold_fraction,
                                       const variation::Environment& env) {
  return shard_for(device_id).authenticate_crp(device_id, device, rng,
                                               threshold_fraction, env);
}

std::optional<std::size_t> ShardedVerifierStore::crp_remaining(
    const std::string& device_id) const {
  return shard_for(device_id).crp_remaining(device_id);
}

void ShardedVerifierStore::sync() {
  for (auto& shard : shards_) shard->sync();
}

void ShardedVerifierStore::compact() {
  for (auto& shard : shards_) shard->compact();
}

std::size_t ShardedVerifierStore::device_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->registry().size();
  return n;
}

std::size_t ShardedVerifierStore::total_crp_remaining() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->crp_ledger().total_remaining();
  return n;
}

void ShardedVerifierStore::publish_metrics(obs::MetricRegistry& registry) const {
  registry.gauge("store.shards").set(static_cast<double>(shards_.size()));
  char name[64];
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::snprintf(name, sizeof(name), "store.shard%04zu.devices", i);
    registry.gauge(name).set(
        static_cast<double>(shards_[i]->registry().size()));
    std::snprintf(name, sizeof(name), "store.shard%04zu.crp_remaining", i);
    registry.gauge(name).set(
        static_cast<double>(shards_[i]->crp_ledger().total_remaining()));
  }
}

}  // namespace pufatt::store
