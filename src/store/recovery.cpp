#include "store/recovery.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/serialize.hpp"
#include "store/records.hpp"
#include "support/faulty_file.hpp"
#include "support/fsyncutil.hpp"

namespace pufatt::store {

namespace {

namespace fs = std::filesystem;

void write_u32(std::ostream& out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(bytes, 4);
}

void write_u64(std::ostream& out, std::uint64_t v) {
  write_u32(out, static_cast<std::uint32_t>(v));
  write_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t read_u32(std::istream& in) {
  char bytes[4];
  in.read(bytes, 4);
  if (!in) throw StoreError("truncated snapshot");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  const std::uint64_t lo = read_u32(in);
  return lo | (static_cast<std::uint64_t>(read_u32(in)) << 32);
}

void load_snapshot(const std::string& path, RecoveredState& state,
                   std::size_t registry_shards) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StoreError("cannot open snapshot " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    throw StoreError("bad snapshot magic: " + path);
  }
  if (read_u32(in) != kSnapshotVersion) {
    throw StoreError("unsupported snapshot version: " + path);
  }
  state.stats.snapshot_watermark = read_u64(in);
  try {
    state.registry = service::DeviceRegistry::load_registry(in, registry_shards);
  } catch (const core::SerializationError& e) {
    throw StoreError(std::string("bad registry in snapshot: ") + e.what());
  }
  CrpLedger::load_into(in, *state.ledger);
}

}  // namespace

void replay_wal_record(const WalRecord& record,
                       service::DeviceRegistry& registry, CrpLedger& ledger) {
  try {
    switch (record.type) {
      case kEnroll: {
        auto payload = decode_enroll(record);
        registry.store(payload.device_id, std::move(payload.record));
        break;
      }
      case kEvict: {
        const std::string id = decode_evict(record);
        registry.evict(id);
        ledger.replay_erase(id);
        break;
      }
      case kCrpEnroll: {
        auto payload = decode_crp_enroll(record);
        ledger.replay_enroll(payload.device_id, std::move(payload.db));
        break;
      }
      case kCrpConsume: {
        const auto payload = decode_crp_consume(record);
        ledger.replay_consume(payload.device_id, payload.entry_index);
        break;
      }
      case kCheckpoint:
        break;
      default:
        throw StoreError("unknown WAL record type " +
                         std::to_string(record.type));
    }
  } catch (const StoreError& e) {
    // The CRC was fine, so the frame arrived intact but its *payload* is
    // nonsense — name the exact on-disk frame for the postmortem.
    throw StoreError(std::string(e.what()) + " (record from " +
                     wal_segment_file(record.origin_segment) + " at byte " +
                     std::to_string(record.origin_offset) + ")");
  }
}

std::string snapshot_path(const std::string& dir) {
  return dir + "/snapshot.bin";
}

bool read_snapshot_watermark(const std::string& path,
                             std::uint64_t& watermark) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!fs::exists(path, ec)) return false;
    throw StoreError("cannot open snapshot " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    throw StoreError("bad snapshot magic: " + path);
  }
  if (read_u32(in) != kSnapshotVersion) {
    throw StoreError("unsupported snapshot version: " + path);
  }
  watermark = read_u64(in);
  return true;
}

RecoveredState recover(const std::string& dir, std::size_t registry_shards,
                       CrpLedger::Options ledger_options) {
  RecoveredState state(registry_shards);
  state.ledger =
      std::make_unique<CrpLedger>(nullptr, std::move(ledger_options));

  const std::string snap = snapshot_path(dir);
  std::error_code ec;
  if (fs::exists(snap, ec)) {
    state.stats.snapshot_present = true;
    state.stats.snapshot_bytes = fs::file_size(snap);
    load_snapshot(snap, state, registry_shards);
  }

  // The WAL tail: only segments above the snapshot's watermark.  Segments
  // at or below it were folded — if they still exist, a crash interrupted
  // compaction between the rename and the segment deletion, and replaying
  // them against this (newer) snapshot would be wrong, not just redundant.
  WalReadResult wal;
  if (fs::exists(dir, ec)) {
    wal = read_wal(dir, state.stats.snapshot_watermark);
  }
  state.stats.wal_segments = wal.segments;
  state.stats.wal_segments_skipped = wal.segments_skipped;
  state.stats.wal_bytes = wal.bytes;
  state.stats.torn_tail = wal.torn_tail;
  for (const auto& record : wal.records) {
    replay_wal_record(record, state.registry, *state.ledger);
    ++state.stats.records_replayed;
    ++state.stats.records_by_type[record.type];
  }

  state.stats.devices = state.registry.size();
  state.stats.crp_devices = state.ledger->device_count();
  state.stats.crp_remaining = state.ledger->total_remaining();
  return state;
}

void write_snapshot(const std::string& dir,
                    const service::DeviceRegistry& registry,
                    const CrpLedger& ledger, std::uint64_t wal_watermark) {
  fs::create_directories(dir);
  const std::string path = snapshot_path(dir);
  const std::string tmp = path + ".tmp";

  // Serialize into memory first, then push the bytes through the
  // fault-injectable io_* ops: one buffer, one write, every failure mode
  // (short write, fsync EIO, torn rename) observable and tested.
  std::ostringstream buffer(std::ios::binary);
  buffer.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  write_u32(buffer, kSnapshotVersion);
  write_u64(buffer, wal_watermark);
  registry.save(buffer);
  ledger.save(buffer);
  const std::string bytes = buffer.str();

  std::FILE* out = support::io_fopen(tmp.c_str(), "wb");
  if (out == nullptr) throw StoreError("cannot open " + tmp);
  const bool wrote =
      support::io_fwrite(bytes.data(), bytes.size(), out) == bytes.size();
  const bool flushed = support::io_fflush(out) == 0;
  // The temp file's bytes must be durable before the rename makes them
  // the snapshot — otherwise a crash could expose a named-but-torn file.
  // This fsync is *checked*: ignoring its failure would publish a
  // snapshot whose durability is unknown, then delete the WAL segments
  // that could have rebuilt it.
  const bool synced = support::io_fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (!wrote || !flushed || !synced) {
    support::io_remove(tmp.c_str());
    throw StoreError("snapshot write failed: " + tmp);
  }
  if (support::io_rename(tmp.c_str(), path.c_str()) != 0) {
    support::io_remove(tmp.c_str());
    throw StoreError("cannot rename " + tmp + " -> " + path);
  }
  support::fsync_dir(dir);
}

}  // namespace pufatt::store
