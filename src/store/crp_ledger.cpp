#include "store/crp_ledger.hpp"

#include <istream>
#include <ostream>
#include <utility>

#include "core/serialize.hpp"
#include "store/records.hpp"
#include "store/wal.hpp"

namespace pufatt::store {

namespace {

constexpr std::uint32_t kLedgerMagic = 0x47444C50;  // "PLDG"
constexpr std::uint32_t kLedgerVersion = 1;
constexpr std::uint32_t kMaxLedgerDevices = 1u << 20;

void write_u32(std::ostream& out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(bytes, 4);
}

std::uint32_t read_u32(std::istream& in) {
  char bytes[4];
  in.read(bytes, 4);
  if (!in) throw StoreError("truncated CRP ledger");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

CrpLedger::CrpLedger(WalWriter* wal, Options options)
    : wal_(wal), options_(std::move(options)) {}

void CrpLedger::enroll(const std::string& device_id, core::CrpDatabase db) {
  // Log-before-apply: the enrollment is in the WAL buffer before the
  // in-memory map ever serves it.
  if (wal_ != nullptr) {
    wal_->append(kCrpEnroll, encode_crp_enroll(device_id, db));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Slot slot;
  slot.db = std::move(db);
  slot.low_notified = slot.db.remaining() <= options_.low_watermark;
  slots_.insert_or_assign(device_id, std::move(slot));
}

bool CrpLedger::erase(const std::string& device_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.erase(device_id) > 0;
}

std::optional<CrpLedger::LowWatermark> CrpLedger::check_watermark_locked(
    const std::string& device_id) {
  auto it = slots_.find(device_id);
  if (it == slots_.end()) return std::nullopt;
  const std::size_t remaining = it->second.db.remaining();
  if (remaining > options_.low_watermark) {
    it->second.low_notified = false;  // replenished: re-arm
    return std::nullopt;
  }
  if (it->second.low_notified || !options_.on_low) return std::nullopt;
  it->second.low_notified = true;
  return LowWatermark{device_id, remaining};
}

std::optional<core::CrpDatabase::AuthResult> CrpLedger::authenticate(
    const std::string& device_id, const alupuf::AluPuf& device,
    support::Xoshiro256pp& rng, double threshold_fraction,
    const variation::Environment& env,
    std::optional<LowWatermark>* low_out) {
  std::optional<core::CrpDatabase::AuthResult> result;
  std::optional<LowWatermark> low;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(device_id);
    if (it == slots_.end()) return std::nullopt;
    // The entry authenticate() will spend is the one at the cursor; record
    // its index before the call so the marker names exactly that entry.
    const std::size_t spent_index = it->second.db.consumed();
    result = it->second.db.authenticate(device, rng, threshold_fraction, env);
    if (result->conclusive() && wal_ != nullptr) {
      // Marker before the result escapes this function: an accepted
      // verdict is never observable without its consumption logged.
      wal_->append(kCrpConsume, encode_crp_consume(device_id, spent_index));
    }
    if (result->conclusive()) low = check_watermark_locked(device_id);
  }
  if (low_out != nullptr) {
    // The caller holds an outer lock of its own (the VerifierStore
    // facade): hand the notification over so it fires only after that
    // lock is released — never inline, where a replenishing hook would
    // re-enter the facade and self-deadlock.
    *low_out = std::move(low);
  } else if (low) {
    // Outside the ledger lock: the hook may re-enter enroll() directly.
    options_.on_low(low->device_id, low->remaining);
  }
  return result;
}

std::optional<std::size_t> CrpLedger::remaining(
    const std::string& device_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(device_id);
  if (it == slots_.end()) return std::nullopt;
  return it->second.db.remaining();
}

bool CrpLedger::contains(const std::string& device_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.count(device_id) > 0;
}

std::size_t CrpLedger::device_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

std::size_t CrpLedger::total_remaining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [id, slot] : slots_) total += slot.db.remaining();
  return total;
}

std::vector<std::string> CrpLedger::device_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(slots_.size());
  for (const auto& [id, slot] : slots_) ids.push_back(id);
  return ids;  // std::map iteration order: already sorted
}

void CrpLedger::replay_enroll(const std::string& device_id,
                              core::CrpDatabase db) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot slot;
  slot.db = std::move(db);
  slot.low_notified = slot.db.remaining() <= options_.low_watermark;
  slots_.insert_or_assign(device_id, std::move(slot));
}

void CrpLedger::replay_erase(const std::string& device_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.erase(device_id);
}

void CrpLedger::replay_consume(const std::string& device_id,
                               std::uint64_t entry_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(device_id);
  if (it == slots_.end()) {
    throw StoreError("WAL consume marker for a device with no CRP database: " +
                     device_id);
  }
  try {
    it->second.db.mark_consumed_through(static_cast<std::size_t>(entry_index));
  } catch (const std::out_of_range&) {
    throw StoreError("WAL consume marker past the database for " + device_id);
  }
  it->second.low_notified =
      it->second.db.remaining() <= options_.low_watermark;
}

void CrpLedger::save(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  write_u32(out, kLedgerMagic);
  write_u32(out, kLedgerVersion);
  write_u32(out, static_cast<std::uint32_t>(slots_.size()));
  for (const auto& [id, slot] : slots_) {  // sorted: byte-stable
    write_u32(out, static_cast<std::uint32_t>(id.size()));
    out.write(id.data(), static_cast<std::streamsize>(id.size()));
    slot.db.save(out);
  }
  if (!out) throw StoreError("CRP ledger write failed");
}

void CrpLedger::load_into(std::istream& in, CrpLedger& ledger) {
  if (read_u32(in) != kLedgerMagic) throw StoreError("bad CRP ledger magic");
  if (read_u32(in) != kLedgerVersion) {
    throw StoreError("unsupported CRP ledger version");
  }
  const std::uint32_t count = read_u32(in);
  if (count > kMaxLedgerDevices) {
    throw StoreError("CRP ledger device count exceeds sanity bound");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = read_u32(in);
    if (len > kMaxDeviceIdBytes) {
      throw StoreError("CRP ledger device id exceeds sanity bound");
    }
    std::string id(len, '\0');
    in.read(id.data(), static_cast<std::streamsize>(len));
    if (!in) throw StoreError("truncated CRP ledger");
    core::CrpDatabase db;
    try {
      db = core::CrpDatabase::load(in);
    } catch (const core::SerializationError& e) {
      throw StoreError(std::string("bad CRP database in ledger: ") + e.what());
    }
    ledger.replay_enroll(id, std::move(db));
  }
}

}  // namespace pufatt::store
