#include "store/verifier_store.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/records.hpp"

namespace pufatt::store {

namespace {

/// Same geometry as the store.wal.* histograms (the registry binds a name
/// to one scale; all store.* latencies share this one).
const support::LogScale& store_scale() {
  static const support::LogScale scale{1.0, 4.0, 10};
  return scale;
}

}  // namespace

std::unique_ptr<VerifierStore> VerifierStore::open(std::string dir,
                                                   StoreOptions options) {
  obs::Span span;
  if (obs::global_trace_enabled()) {
    span = obs::global_tracer().span("store.recover");
  }
  // Recovery reads the files before WalWriter (constructed inside the
  // VerifierStore) truncates the torn tail; both apply the same clean-
  // prefix rule, so they agree on where the log ends.
  RecoveredState state = recover(dir, options.registry_shards, options.crp);
  // The writer must never number a fresh segment at or below the
  // snapshot's watermark (recovery would skip its records) and deletes
  // any stale folded segments an interrupted compaction left behind.
  options.wal.min_segment_index =
      std::max<std::uint64_t>(options.wal.min_segment_index,
                              state.stats.snapshot_watermark + 1);
  if (span.active()) {
    span.note("records", static_cast<double>(state.stats.records_replayed));
    span.note("devices", static_cast<double>(state.stats.devices));
  }
  return std::unique_ptr<VerifierStore>(
      new VerifierStore(std::move(dir), std::move(options), std::move(state)));
}

VerifierStore::VerifierStore(std::string dir, StoreOptions options,
                             RecoveredState state)
    : dir_(std::move(dir)),
      options_(std::move(options)),
      wal_(dir_, options_.wal),
      registry_(std::move(state.registry)),
      ledger_(std::move(state.ledger)),
      recovery_stats_(std::move(state.stats)),
      enrolls_(obs::global_registry().counter("store.enrolls")),
      evictions_(obs::global_registry().counter("store.evictions")),
      crp_auths_(obs::global_registry().counter("store.crp_auths")),
      compactions_(obs::global_registry().counter("store.compactions")),
      compact_us_(obs::global_registry().histogram("store.compact_us",
                                                   store_scale())) {
  ledger_->attach_wal(&wal_);
}

bool VerifierStore::enroll(const std::string& device_id,
                           core::EnrollmentRecord record) {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  wal_.append(kEnroll, encode_enroll(device_id, record));
  enrolls_.add();
  return registry_.store(device_id, std::move(record));
}

bool VerifierStore::evict(const std::string& device_id) {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  if (!registry_.contains(device_id) && !ledger_->contains(device_id)) {
    return false;  // nothing to forget; keep the WAL free of noise
  }
  wal_.append(kEvict, encode_evict(device_id));
  evictions_.add();
  registry_.evict(device_id);
  ledger_->erase(device_id);
  return true;
}

void VerifierStore::enroll_crps(const std::string& device_id,
                                core::CrpDatabase db) {
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  // CrpLedger::enroll logs the kCrpEnroll record itself (log-before-apply).
  ledger_->enroll(device_id, std::move(db));
}

std::optional<core::CrpDatabase::AuthResult> VerifierStore::authenticate_crp(
    const std::string& device_id, const alupuf::AluPuf& device,
    support::Xoshiro256pp& rng, double threshold_fraction,
    const variation::Environment& env) {
  std::optional<core::CrpDatabase::AuthResult> result;
  std::optional<CrpLedger::LowWatermark> low;
  {
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    crp_auths_.add();
    result = ledger_->authenticate(device_id, device, rng, threshold_fraction,
                                   env, &low);
  }
  // The replenish hook fires only after the shared lock is released: it
  // may call straight back into enroll_crps() (an exclusive locker on the
  // same mutex), which would self-deadlock if invoked under the lock.
  if (low && options_.crp.on_low) {
    options_.crp.on_low(low->device_id, low->remaining);
  }
  return result;
}

void VerifierStore::sync() { wal_.sync(); }

void VerifierStore::compact() {
  const std::uint64_t t0 = obs::monotonic_ns();
  obs::Span span;
  if (obs::global_trace_enabled()) {
    span = obs::global_tracer().span("store.compaction");
  }
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  // Under the exclusive lock the in-memory state covers every WAL record,
  // so the order below is crash-safe at each step: before the rename the
  // old snapshot + the segments above *its* watermark still recover; after
  // it the new snapshot's watermark (the just-synced current segment)
  // makes recovery skip every folded segment, deleted or not — stale
  // leftovers of an interrupted deletion are never replayed.
  wal_.sync();
  write_snapshot(dir_, registry_, *ledger_, wal_.current_segment_index());
  wal_.restart_segments();
  compactions_.add();
  const double us =
      static_cast<double>(obs::monotonic_ns() - t0) / 1000.0;
  compact_us_.record(us);
  if (span.active()) {
    span.note("devices", static_cast<double>(registry_.size()));
  }
}

std::optional<std::size_t> VerifierStore::crp_remaining(
    const std::string& device_id) const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return ledger_->remaining(device_id);
}

}  // namespace pufatt::store
