// Crash recovery: snapshot + WAL tail → verifier state.
//
// The store's durable state is (snapshot, WAL).  The snapshot records a
// *WAL-segment watermark*: the highest segment index it folded.  Recovery
// loads the snapshot, then replays only segments *above* the watermark —
// segments at or below it are skipped unread.  That is what makes
// compaction crash-safe: the snapshot is written atomically (temp file +
// fsync + rename + directory fsync), and a crash *between* the rename and
// the WAL segment deletion leaves stale folded segments that recovery
// ignores and the next WalWriter open deletes.  Skipping — rather than
// relying on idempotent re-replay of the whole tail — matters because a
// stale tail is not always harmless to re-apply: a leftover consume
// marker could reference a database the snapshot has since replaced, and
// a leftover enroll could resurrect an evicted device.  (Each record type
// still replays idempotently, see store/records.hpp — defense in depth,
// and what keeps replay of the genuinely-live tail order-insensitive to
// how often recovery runs.)
//
// Snapshot layout:  "PFATSNP1" | version (u32) | WAL watermark (u64)
//                   | DeviceRegistry::save bytes | CrpLedger::save bytes
// Both embedded blobs are self-delimiting with their own magic, so the
// snapshot needs no internal length fields; any malformed byte stream
// surfaces as StoreError.
//
// Recovery order: load snapshot (or start empty), then replay every WAL
// record above the watermark, oldest segment first.  The WAL reader's
// torn-tail rule applies: a truncated final record is the clean shutdown
// point (reported in stats, not fatal); mid-log corruption throws.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "service/device_registry.hpp"
#include "store/crp_ledger.hpp"
#include "store/wal.hpp"

namespace pufatt::store {

inline constexpr char kSnapshotMagic[8] = {'P', 'F', 'A', 'T',
                                           'S', 'N', 'P', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// The snapshot file inside a store directory.
std::string snapshot_path(const std::string& dir);

/// Reads just the WAL watermark from the snapshot header at `path`.
/// Returns false when the file does not exist; throws StoreError when it
/// exists but the header is malformed.  Replication uses this to compare
/// a primary's snapshot against a follower's without loading either.
bool read_snapshot_watermark(const std::string& path,
                             std::uint64_t& watermark);

/// Applies one WAL record to warm state — the shared replay primitive of
/// crash recovery and the replication apply path.  Each record type is
/// idempotent (enroll overwrites, evict/erase tolerate absence, consume
/// is max-advance).  Throws StoreError on an unknown type or malformed
/// payload, naming the record's origin segment and byte offset.
void replay_wal_record(const WalRecord& record,
                       service::DeviceRegistry& registry, CrpLedger& ledger);

/// What recovery saw; store-inspect prints exactly this.
struct RecoveryStats {
  bool snapshot_present = false;
  std::uint64_t snapshot_bytes = 0;
  /// Highest WAL segment index the snapshot folded; 0 without a snapshot.
  /// Segments at or below it are skipped, the WalWriter resumes above it.
  std::uint64_t snapshot_watermark = 0;
  std::size_t wal_segments = 0;     ///< segments replayed
  std::size_t wal_segments_skipped = 0;  ///< stale (at/below watermark)
  std::uint64_t wal_bytes = 0;
  bool torn_tail = false;           ///< final record truncated (tolerated)
  std::size_t records_replayed = 0;
  std::map<std::uint32_t, std::size_t> records_by_type;
  std::size_t devices = 0;          ///< registry size after recovery
  std::size_t crp_devices = 0;      ///< devices holding a CRP database
  std::size_t crp_remaining = 0;    ///< unused CRP entries fleet-wide
};

struct RecoveredState {
  service::DeviceRegistry registry;
  /// Rebuilt with a null WAL; the caller attaches the live writer
  /// (CrpLedger::attach_wal) before serving traffic.
  std::unique_ptr<CrpLedger> ledger;
  RecoveryStats stats;

  explicit RecoveredState(std::size_t registry_shards)
      : registry(registry_shards) {}
};

/// Rebuilds registry + ledger from `dir` (snapshot, if any, then the WAL
/// tail).  A missing directory or an empty one recovers to empty state.
/// Throws StoreError on corruption.
RecoveredState recover(const std::string& dir, std::size_t registry_shards = 16,
                       CrpLedger::Options ledger_options = {});

/// Atomically persists the snapshot: writes `snapshot.bin.tmp`, fsyncs it,
/// renames over `snapshot.bin`, fsyncs the directory.  A crash at any
/// point leaves either the old complete snapshot or the new one.
/// `wal_watermark` is the highest WAL segment index this state covers
/// (recovery will skip segments at or below it); callers compacting a
/// live store pass the writer's current segment index *after* syncing it.
void write_snapshot(const std::string& dir,
                    const service::DeviceRegistry& registry,
                    const CrpLedger& ledger, std::uint64_t wal_watermark);

}  // namespace pufatt::store
