// The durable verifier store: one directory holding everything a verifier
// must not forget across a crash.
//
//   <dir>/wal-NNNNNNNN.log   append-only mutation log (store/wal)
//   <dir>/snapshot.bin       periodic compaction of the log (store/recovery)
//
// Every mutation — device enrollment, eviction, CRP provisioning, CRP
// consumption — is appended to the WAL before (or atomically with) its
// in-memory application, so the live DeviceRegistry and CrpLedger are
// always reconstructible as snapshot + WAL replay.  open() performs that
// reconstruction; compact() folds the WAL into a fresh snapshot and
// restarts the log.
//
// Durability is batched: appends become durable at the next sync() —
// explicit, every `wal.sync_every` appends, or via the VerifierPool drain
// barrier (register sync() as PoolConfig.on_drain, so a drained pool
// implies every consume marker its jobs produced is on disk).
//
// Concurrency: CRP authentication (the hot path) runs under the ledger's
// own lock and takes only a shared state lock here; enrollment, eviction
// and compaction are exclusive — which both keeps WAL order identical to
// apply order for registry mutations and guarantees compact() snapshots a
// state at least as new as every record it deletes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>

#include "core/crp_database.hpp"
#include "core/enrollment.hpp"
#include "service/device_registry.hpp"
#include "store/crp_ledger.hpp"
#include "store/recovery.hpp"
#include "store/wal.hpp"

namespace pufatt::obs {
class Counter;
class LogHistogram;
}  // namespace pufatt::obs

namespace pufatt::store {

struct StoreOptions {
  WalOptions wal;
  std::size_t registry_shards = 16;
  CrpLedger::Options crp;  ///< depletion watermark + replenish hook
};

class VerifierStore {
 public:
  /// Opens (creating if empty) the store at `dir`: recovers registry and
  /// ledger from snapshot + WAL, truncates any torn tail, and resumes
  /// logging.  Throws StoreError on corruption.
  static std::unique_ptr<VerifierStore> open(std::string dir,
                                             StoreOptions options = {});

  VerifierStore(const VerifierStore&) = delete;
  VerifierStore& operator=(const VerifierStore&) = delete;

  // --- logged mutations -----------------------------------------------------

  /// Enrolls (or re-enrolls) a device.  Returns false when the id was
  /// already present (the record is replaced either way).
  bool enroll(const std::string& device_id, core::EnrollmentRecord record);

  /// De-registers a device and drops its CRP database (one kEvict record
  /// covers both).  Returns false when the id was unknown everywhere.
  bool evict(const std::string& device_id);

  /// Provisions (or replaces) a device's single-use CRP database.
  void enroll_crps(const std::string& device_id, core::CrpDatabase db);

  /// CRP authentication with durable consumption (see CrpLedger).
  /// nullopt when the device has no database.  A depletion-watermark
  /// crossing fires StoreOptions.crp.on_low on this thread *after* the
  /// store's shared lock is released, so the hook may replenish by
  /// calling straight back into enroll_crps().
  std::optional<core::CrpDatabase::AuthResult> authenticate_crp(
      const std::string& device_id, const alupuf::AluPuf& device,
      support::Xoshiro256pp& rng, double threshold_fraction = 0.22,
      const variation::Environment& env = variation::Environment::nominal());

  // --- durability -----------------------------------------------------------

  /// Group commit: everything appended so far is on disk when this
  /// returns.  The natural PoolConfig.on_drain registrant.
  void sync();

  /// Folds the whole WAL into a fresh snapshot (atomic temp+rename) and
  /// restarts the log.  Exclusive with every mutation; crash-safe at any
  /// instant (see store/recovery.hpp).
  void compact();

  // --- views ----------------------------------------------------------------

  std::optional<std::size_t> crp_remaining(const std::string& device_id) const;

  /// The live registry (wire an EmulatorCache to it).  Mutate only through
  /// the store, or the WAL will not know.
  const service::DeviceRegistry& registry() const { return registry_; }
  const CrpLedger& crp_ledger() const { return *ledger_; }
  const WalWriter& wal() const { return wal_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  const std::string& dir() const { return dir_; }

 private:
  VerifierStore(std::string dir, StoreOptions options, RecoveredState state);

  const std::string dir_;
  StoreOptions options_;

  /// Shared: CRP authentication.  Exclusive: enroll/evict/enroll_crps
  /// (keeps WAL order == apply order) and compact (quiesces everything).
  mutable std::shared_mutex state_mutex_;
  WalWriter wal_;
  service::DeviceRegistry registry_;
  std::unique_ptr<CrpLedger> ledger_;
  RecoveryStats recovery_stats_;

  obs::Counter& enrolls_;
  obs::Counter& evictions_;
  obs::Counter& crp_auths_;
  obs::Counter& compactions_;
  obs::LogHistogram& compact_us_;
};

}  // namespace pufatt::store
