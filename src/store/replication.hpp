// Primary → follower WAL shipping and promote-and-replay failover.
//
// The replication unit is the *file*, not the record: a follower is a
// byte-for-byte copy of the primary's durable state (snapshot + clean WAL
// prefix), grown by appending each segment's newly-clean bytes — the
// verified frame prefix past the follower's cursor — to the follower's
// copy of the same-named segment.  Because the follower's directory is an
// ordinary store directory, failover needs no special code path:
// promote() simply runs standard crash recovery on it, and the result is
// byte-identical to what recovering the primary at the same watermark
// would produce.  Everything PR-5 proved about recovery (torn-tail
// truncation, watermark skipping, idempotent replay, no CRP
// double-consume or resurrection) transfers to failover for free.
//
// Shipping protocol, per ship() call:
//
//   1. Snapshot catch-up.  If the primary's snapshot watermark advanced
//      past the follower's (the primary compacted), atomically copy the
//      snapshot over (temp + fsync + rename), drop follower segments the
//      watermark folded, and rebuild the follower's warm state from its
//      own directory.
//   2. Tail shipping.  For each primary segment past the cursor, append
//      the newly-verified bytes ([cursor, valid_bytes) per
//      read_segment_delta) to the follower's segment — fsynced before the
//      cursor advances — and apply the contained records idempotently to
//      the follower's warm in-memory state (`applied_through`).
//
// The cursor itself is never persisted: it is re-derived from a scan of
// the follower directory on construction (truncating any torn tail a
// crashed ship left), so a crashed or poisoned follower heals by being
// rebuilt — the directory is always the truth, exactly as for the store.
//
// A ship() that fails mid-append (short write, fsync EIO) poisons the
// follower: the directory may now end in a torn tail the in-memory
// cursor knows nothing about, so every later ship() throws and the
// owner constructs a fresh follower (which heals by scanning).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/sharded_store.hpp"
#include "store/verifier_store.hpp"

namespace pufatt::obs {
class Counter;
class Gauge;
}  // namespace pufatt::obs

namespace pufatt::store {

/// Where a follower stands relative to its primary; store-replicate
/// prints exactly this.
struct ReplicationStatus {
  std::uint64_t snapshot_watermark = 0;  ///< follower's snapshot watermark
  std::uint64_t segment = 0;             ///< cursor: segment being shipped
  std::uint64_t offset = 0;              ///< cursor: clean bytes of it held
  /// applied_through: records applied into the follower's warm state —
  /// everything its directory holds beyond its snapshot.
  std::uint64_t applied_records = 0;
  std::uint64_t shipped_bytes = 0;       ///< raw WAL bytes copied (total)
  std::uint64_t snapshot_copies = 0;     ///< compaction catch-ups taken
  /// Staleness at the *start* of the last ship(): primary clean bytes the
  /// follower had not yet durably held.  0 after a ship of a quiesced
  /// primary; also exported as the store.repl.lag_bytes gauge.
  std::uint64_t lag_bytes = 0;
};

/// Replicates one store directory (a single VerifierStore, or one shard
/// of a sharded store) into `follower_dir`.
class ShardFollower {
 public:
  /// Attaches to `primary_dir` and scans `follower_dir` (creating it if
  /// missing): recovers warm state from what was already shipped and
  /// truncates any torn tail a crashed ship left behind.  Throws
  /// StoreError if either directory is corrupt.
  ShardFollower(std::string primary_dir, std::string follower_dir,
                CrpLedger::Options ledger_options = {});

  ShardFollower(const ShardFollower&) = delete;
  ShardFollower& operator=(const ShardFollower&) = delete;

  /// One shipping round: snapshot catch-up, then tail shipping (see the
  /// protocol above).  Safe to call while the primary is live; bytes past
  /// a torn (in-flight) final frame simply wait for the next round.
  /// Throws StoreError on corruption or shipping I/O failure — after
  /// which the follower is poisoned and must be reconstructed.
  ReplicationStatus ship();

  ReplicationStatus status() const { return status_; }

  /// Failover: recovers a live store from the follower directory — byte-
  /// identical to recovering the primary at the shipped watermark.  Call
  /// ship() immediately before for the freshest possible tail.  The
  /// follower is consumed: every later ship() throws.
  std::unique_ptr<VerifierStore> promote(StoreOptions options = {});

  const std::string& primary_dir() const { return primary_dir_; }
  const std::string& follower_dir() const { return follower_dir_; }

 private:
  void rescan_follower_locked();
  void require_live() const;

  const std::string primary_dir_;
  const std::string follower_dir_;
  CrpLedger::Options ledger_options_;

  bool poisoned_ = false;
  bool promoted_ = false;
  ReplicationStatus status_;

  /// Warm mirror of the follower directory, for status and for applying
  /// shipped records without a full re-recovery per round.
  service::DeviceRegistry registry_;
  std::unique_ptr<CrpLedger> ledger_;

  obs::Counter& ships_;
  obs::Counter& shipped_bytes_;
  obs::Counter& applied_records_;
  obs::Counter& snapshot_copies_;
  obs::Gauge& lag_bytes_;
};

/// Replica of a whole sharded store: one ShardFollower per shard, plus
/// the manifest copy that makes the follower directory a valid sharded
/// store in its own right.
class StoreReplica {
 public:
  /// `primary_dir` must hold a sharded-store manifest.  The follower
  /// manifest is created (or checked) to match.
  StoreReplica(std::string primary_dir, std::string follower_dir,
               CrpLedger::Options ledger_options = {});

  StoreReplica(const StoreReplica&) = delete;
  StoreReplica& operator=(const StoreReplica&) = delete;

  std::size_t shard_count() const { return followers_.size(); }
  ShardFollower& follower(std::size_t shard) { return *followers_[shard]; }

  /// Ships every shard; returns per-shard status (indexed by shard).
  std::vector<ReplicationStatus> ship();

  /// Fails over a single shard (the unit failure actually arrives in).
  std::unique_ptr<VerifierStore> promote_shard(std::size_t shard,
                                               StoreOptions options = {});

  /// Fails over the whole store: final ship, then opens the follower
  /// directory as a ShardedVerifierStore.  The replica is consumed.
  std::unique_ptr<ShardedVerifierStore> promote(
      ShardedStoreOptions options = {});

  const std::string& follower_dir() const { return follower_dir_; }

 private:
  const std::string primary_dir_;
  const std::string follower_dir_;
  std::vector<std::unique_ptr<ShardFollower>> followers_;
};

}  // namespace pufatt::store
