// Typed WAL record payloads for the verifier store.
//
// The WAL layer (store/wal) moves opaque CRC-framed byte strings; this
// layer gives them meaning.  Five record types cover every durable state
// mutation a verifier makes:
//
//   kEnroll      device enrolled/re-enrolled: id + full EnrollmentRecord
//   kEvict       device de-registered: id only
//   kCrpEnroll   a CRP database provisioned for a device: id + full DB
//   kCrpConsume  one CRP entry spent: id + *absolute* entry index
//   kCheckpoint  zero-payload marker (store-inspect bookkeeping)
//
// Replay of each type is idempotent: enroll is last-wins insert, evict of
// an absent id is a no-op, and a consume marker carries the absolute
// index so it is applied as "advance cursor to at least index+1"
// (CrpDatabase::mark_consumed_through) rather than "consume one more" —
// replaying it twice moves nothing.  Note this is defense in depth, not
// the compaction-safety mechanism: recovery never replays segments a
// snapshot has folded (it skips everything at or below the snapshot's
// WAL watermark, see store/recovery.hpp), because a stale folded record
// can be *wrong* to re-apply against newer state, not merely redundant.
//
// String payload framing: [u32 id_len][id bytes][type-specific body], all
// little-endian, matching the core/serialize discipline; decoders throw
// StoreError on any malformed payload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/crp_database.hpp"
#include "core/enrollment.hpp"
#include "store/wal.hpp"

namespace pufatt::store {

enum RecordType : std::uint32_t {
  kEnroll = 1,
  kEvict = 2,
  kCrpEnroll = 3,
  kCrpConsume = 4,
  kCheckpoint = 5,
};

/// Human-readable name for store-inspect ("enroll", "evict", ...);
/// "unknown" for types this build does not know.
const char* record_type_name(std::uint32_t type);

/// Device ids inside records are bounded so a corrupt length field cannot
/// drive a multi-gigabyte allocation before the CRC even gets checked.
inline constexpr std::size_t kMaxDeviceIdBytes = 4096;

std::string encode_enroll(const std::string& device_id,
                          const core::EnrollmentRecord& record);
std::string encode_evict(const std::string& device_id);
std::string encode_crp_enroll(const std::string& device_id,
                              const core::CrpDatabase& db);
std::string encode_crp_consume(const std::string& device_id,
                               std::uint64_t entry_index);

struct EnrollPayload {
  std::string device_id;
  core::EnrollmentRecord record;
};

struct CrpEnrollPayload {
  std::string device_id;
  core::CrpDatabase db;
};

struct CrpConsumePayload {
  std::string device_id;
  std::uint64_t entry_index = 0;
};

/// Decoders for the corresponding encode_* payloads.  Throw StoreError on
/// any malformed body (bad length, trailing bytes, nested
/// SerializationError from the embedded record/database).
EnrollPayload decode_enroll(const WalRecord& record);
std::string decode_evict(const WalRecord& record);
CrpEnrollPayload decode_crp_enroll(const WalRecord& record);
CrpConsumePayload decode_crp_consume(const WalRecord& record);

}  // namespace pufatt::store
