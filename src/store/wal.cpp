#include "store/wal.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/serialize.hpp"  // crc32
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/faulty_file.hpp"
#include "support/fsyncutil.hpp"

namespace pufatt::store {

namespace {

namespace fs = std::filesystem;

/// Shared geometry of every store.* latency histogram: 1 us first edge,
/// ×4 per bucket, 10 buckets (≈ up to 262 ms, unbounded tail above).
const support::LogScale& store_scale() {
  static const support::LogScale scale{1.0, 4.0, 10};
  return scale;
}

double us_since(std::uint64_t start_ns) {
  return static_cast<double>(obs::monotonic_ns() - start_ns) / 1000.0;
}

/// "<path> at byte <off>" — every frame-level corruption error carries
/// the segment path and frame offset so a refused-to-open store is
/// diagnosable from the exception alone.
std::string at_byte(const std::string& path, std::uint64_t off) {
  return path + " at byte " + std::to_string(off);
}

/// Parses "wal-NNNNNNNN.log"; returns false on any other filename.
bool parse_segment_index(const std::string& name, std::uint64_t& index) {
  if (name.size() != 16 || name.rfind("wal-", 0) != 0 ||
      name.substr(12) != ".log") {
    return false;
  }
  index = 0;
  for (std::size_t i = 4; i < 12; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    index = index * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return true;
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* data) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* data) {
  return static_cast<std::uint64_t>(get_u32(data)) |
         (static_cast<std::uint64_t>(get_u32(data + 4)) << 32);
}

struct SegmentScan {
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;  ///< clean prefix length (header included)
  bool torn = false;              ///< only ever true for the final segment
};

std::vector<std::uint8_t> slurp_segment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StoreError("cannot open WAL segment " + path);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

/// Frame-parse loop shared by full-segment recovery scans and incremental
/// replication scans: walks frames from `off`, extending `scan.valid_bytes`
/// past each verified frame.  `tolerate_torn` selects whether a short
/// frame at the end is a clean cut point (final segment / live shipping)
/// or corruption; complete-but-corrupt frames always throw, with the
/// segment path and frame byte offset in the message.
void parse_frames(const std::vector<std::uint8_t>& bytes, std::size_t off,
                  const std::string& path, std::uint64_t segment_index,
                  bool tolerate_torn, bool collect, SegmentScan& scan) {
  scan.valid_bytes = off;
  while (off < bytes.size()) {
    const std::size_t remaining = bytes.size() - off;
    if (remaining < kRecordOverheadBytes) {
      if (!tolerate_torn) {
        throw StoreError("truncated record in non-final WAL segment: " +
                         at_byte(path, off));
      }
      scan.torn = true;
      break;
    }
    if (get_u32(bytes.data() + off) != kRecordMagic) {
      throw StoreError("bad WAL record magic (corrupt log): " +
                       at_byte(path, off));
    }
    const std::uint32_t type = get_u32(bytes.data() + off + 4);
    const std::uint32_t len = get_u32(bytes.data() + off + 8);
    if (len > kMaxRecordPayload) {
      throw StoreError("WAL record payload exceeds sanity bound: " +
                       at_byte(path, off));
    }
    const std::size_t need = kRecordOverheadBytes + len;
    if (remaining < need) {
      if (!tolerate_torn) {
        throw StoreError("truncated record in non-final WAL segment: " +
                         at_byte(path, off));
      }
      scan.torn = true;  // crash mid-append: the clean shutdown point
      break;
    }
    const std::uint32_t stored = get_u32(bytes.data() + off + 12 + len);
    if (core::crc32(bytes.data() + off, 12 + len) != stored) {
      throw StoreError("WAL record CRC mismatch (corrupt log): " +
                       at_byte(path, off));
    }
    if (collect) {
      WalRecord record;
      record.type = type;
      record.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(off + 12),
                            bytes.begin() +
                                static_cast<std::ptrdiff_t>(off + 12 + len));
      record.origin_segment = segment_index;
      record.origin_offset = off;
      scan.records.push_back(std::move(record));
    }
    off += need;
    scan.valid_bytes = off;
  }
}

/// Validates the 16-byte segment header against the index the filename
/// claims.  Returns false for the tolerated short-final-segment case
/// (crash between creation and the header landing), throws on mismatch.
bool check_segment_header(const std::vector<std::uint8_t>& bytes,
                          const std::string& path, std::uint64_t expect_index,
                          bool final_segment, SegmentScan& scan) {
  if (bytes.size() < kSegmentHeaderBytes) {
    if (!final_segment) {
      throw StoreError("WAL segment header truncated: " + path);
    }
    scan.torn = !bytes.empty();
    return false;
  }
  if (std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    throw StoreError("bad WAL segment magic: " + path);
  }
  if (get_u64(bytes.data() + 8) != expect_index) {
    throw StoreError("WAL segment index does not match filename: " + path);
  }
  return true;
}

/// Applies the torn-tail rule to one segment.  `final_segment` selects
/// whether a short read at the end is a clean shutdown point (accepted)
/// or corruption (thrown); everything else throws identically.
SegmentScan scan_segment(const std::string& path, std::uint64_t expect_index,
                         bool final_segment, bool collect) {
  const auto bytes = slurp_segment(path);
  SegmentScan scan;
  if (!check_segment_header(bytes, path, expect_index, final_segment, scan)) {
    return scan;
  }
  parse_frames(bytes, kSegmentHeaderBytes, path, expect_index,
               /*tolerate_torn=*/final_segment, collect, scan);
  return scan;
}

}  // namespace

std::string wal_segment_file(std::uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu.log",
                static_cast<unsigned long long>(index));
  return name;
}

WalSegmentDelta read_segment_delta(const std::string& path,
                                   std::uint64_t expect_index,
                                   std::uint64_t from) {
  const auto bytes = slurp_segment(path);
  if (from > bytes.size()) {
    // The cursor claims more clean bytes than the segment holds — the
    // source regressed (or the cursor is from another life).  Shipping
    // from here would misframe every later record; fail closed.
    throw StoreError("WAL shipping cursor past end of segment: " +
                     at_byte(path, from));
  }
  SegmentScan scan;
  WalSegmentDelta delta;
  if (!check_segment_header(bytes, path, expect_index, /*final_segment=*/true,
                            scan)) {
    // Headerless (just-created) segment: nothing shippable yet.
    delta.torn = scan.torn;
    return delta;
  }
  const std::size_t start =
      from < kSegmentHeaderBytes ? kSegmentHeaderBytes
                                 : static_cast<std::size_t>(from);
  parse_frames(bytes, start, path, expect_index, /*tolerate_torn=*/true,
               /*collect=*/true, scan);
  delta.records = std::move(scan.records);
  delta.valid_bytes = scan.valid_bytes;
  delta.torn = scan.torn;
  // Raw bytes start at `from`, not `start`: a cursor of 0 means the
  // follower has no copy of this segment yet and needs the header too.
  delta.bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(from),
                     bytes.begin() +
                         static_cast<std::ptrdiff_t>(scan.valid_bytes));
  return delta;
}

std::vector<std::string> wal_segment_paths(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::uint64_t index = 0;
    if (entry.is_regular_file() &&
        parse_segment_index(entry.path().filename().string(), index)) {
      found.emplace_back(index, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  for (std::size_t i = 1; i < found.size(); ++i) {
    if (found[i].first == found[i - 1].first) {
      throw StoreError("duplicate WAL segment index in " + dir);
    }
  }
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [index, path] : found) paths.push_back(std::move(path));
  return paths;
}

WalReadResult read_wal(const std::string& dir,
                       std::uint64_t skip_through_index) {
  WalReadResult result;
  const auto paths = wal_segment_paths(dir);
  std::uint64_t prev_index = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::uint64_t index = 0;
    parse_segment_index(fs::path(paths[i]).filename().string(), index);
    if (index <= skip_through_index) {
      // Folded into the snapshot whose watermark the caller passed; may be
      // a stale leftover of an interrupted compaction.  Never replayed.
      ++result.segments_skipped;
      continue;
    }
    // Rotation, restart_segments, and compaction all produce consecutive
    // surviving indices, so a gap here is a vanished segment — silently
    // lost records, not something replay may paper over.
    const std::uint64_t expect_after =
        result.segments == 0 ? skip_through_index : prev_index;
    if (expect_after != 0 && index != expect_after + 1) {
      throw StoreError("missing WAL segment in " + dir + ": expected " +
                       wal_segment_file(expect_after + 1) + ", found " +
                       wal_segment_file(index));
    }
    prev_index = index;
    ++result.segments;
    // Indices sort with the paths, so the last path is also the last
    // surviving segment — the only one the torn-tail rule applies to.
    const bool final_segment = i + 1 == paths.size();
    auto scan = scan_segment(paths[i], index, final_segment, /*collect=*/true);
    result.bytes += fs::file_size(paths[i]);
    if (final_segment) {
      result.torn_tail = scan.torn;
      result.tail_valid_bytes = scan.valid_bytes;
    }
    for (auto& record : scan.records) {
      result.records.push_back(std::move(record));
    }
  }
  return result;
}

WalWriter::WalWriter(std::string dir, const WalOptions& options)
    : dir_(std::move(dir)),
      options_(options),
      appends_(obs::global_registry().counter("store.wal.appends")),
      append_bytes_(obs::global_registry().counter("store.wal.append_bytes")),
      syncs_(obs::global_registry().counter("store.wal.syncs")),
      rotations_(obs::global_registry().counter("store.wal.rotations")),
      append_us_(obs::global_registry().histogram("store.wal.append_us",
                                                  store_scale())),
      sync_us_(obs::global_registry().histogram("store.wal.sync_us",
                                                store_scale())) {
  fs::create_directories(dir_);
  std::vector<std::string> paths;
  bool deleted_stale = false;
  for (auto& path : wal_segment_paths(dir_)) {
    std::uint64_t index = 0;
    parse_segment_index(fs::path(path).filename().string(), index);
    if (index < options_.min_segment_index) {
      // Below the snapshot watermark: folded, possibly a stale leftover of
      // an interrupted compaction whose deletion never finished.  Recovery
      // already skipped it; finish the deletion now.
      support::io_remove(path.c_str());
      deleted_stale = true;
      continue;
    }
    paths.push_back(std::move(path));
  }
  if (deleted_stale) support::fsync_dir(dir_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (paths.empty()) {
    open_segment_locked(options_.min_segment_index);
    return;
  }
  // Resume: validate the tail segment and truncate any torn append away,
  // so new records extend the clean prefix.
  std::uint64_t index = 0;
  parse_segment_index(fs::path(paths.back()).filename().string(), index);
  const auto scan =
      scan_segment(paths.back(), index, /*final_segment=*/true,
                   /*collect=*/false);
  if (scan.valid_bytes < kSegmentHeaderBytes) {
    // Crash before the header landed: rewrite the segment from scratch.
    open_segment_locked(index);
    return;
  }
  fs::resize_file(paths.back(), scan.valid_bytes);
  file_ = support::io_fopen(paths.back().c_str(), "ab");
  if (file_ == nullptr) {
    throw StoreError("cannot reopen WAL segment " + paths.back());
  }
  segment_index_ = index;
  segment_bytes_ = scan.valid_bytes;
}

WalWriter::~WalWriter() {
  std::lock_guard<std::mutex> lock(mutex_);
  try {
    if (file_ != nullptr) sync_locked();
  } catch (const StoreError&) {
    // Destructor must not throw; the data at risk is only the unsynced
    // tail, which the torn-tail reader rule already tolerates.
  }
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void WalWriter::require_open_locked() const {
  if (file_ == nullptr) {
    // A failed rotation (open_segment_locked threw) leaves no current
    // segment; refuse cleanly instead of fwrite/fileno on a null stream.
    throw StoreError("WAL writer failed (no open segment) in " + dir_);
  }
}

void WalWriter::open_segment_locked(std::uint64_t index) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string path = dir_ + "/" + wal_segment_file(index);
  file_ = support::io_fopen(path.c_str(), "wb");
  if (file_ == nullptr) throw StoreError("cannot create WAL segment " + path);
  std::uint8_t header[kSegmentHeaderBytes];
  std::memcpy(header, kSegmentMagic, sizeof(kSegmentMagic));
  put_u32(header + 8, static_cast<std::uint32_t>(index));
  put_u32(header + 12, static_cast<std::uint32_t>(index >> 32));
  if (support::io_fwrite(header, sizeof(header), file_) != sizeof(header)) {
    // Never leave a half-headed segment behind as the current file: later
    // appends would land after the partial header and the reader would
    // misclassify them as a torn tail (silent data loss).
    std::fclose(file_);
    file_ = nullptr;
    support::io_remove(path.c_str());
    throw StoreError("cannot write WAL segment header: " + path);
  }
  segment_index_ = index;
  segment_bytes_ = kSegmentHeaderBytes;
  support::fsync_dir(dir_);
}

void WalWriter::rotate_if_needed_locked() {
  if (segment_bytes_ < options_.segment_bytes) return;
  // The finished segment must be fully durable before its successor
  // exists, or recovery could see new-segment records without old ones.
  sync_locked();
  open_segment_locked(segment_index_ + 1);
  rotations_.add();
}

void WalWriter::sync_locked() {
  require_open_locked();
  const std::uint64_t t0 = obs::monotonic_ns();
  obs::Span span;
  if (obs::global_trace_enabled()) {
    span = obs::global_tracer().span("store.fsync");
    span.note("pending", static_cast<double>(unsynced_));
  }
  if (support::io_fflush(file_) != 0 ||
      support::io_fsync(::fileno(file_)) != 0) {
    // fsyncgate: after a failed fsync the kernel may have dropped the
    // dirty pages, so "what is durable" is unknowable.  Fail closed —
    // poison the writer rather than carry on as if durability held.
    std::fclose(file_);
    file_ = nullptr;
    throw StoreError("WAL fsync failed in " + dir_);
  }
  unsynced_ = 0;
  syncs_.add();
  sync_us_.record(us_since(t0));
}

std::uint64_t WalWriter::append(std::uint32_t type,
                                const std::uint8_t* payload,
                                std::size_t size) {
  if (size > kMaxRecordPayload) {
    throw StoreError("WAL record payload exceeds sanity bound");
  }
  const std::uint64_t t0 = obs::monotonic_ns();
  obs::Span span;
  if (obs::global_trace_enabled()) {
    span = obs::global_tracer().span("store.append");
    span.note("bytes", static_cast<double>(size));
  }

  std::vector<std::uint8_t> frame(kRecordOverheadBytes + size);
  put_u32(frame.data(), kRecordMagic);
  put_u32(frame.data() + 4, type);
  put_u32(frame.data() + 8, static_cast<std::uint32_t>(size));
  if (size > 0) std::memcpy(frame.data() + 12, payload, size);
  put_u32(frame.data() + 12 + size, core::crc32(frame.data(), 12 + size));

  std::lock_guard<std::mutex> lock(mutex_);
  require_open_locked();
  rotate_if_needed_locked();
  if (support::io_fwrite(frame.data(), frame.size(), file_) != frame.size()) {
    // The stream now holds a partial frame; appending after it would bury
    // mid-segment garbage that reads back as hard corruption.  Close (the
    // partial frame becomes an ordinary torn tail) and poison the writer.
    std::fclose(file_);
    file_ = nullptr;
    throw StoreError("WAL append failed in " + dir_);
  }
  segment_bytes_ += frame.size();
  bytes_ += frame.size();
  const std::uint64_t ordinal = records_++;
  ++unsynced_;
  if (options_.sync_every > 0 && unsynced_ >= options_.sync_every) {
    sync_locked();
  }
  appends_.add();
  append_bytes_.add(frame.size());
  append_us_.record(us_since(t0));
  return ordinal;
}

std::uint64_t WalWriter::append(std::uint32_t type,
                                const std::string& payload) {
  return append(type, reinterpret_cast<const std::uint8_t*>(payload.data()),
                payload.size());
}

void WalWriter::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
}

void WalWriter::restart_segments() {
  std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
  std::fclose(file_);
  file_ = nullptr;
  const std::uint64_t next = segment_index_ + 1;
  for (const auto& path : wal_segment_paths(dir_)) {
    support::io_remove(path.c_str());
  }
  open_segment_locked(next);
}

std::uint64_t WalWriter::appended_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::uint64_t WalWriter::appended_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::uint64_t WalWriter::current_segment_index() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segment_index_;
}

}  // namespace pufatt::store
