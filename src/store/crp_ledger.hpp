// Durable per-device CRP consumption accounting.
//
// A single-use CRP database (core/crp_database, the paper's verification
// option 1) is only replay-proof if *consumption survives restart*: a
// verifier that forgets which entries it spent will happily accept a
// recorded response the second time.  The ledger closes that hole by
// writing a kCrpConsume marker to the WAL for every entry an
// authentication spends, before the result is returned to the caller —
// after recovery, remaining() picks up exactly where the crashed process
// left off and spent entries stay spent.
//
// Markers carry the *absolute* entry index, so replay is idempotent
// (mark_consumed_through is a max-advance): recovering from a snapshot
// that already folded some markers, then replaying the full WAL tail,
// lands on the same cursor.
//
// Depletion watermark: a single-use database is a wasting asset.  When a
// consume leaves a device at or below `low_watermark` remaining entries,
// the `on_low` hook fires (once per depletion episode) — the integration
// point for a re-enrollment/replenish pipeline.  Re-enrolling above the
// watermark re-arms the hook.
//
// Thread-safe; the hook is invoked outside the ledger lock so it may call
// back into enroll() to replenish — but only when the ledger is used
// directly.  A caller that wraps the ledger under its own lock (the
// VerifierStore facade) passes `low_out` to authenticate() and fires the
// hook itself after releasing that lock; if the ledger fired it inline,
// a hook replenishing through the facade would re-enter the facade's
// lock from the same thread and self-deadlock, and replenishing via the
// ledger directly would bypass the facade's WAL-order == apply-order
// exclusion.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/crp_database.hpp"

namespace pufatt::store {

class WalWriter;

class CrpLedger {
 public:
  struct Options {
    /// Fire on_low when a consume leaves remaining() <= this.
    std::size_t low_watermark = 2;
    /// Replenish hook: (device_id, remaining entries).  Called outside the
    /// ledger lock, on the authenticating thread — by the ledger itself,
    /// or by the facade that owns it (see the header comment).
    std::function<void(const std::string&, std::size_t)> on_low;
  };

  /// A pending depletion notification: authenticate() hands it to callers
  /// that must fire on_low only after releasing their own outer lock.
  struct LowWatermark {
    std::string device_id;
    std::size_t remaining = 0;
  };

  /// `wal` may be null (inspection / offline replay: nothing is logged);
  /// when set it must outlive the ledger.
  explicit CrpLedger(WalWriter* wal) : CrpLedger(wal, Options()) {}
  CrpLedger(WalWriter* wal, Options options);

  /// Recovery wire-up: a ledger is rebuilt with no WAL (replay must not
  /// re-log what it replays), then attached to the live writer before any
  /// concurrent use.  Not thread-safe against in-flight operations.
  void attach_wal(WalWriter* wal) { wal_ = wal; }

  CrpLedger(const CrpLedger&) = delete;
  CrpLedger& operator=(const CrpLedger&) = delete;

  /// Provisions (or replaces) a device's database; logs a kCrpEnroll
  /// record carrying the full database.
  void enroll(const std::string& device_id, core::CrpDatabase db);

  /// Drops a device's database (paired with registry eviction); the evict
  /// WAL record is the registry's, so this logs nothing.  No-op when absent.
  bool erase(const std::string& device_id);

  /// Authenticates against the device's database, logging the consume
  /// marker before returning, so an accepted result is never observable
  /// without its consumption being (at least) in the WAL buffer.
  /// nullopt when the device has no database.
  ///
  /// When `low_out` is null and this consume crosses the depletion
  /// watermark, on_low fires inline (outside the ledger lock) before
  /// returning.  When `low_out` is non-null the hook is NOT invoked;
  /// the pending notification is stored there instead and the caller must
  /// fire it after releasing any outer lock of its own.
  std::optional<core::CrpDatabase::AuthResult> authenticate(
      const std::string& device_id, const alupuf::AluPuf& device,
      support::Xoshiro256pp& rng, double threshold_fraction = 0.22,
      const variation::Environment& env = variation::Environment::nominal(),
      std::optional<LowWatermark>* low_out = nullptr);

  /// nullopt when the device has no database.
  std::optional<std::size_t> remaining(const std::string& device_id) const;
  bool contains(const std::string& device_id) const;
  std::size_t device_count() const;
  /// Sum of remaining() over every device (store-inspect summary).
  std::size_t total_remaining() const;
  std::vector<std::string> device_ids() const;  ///< sorted

  // --- replay (recovery path: mutate state without logging) -----------------

  void replay_enroll(const std::string& device_id, core::CrpDatabase db);
  void replay_erase(const std::string& device_id);
  /// Applies a consume marker; unknown device or out-of-range index is
  /// corruption (the WAL recorded a consume the state cannot explain).
  void replay_consume(const std::string& device_id, std::uint64_t entry_index);

  // --- persistence (snapshot embedding) -------------------------------------

  /// Byte-stable: devices sorted by id, each database via CrpDatabase::save
  /// (cursor included).
  void save(std::ostream& out) const;
  /// Throws StoreError on malformed input.
  static void load_into(std::istream& in, CrpLedger& ledger);

 private:
  /// Returns the pending low-watermark notification, if the consume that
  /// the caller just performed crossed it.  Caller holds mutex_.
  std::optional<LowWatermark> check_watermark_locked(
      const std::string& device_id);

  struct Slot {
    core::CrpDatabase db;
    bool low_notified = false;  ///< one on_low per depletion episode
  };

  WalWriter* wal_;
  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, Slot> slots_;  ///< ordered: save() iterates sorted
};

}  // namespace pufatt::store
