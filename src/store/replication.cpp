#include "store/replication.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/metrics.hpp"
#include "store/recovery.hpp"
#include "support/faulty_file.hpp"
#include "support/fsyncutil.hpp"

namespace pufatt::store {

namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StoreError("cannot open " + path);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

std::uint64_t parse_u64(const std::uint8_t* data) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[i]) << (8 * i);
  return v;
}

/// Validates an in-memory snapshot image's header and returns its WAL
/// watermark.  Parsing the *slurped bytes* (not the file twice) keeps the
/// copy and its watermark consistent even if the primary compacts between
/// our reads: whatever complete snapshot we slurped is the one we ship.
std::uint64_t snapshot_image_watermark(const std::vector<std::uint8_t>& bytes,
                                       const std::string& path) {
  if (bytes.size() < 20 ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    throw StoreError("bad snapshot magic: " + path);
  }
  return parse_u64(bytes.data() + 12);
}

/// Atomic file publish via the fault-injectable ops: temp + write +
/// fsync + rename + parent-dir fsync.  Shared by the snapshot copy.
void publish_file(const std::string& path,
                  const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* out = support::io_fopen(tmp.c_str(), "wb");
  if (out == nullptr) throw StoreError("cannot open " + tmp);
  const bool wrote =
      support::io_fwrite(bytes.data(), bytes.size(), out) == bytes.size();
  const bool flushed = support::io_fflush(out) == 0;
  const bool synced = support::io_fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (!wrote || !flushed || !synced) {
    support::io_remove(tmp.c_str());
    throw StoreError("replication copy failed: " + tmp);
  }
  if (support::io_rename(tmp.c_str(), path.c_str()) != 0) {
    support::io_remove(tmp.c_str());
    throw StoreError("cannot rename " + tmp + " -> " + path);
  }
  support::fsync_parent_dir(path);
}

std::uint64_t segment_index_of(const std::string& path) {
  // wal_segment_paths only returns parseable names, so this cannot fail.
  const std::string name = fs::path(path).filename().string();
  std::uint64_t index = 0;
  for (std::size_t i = 4; i < 12; ++i) {
    index = index * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return index;
}

}  // namespace

ShardFollower::ShardFollower(std::string primary_dir, std::string follower_dir,
                             CrpLedger::Options ledger_options)
    : primary_dir_(std::move(primary_dir)),
      follower_dir_(std::move(follower_dir)),
      ledger_options_(std::move(ledger_options)),
      registry_(1),
      ships_(obs::global_registry().counter("store.repl.ships")),
      shipped_bytes_(obs::global_registry().counter("store.repl.shipped_bytes")),
      applied_records_(
          obs::global_registry().counter("store.repl.applied_records")),
      snapshot_copies_(
          obs::global_registry().counter("store.repl.snapshot_copies")),
      lag_bytes_(obs::global_registry().gauge("store.repl.lag_bytes")) {
  fs::create_directories(follower_dir_);
  rescan_follower_locked();
}

void ShardFollower::require_live() const {
  if (promoted_) {
    throw StoreError("follower of " + primary_dir_ + " was promoted");
  }
  if (poisoned_) {
    throw StoreError("follower of " + primary_dir_ +
                     " failed mid-ship; rebuild it (the directory heals on "
                     "the next construction)");
  }
}

void ShardFollower::rescan_follower_locked() {
  // The directory is the truth: recover warm state from it, then derive
  // the shipping cursor from the last segment's clean prefix, truncating
  // any torn tail a crashed (or injected-fault) ship left behind.
  auto state = recover(follower_dir_, /*registry_shards=*/16, ledger_options_);
  registry_ = std::move(state.registry);
  ledger_ = std::move(state.ledger);
  status_.snapshot_watermark = state.stats.snapshot_watermark;
  status_.applied_records = state.stats.records_replayed;
  status_.segment = 0;
  status_.offset = 0;
  const auto paths = wal_segment_paths(follower_dir_);
  if (!paths.empty()) {
    const std::uint64_t index = segment_index_of(paths.back());
    const auto delta = read_segment_delta(paths.back(), index, 0);
    if (delta.torn) {
      fs::resize_file(paths.back(), delta.valid_bytes);
    }
    status_.segment = index;
    status_.offset = delta.valid_bytes;
  }
}

ReplicationStatus ShardFollower::ship() {
  require_live();

  // A live primary can compact *between* our watermark check and the
  // segment scan, making cursor segments vanish mid-round.  That is the
  // one benign race; one retry re-enters through snapshot catch-up.
  for (int attempt = 0;; ++attempt) {
    // --- 1. snapshot catch-up -----------------------------------------------
    const std::string primary_snap = snapshot_path(primary_dir_);
    std::error_code ec;
    if (fs::exists(primary_snap, ec)) {
      const auto image = slurp(primary_snap);
      const std::uint64_t watermark =
          snapshot_image_watermark(image, primary_snap);
      if (watermark > status_.snapshot_watermark) {
        publish_file(snapshot_path(follower_dir_), image);
        for (const auto& path : wal_segment_paths(follower_dir_)) {
          if (segment_index_of(path) <= watermark) {
            support::io_remove(path.c_str());
          }
        }
        support::fsync_dir(follower_dir_);
        rescan_follower_locked();
        snapshot_copies_.add();
        ++status_.snapshot_copies;
      }
    }

    // --- 2. tail shipping ---------------------------------------------------
    std::uint64_t round_bytes = 0;
    bool created_file = false;
    bool raced_compaction = false;
    for (const auto& primary_path : wal_segment_paths(primary_dir_)) {
      const std::uint64_t index = segment_index_of(primary_path);
      if (index <= status_.snapshot_watermark) continue;
      if (status_.segment != 0 && index < status_.segment) continue;
      if (status_.segment != 0 && index > status_.segment + 1 &&
          status_.offset != 0) {
        // The segment after the cursor vanished: compaction raced us.
        raced_compaction = true;
        break;
      }
      const std::uint64_t from =
          index == status_.segment ? status_.offset : 0;
      WalSegmentDelta delta;
      try {
        delta = read_segment_delta(primary_path, index, from);
      } catch (const StoreError&) {
        if (!fs::exists(primary_path, ec)) {
          raced_compaction = true;
          break;
        }
        throw;
      }
      if (!delta.bytes.empty()) {
        const std::string follower_path =
            follower_dir_ + "/" + wal_segment_file(index);
        if (from > 0) {
          // The cursor was derived from this very file; a size mismatch
          // means someone else wrote the follower directory.
          if (!fs::exists(follower_path, ec) ||
              fs::file_size(follower_path) != from) {
            poisoned_ = true;
            throw StoreError("follower segment diverged from cursor: " +
                             follower_path);
          }
        } else {
          created_file = true;
        }
        std::FILE* out =
            support::io_fopen(follower_path.c_str(), from > 0 ? "ab" : "wb");
        if (out == nullptr) {
          poisoned_ = true;
          throw StoreError("cannot open follower segment " + follower_path);
        }
        const bool wrote =
            support::io_fwrite(delta.bytes.data(), delta.bytes.size(), out) ==
            delta.bytes.size();
        const bool flushed = support::io_fflush(out) == 0;
        // Checked: the cursor must never run ahead of what the follower
        // holds durably, or a crash would silently lose shipped records.
        const bool synced = support::io_fsync(::fileno(out)) == 0;
        std::fclose(out);
        if (!wrote || !flushed || !synced) {
          // The follower file may now end in a torn frame this cursor
          // knows nothing about; only a rescan (fresh construction) may
          // touch this directory again.
          poisoned_ = true;
          throw StoreError("WAL shipping failed: " + follower_path);
        }
        for (const auto& record : delta.records) {
          replay_wal_record(record, registry_, *ledger_);
        }
        applied_records_.add(delta.records.size());
        status_.applied_records += delta.records.size();
        round_bytes += delta.bytes.size();
      }
      status_.segment = index;
      status_.offset = delta.valid_bytes;
    }
    if (raced_compaction) {
      if (attempt >= 2) {
        throw StoreError("primary " + primary_dir_ +
                         " kept compacting segments out from under the "
                         "shipping cursor");
      }
      continue;
    }
    if (created_file) support::fsync_dir(follower_dir_);

    status_.shipped_bytes += round_bytes;
    status_.lag_bytes = round_bytes;
    ships_.add();
    shipped_bytes_.add(round_bytes);
    lag_bytes_.set(static_cast<double>(round_bytes));
    return status_;
  }
}

std::unique_ptr<VerifierStore> ShardFollower::promote(StoreOptions options) {
  require_live();
  promoted_ = true;
  // The follower directory is an ordinary store directory, so failover is
  // plain crash recovery — the same code path, the same guarantees.
  return VerifierStore::open(follower_dir_, std::move(options));
}

StoreReplica::StoreReplica(std::string primary_dir, std::string follower_dir,
                           CrpLedger::Options ledger_options)
    : primary_dir_(std::move(primary_dir)),
      follower_dir_(std::move(follower_dir)) {
  std::size_t shards = 0;
  if (!ShardedVerifierStore::read_manifest(primary_dir_, shards)) {
    throw StoreError("no sharded-store manifest in " + primary_dir_ +
                     " (replicate a single store with ShardFollower)");
  }
  std::size_t existing = 0;
  if (ShardedVerifierStore::read_manifest(follower_dir_, existing)) {
    if (existing != shards) {
      throw StoreError("follower at " + follower_dir_ + " has " +
                       std::to_string(existing) + " shards, primary has " +
                       std::to_string(shards));
    }
  } else {
    ShardedVerifierStore::write_manifest(follower_dir_, shards);
  }
  followers_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    followers_.push_back(std::make_unique<ShardFollower>(
        ShardedVerifierStore::shard_dir(primary_dir_, i),
        ShardedVerifierStore::shard_dir(follower_dir_, i), ledger_options));
  }
}

std::vector<ReplicationStatus> StoreReplica::ship() {
  std::vector<ReplicationStatus> statuses;
  statuses.reserve(followers_.size());
  for (auto& follower : followers_) {
    statuses.push_back(follower->ship());
  }
  return statuses;
}

std::unique_ptr<VerifierStore> StoreReplica::promote_shard(
    std::size_t shard, StoreOptions options) {
  return followers_[shard]->promote(std::move(options));
}

std::unique_ptr<ShardedVerifierStore> StoreReplica::promote(
    ShardedStoreOptions options) {
  for (auto& follower : followers_) follower->ship();
  // Consume the replica before recovery: the followers' warm state is
  // about to go stale the moment the promoted store starts writing.
  followers_.clear();
  // The follower manifest (a copy of the primary's) is authoritative for
  // the shard count; a caller-supplied default must not fight it.
  options.shards = 0;
  return ShardedVerifierStore::open(follower_dir_, std::move(options));
}

}  // namespace pufatt::store
