// N-way partitioned verifier store: the fleet-scale front of src/store.
//
// One VerifierStore serializes every mutation through a single WAL; at
// fleet scale that log is both the write bottleneck and a single blast
// radius.  The sharded store splits the fleet across N fully independent
// VerifierStores — per-shard WAL, snapshot, compaction, and locks — and
// routes each device to its shard with the same platform-stable hash the
// registry already stripes its locks by (service::stable_device_hash).
// Two devices in different shards share *nothing*: no lock, no WAL fsync
// queue, no compaction pause, no corruption blast radius.
//
// On-disk layout:
//
//   <dir>/store.shards        manifest: "PFATSHRD" | version | shard count
//   <dir>/shard-0000/         an ordinary VerifierStore directory
//   <dir>/shard-0001/         ...
//
// The manifest pins the shard count forever: routing is hash % N, so
// reopening with a different N would silently strand every record in the
// wrong shard.  open() writes the manifest atomically on first creation
// and refuses a mismatching explicit count afterwards.  Each shard
// directory is a plain single-store directory — every store tool
// (store-inspect, store-compact, replication) works on one shard
// unchanged, and recovery of the N shards is embarrassingly parallel
// (support::parallel_blocks), which is where the recovery speedup the
// bench measures comes from.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/verifier_store.hpp"

namespace pufatt::obs {
class MetricRegistry;
}

namespace pufatt::store {

inline constexpr char kManifestMagic[8] = {'P', 'F', 'A', 'T',
                                           'S', 'H', 'R', 'D'};
inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr std::size_t kMaxStoreShards = 4096;

struct ShardedStoreOptions {
  /// Shard count when *creating* a store.  On reopen the manifest wins:
  /// a non-zero value that disagrees with it is a hard StoreError
  /// (hash % N routing makes a silently changed N mean every device
  /// looks up the wrong shard); 0 means "whatever the manifest says".
  std::size_t shards = 4;
  /// Threads for parallel shard recovery; 0 = hardware_concurrency.
  std::size_t recovery_threads = 0;
  /// Applied to every shard (WAL geometry, registry striping, CRP
  /// depletion hook — the hook fires per shard, and may re-enter the
  /// sharded store exactly like the single-store contract allows).
  StoreOptions store;
};

class ShardedVerifierStore {
 public:
  /// Opens (creating if empty) the sharded store at `dir`, recovering all
  /// shards in parallel.  Throws StoreError on corruption in any shard or
  /// on a manifest/shard-count mismatch.
  static std::unique_ptr<ShardedVerifierStore> open(
      std::string dir, ShardedStoreOptions options = {});

  ShardedVerifierStore(const ShardedVerifierStore&) = delete;
  ShardedVerifierStore& operator=(const ShardedVerifierStore&) = delete;

  /// "<dir>/shard-0007" — the naming scheme replication and tooling share.
  static std::string shard_dir(const std::string& dir, std::size_t shard);
  static std::string manifest_path(const std::string& dir);

  /// Reads the shard count from `dir`'s manifest.  False when no manifest
  /// exists; StoreError when one exists but is malformed.
  static bool read_manifest(const std::string& dir, std::size_t& shards);

  /// Writes the manifest atomically (temp + fsync + rename).  Exposed for
  /// replication, which must reproduce the primary's layout at a follower.
  static void write_manifest(const std::string& dir, std::size_t shards);

  // --- routing --------------------------------------------------------------

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(const std::string& device_id) const;
  VerifierStore& shard(std::size_t index) { return *shards_[index]; }
  const VerifierStore& shard(std::size_t index) const {
    return *shards_[index];
  }

  /// Read-side device lookup routed to the owning shard's registry; wire
  /// an EmulatorCache / VerifierPool to this.
  const service::RegistryView& registry_view() const { return view_; }

  // --- forwarded operations (each routed to the owning shard) ---------------

  bool enroll(const std::string& device_id, core::EnrollmentRecord record);
  bool evict(const std::string& device_id);
  void enroll_crps(const std::string& device_id, core::CrpDatabase db);
  std::optional<core::CrpDatabase::AuthResult> authenticate_crp(
      const std::string& device_id, const alupuf::AluPuf& device,
      support::Xoshiro256pp& rng, double threshold_fraction = 0.22,
      const variation::Environment& env = variation::Environment::nominal());
  std::optional<std::size_t> crp_remaining(const std::string& device_id) const;

  // --- whole-store operations ------------------------------------------------

  void sync();     ///< group-commits every shard
  void compact();  ///< compacts every shard (independently crash-safe)

  // --- aggregates ------------------------------------------------------------

  std::size_t device_count() const;
  std::size_t total_crp_remaining() const;
  const std::string& dir() const { return dir_; }

  /// Publishes per-shard occupancy gauges into `registry`:
  ///   store.shards                 shard count (fixed by the manifest)
  ///   store.shard<i>.devices       enrolled devices routed to shard i
  ///   store.shard<i>.crp_remaining unspent CRPs held by shard i
  /// Same name-stability contract as the registry's snapshot_json(): call
  /// it again to refresh, e.g. from a serve-loop stats ticker, and the
  /// gauges land in the StatsReply "registry" section (DESIGN.md §16).
  void publish_metrics(obs::MetricRegistry& registry) const;

 private:
  /// Routes load()/contains() to the owning shard's registry.
  class RoutingView : public service::RegistryView {
   public:
    explicit RoutingView(const ShardedVerifierStore& owner) : owner_(owner) {}
    std::shared_ptr<const core::EnrollmentRecord> load(
        const std::string& device_id) const override {
      return owner_.shard_for(device_id).registry().load(device_id);
    }

   private:
    const ShardedVerifierStore& owner_;
  };

  ShardedVerifierStore(std::string dir,
                       std::vector<std::unique_ptr<VerifierStore>> shards);

  VerifierStore& shard_for(const std::string& device_id);
  const VerifierStore& shard_for(const std::string& device_id) const;

  const std::string dir_;
  std::vector<std::unique_ptr<VerifierStore>> shards_;
  RoutingView view_;
};

}  // namespace pufatt::store
