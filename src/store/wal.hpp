// Append-only write-ahead log of CRC-framed records with segment rotation.
//
// The durability primitive under the verifier store: every state mutation
// (device enrollment, eviction, CRP consumption) is appended here *before*
// it is applied in memory, so a crash at any instant loses at most the
// records not yet fsynced — never corrupts what was.
//
// On-disk layout (all integers little-endian), one directory per log:
//
//   wal-00000001.log, wal-00000002.log, ...     segment files
//
//   segment   := header record*
//   header    := "PFATWAL1" (8 bytes) | segment index (u64)
//   record    := magic (u32, "PFWR") | type (u32) | payload_len (u32)
//              | payload bytes | crc32 (u32, over magic..payload)
//
// The CRC framing follows the PR-1 wire-format discipline (core/serialize):
// readers must turn any malformed byte stream into a clean error, never
// undefined slicing.  The torn-tail rule makes crash recovery precise:
//
//   * A record that runs past the end of the *final* segment is a torn
//     tail — the prefix before it is the clean shutdown point.  Accepted;
//     the writer truncates it away on reopen.  (Appends write the frame
//     front to back, so a crash mid-append leaves exactly this shape.)
//   * A *complete* record whose CRC does not match, a record with a bad
//     magic while bytes remain, or any short read in a non-final segment
//     is real corruption — a hard StoreError, never silently skipped.
//   * Zero-length payloads are valid records (checkpoint markers).
//   * A segment whose header is garbage is a hard error.
//
// Durability model: append() buffers into the segment's stdio buffer and
// returns; sync() flushes and fsyncs.  With `sync_every = k`, one fsync is
// shared by up to k appends (group commit) — the latency/durability knob
// bench/store_recovery measures.  The writer is thread-safe (one mutex);
// rotation happens transparently when a segment exceeds `segment_bytes`.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace pufatt::obs {
class Counter;
class LogHistogram;
}  // namespace pufatt::obs

namespace pufatt::store {

/// Raised on corrupt or inconsistent on-disk state.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kSegmentMagic[8] = {'P', 'F', 'A', 'T',
                                          'W', 'A', 'L', '1'};
inline constexpr std::uint32_t kRecordMagic = 0x52574650;  // "PFWR"
inline constexpr std::size_t kSegmentHeaderBytes = 16;
inline constexpr std::size_t kRecordOverheadBytes = 16;  // magic,type,len,crc
inline constexpr std::size_t kMaxRecordPayload = 1u << 28;

struct WalRecord {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
  /// Provenance for diagnostics: which segment the record came from and
  /// the byte offset of its frame there, so replay errors can name the
  /// exact on-disk location (see wal_segment_file).
  std::uint64_t origin_segment = 0;
  std::uint64_t origin_offset = 0;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  bool torn_tail = false;       ///< final segment ended mid-record
  std::size_t segments = 0;     ///< segments actually scanned
  std::size_t segments_skipped = 0;  ///< at/below the caller's watermark
  std::uint64_t bytes = 0;      ///< on-disk bytes of the scanned segments
  std::uint64_t tail_valid_bytes = 0;  ///< clean byte length of last segment
};

/// Segment files under `dir`, sorted by index; validates that filenames
/// parse and indices strictly increase.  Missing directory = empty log.
std::vector<std::string> wal_segment_paths(const std::string& dir);

/// Filename of segment `index` ("wal-00000042.log") — the naming scheme
/// shared by the writer, recovery diagnostics, and replication shipping.
std::string wal_segment_file(std::uint64_t index);

/// Incremental single-segment scan, the unit of WAL shipping: parses the
/// clean frame prefix of `path` starting at byte `from` (a frame boundary
/// from a previous scan, or 0 for the segment start).  A torn final frame
/// is always tolerated — a live primary's current segment routinely ends
/// mid-frame — and simply stays beyond `valid_bytes` until it completes.
/// Complete-but-corrupt frames throw StoreError with path and offset.
struct WalSegmentDelta {
  std::vector<WalRecord> records;   ///< frames wholly inside [from, valid)
  std::vector<std::uint8_t> bytes;  ///< raw clean bytes [from, valid)
  std::uint64_t valid_bytes = 0;    ///< clean prefix length of the segment
  bool torn = false;                ///< a partial frame follows valid_bytes
};
WalSegmentDelta read_segment_delta(const std::string& path,
                                   std::uint64_t expect_index,
                                   std::uint64_t from);

/// Reads every record of every segment in order.  Throws StoreError on
/// corruption (see the torn-tail rule above); a torn final record is
/// reported via `torn_tail`, not thrown.  Corruption messages name the
/// segment path and the byte offset of the offending frame.
///
/// Scanned segment indices must be contiguous: a missing *middle* segment
/// (or a gap just above the snapshot watermark) means silently lost
/// records and is a hard StoreError, since rotation, restart_segments,
/// and compaction only ever produce consecutive surviving indices.
///
/// Segments whose index is <= `skip_through_index` are not scanned at all
/// (counted in `segments_skipped`): they are the ones a snapshot's WAL
/// watermark declares folded, and may be stale leftovers of an
/// interrupted compaction — replaying them against a newer snapshot would
/// be wrong, not merely redundant (e.g. a stale consume marker applied to
/// a freshly provisioned CRP database).
WalReadResult read_wal(const std::string& dir,
                       std::uint64_t skip_through_index = 0);

struct WalOptions {
  std::size_t segment_bytes = 4u << 20;  ///< rotate past this size
  /// Appends per automatic group commit; every sync_every-th append also
  /// flushes+fsyncs.  0 = only explicit sync() calls hit the disk.
  std::size_t sync_every = 32;
  /// Compaction watermark floor: segments with a lower index are folded
  /// into a durable snapshot, so the writer deletes them on open and never
  /// numbers a fresh segment below this.  Keeping every live record above
  /// the snapshot's watermark is what makes recovery skip-below-watermark
  /// safe.  1 = no snapshot yet.
  std::uint64_t min_segment_index = 1;
};

class WalWriter {
 public:
  /// Opens (creating the directory if needed) and resumes after the last
  /// valid record: a torn tail from a previous crash is truncated away,
  /// real corruption throws.  Segments below `options.min_segment_index`
  /// (stale leftovers of an interrupted compaction) are deleted first.
  /// New records go to the highest surviving segment, or a fresh one at
  /// `min_segment_index` when none survives.
  explicit WalWriter(std::string dir, const WalOptions& options = {});
  ~WalWriter();  ///< final sync + close (best effort)

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; returns its ordinal (0-based since open).
  /// Thread-safe.  Durable only after the next sync (explicit or batched).
  /// On any write failure the writer fails *closed*: a failed rotation,
  /// a short frame write, or a failed fsync each close the segment and
  /// permanently poison the writer — every further append/sync throws
  /// StoreError.  (A short write leaves a partial frame at the segment
  /// end; appending after it would bury mid-segment garbage that reads as
  /// hard corruption, whereas the poisoned writer leaves a torn tail the
  /// next open cleanly truncates.  A failed fsync means unknown data
  /// loss — fsyncgate — so pretending the writer is still durable would
  /// be a lie.)
  std::uint64_t append(std::uint32_t type, const std::uint8_t* payload,
                       std::size_t size);
  std::uint64_t append(std::uint32_t type, const std::string& payload);

  /// Group commit: flushes buffered appends and fsyncs the segment.
  /// One call covers every append since the previous sync.
  void sync();

  /// Compaction handshake: deletes every segment (their records are folded
  /// into a snapshot the caller just persisted *with the current segment
  /// index as its watermark*) and starts a fresh one at the next index.
  /// Monotonic numbering is what lets recovery tell folded segments from
  /// live ones: a crash mid-deletion leaves stale segments at or below the
  /// snapshot's watermark, which recovery skips and the next open deletes.
  void restart_segments();

  std::uint64_t appended_records() const;
  std::uint64_t appended_bytes() const;
  std::uint64_t current_segment_index() const;
  const std::string& dir() const { return dir_; }

 private:
  void require_open_locked() const;  ///< throws when the writer has failed
  void open_segment_locked(std::uint64_t index);   ///< caller holds mutex_
  void rotate_if_needed_locked();                  ///< caller holds mutex_
  void sync_locked();                              ///< caller holds mutex_

  const std::string dir_;
  const WalOptions options_;

  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::uint64_t segment_index_ = 0;
  std::uint64_t segment_bytes_ = 0;   ///< bytes in the current segment
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::size_t unsynced_ = 0;          ///< appends since the last fsync

  // obs: resolved once, then relaxed-atomic updates only.
  obs::Counter& appends_;
  obs::Counter& append_bytes_;
  obs::Counter& syncs_;
  obs::Counter& rotations_;
  obs::LogHistogram& append_us_;
  obs::LogHistogram& sync_us_;
};

}  // namespace pufatt::store
