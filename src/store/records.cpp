#include "store/records.hpp"

#include <sstream>

#include "core/serialize.hpp"

namespace pufatt::store {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Bounds-checked cursor over a decoded payload; throws on under/overrun.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (size - pos < n) throw StoreError("truncated WAL record payload");
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  std::string id() {
    const std::uint32_t len = u32();
    if (len > kMaxDeviceIdBytes) {
      throw StoreError("device id in WAL record exceeds sanity bound");
    }
    need(len);
    std::string s(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return s;
  }
  /// Remaining bytes as a string (the embedded serialized blob).
  std::string rest() {
    std::string s(reinterpret_cast<const char*>(data + pos), size - pos);
    pos = size;
    return s;
  }
  void done() const {
    if (pos != size) throw StoreError("trailing bytes in WAL record payload");
  }
};

void expect_type(const WalRecord& record, std::uint32_t type) {
  if (record.type != type) {
    throw StoreError(std::string("WAL record is not a ") +
                     record_type_name(type) + " record");
  }
}

}  // namespace

const char* record_type_name(std::uint32_t type) {
  switch (type) {
    case kEnroll: return "enroll";
    case kEvict: return "evict";
    case kCrpEnroll: return "crp_enroll";
    case kCrpConsume: return "crp_consume";
    case kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

std::string encode_enroll(const std::string& device_id,
                          const core::EnrollmentRecord& record) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(device_id.size()));
  out += device_id;
  std::ostringstream blob(std::ios::binary);
  core::save_record(blob, record);
  out += blob.str();
  return out;
}

std::string encode_evict(const std::string& device_id) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(device_id.size()));
  out += device_id;
  return out;
}

std::string encode_crp_enroll(const std::string& device_id,
                              const core::CrpDatabase& db) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(device_id.size()));
  out += device_id;
  std::ostringstream blob(std::ios::binary);
  db.save(blob);
  out += blob.str();
  return out;
}

std::string encode_crp_consume(const std::string& device_id,
                               std::uint64_t entry_index) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(device_id.size()));
  out += device_id;
  put_u64(out, entry_index);
  return out;
}

EnrollPayload decode_enroll(const WalRecord& record) {
  expect_type(record, kEnroll);
  Reader r{record.payload.data(), record.payload.size()};
  EnrollPayload payload;
  payload.device_id = r.id();
  std::istringstream blob(r.rest(), std::ios::binary);
  try {
    payload.record = core::load_record(blob);
  } catch (const core::SerializationError& e) {
    throw StoreError(std::string("bad enrollment record in WAL: ") + e.what());
  }
  return payload;
}

std::string decode_evict(const WalRecord& record) {
  expect_type(record, kEvict);
  Reader r{record.payload.data(), record.payload.size()};
  std::string device_id = r.id();
  r.done();
  return device_id;
}

CrpEnrollPayload decode_crp_enroll(const WalRecord& record) {
  expect_type(record, kCrpEnroll);
  Reader r{record.payload.data(), record.payload.size()};
  CrpEnrollPayload payload;
  payload.device_id = r.id();
  std::istringstream blob(r.rest(), std::ios::binary);
  try {
    payload.db = core::CrpDatabase::load(blob);
  } catch (const core::SerializationError& e) {
    throw StoreError(std::string("bad CRP database in WAL: ") + e.what());
  }
  return payload;
}

CrpConsumePayload decode_crp_consume(const WalRecord& record) {
  expect_type(record, kCrpConsume);
  Reader r{record.payload.data(), record.payload.size()};
  CrpConsumePayload payload;
  payload.device_id = r.id();
  payload.entry_index = r.u64();
  r.done();
  return payload;
}

}  // namespace pufatt::store
