// Deterministic block-parallel driver.
//
// Work is cut into fixed-size blocks whose boundaries depend only on
// (total, block) — never on the thread count — and each block carries its
// own index, so callers can derive per-block RNG seeds and write results
// into disjoint preallocated ranges.  Output is therefore identical at any
// thread count: threads only change *which worker* runs a block, not what
// the block computes or where it lands.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pufatt::support {

/// Runs `fn(block_index, begin, end, worker_slot)` for every block
/// `[k*block, min((k+1)*block, total))`, on up to `threads` std::threads.
/// `worker_slot` is in [0, max(1, threads)) and identifies the executing
/// worker, for per-worker scratch reuse — it is NOT stable across runs, so
/// never derive results from it.  threads <= 1 (or a single block) runs
/// inline on the calling thread.  The first exception thrown by any block
/// is rethrown on the caller after all workers join.
template <typename Fn>
void parallel_blocks(std::size_t total, std::size_t block, std::size_t threads,
                     Fn&& fn) {
  if (total == 0) return;
  if (block == 0) block = 1;
  const std::size_t num_blocks = (total + block - 1) / block;
  if (threads <= 1 || num_blocks <= 1) {
    for (std::size_t k = 0; k < num_blocks; ++k) {
      const std::size_t begin = k * block;
      const std::size_t end = std::min(begin + block, total);
      fn(k, begin, end, std::size_t{0});
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&](std::size_t slot) {
    for (;;) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_blocks || failed.load(std::memory_order_relaxed)) return;
      const std::size_t begin = k * block;
      const std::size_t end = std::min(begin + block, total);
      try {
        fn(k, begin, end, slot);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (error == nullptr) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const std::size_t spawn = std::min(threads, num_blocks);
  std::vector<std::thread> pool;
  pool.reserve(spawn - 1);
  for (std::size_t slot = 1; slot < spawn; ++slot) {
    pool.emplace_back(worker, slot);
  }
  worker(0);
  for (auto& t : pool) t.join();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace pufatt::support
