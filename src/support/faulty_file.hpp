// Deterministic fault injection for the store's durability-critical file
// ops.
//
// Crash-recovery code is only as good as the failures it has actually
// been run against, and the failures that matter — a short write under
// disk pressure, an fsync returning EIO, a rename whose data blocks never
// became durable, a kill at an arbitrary byte — are exactly the ones a
// normal test run never produces.  This layer closes that gap: the store
// routes every fwrite/fflush/fsync/rename/remove through the io_*
// wrappers below, and a test arms a FaultPlan describing precisely which
// operation misbehaves.  Disarmed (the default, and the only state
// outside tests), each wrapper is the libc call behind one relaxed
// atomic load.
//
// Fault semantics (all ordinals 1-based; 0 = never fire):
//
//   short_write_at    the Nth io_fwrite persists only `short_write_keep`
//                     bytes and reports a short count — the caller must
//                     fail closed (StoreError), and what did land must
//                     read back as a torn tail, never as corruption.
//   fsync_error_at    the Nth io_fsync fails with EIO.  Durability code
//                     must treat this as data loss (fsyncgate), not retry.
//   rename_error_at   the Nth io_rename fails with EIO, target untouched.
//   torn_rename_at    the Nth io_rename *succeeds* but first truncates the
//                     source to half its size — the power-loss image of a
//                     rename made durable before the file's data blocks
//                     (what fsync-before-rename exists to prevent).
//                     Readers must refuse the torn file, never half-load.
//   crash_after_bytes simulated kill: once the cumulative bytes accepted
//                     by io_fwrite reach K, the prefix reaching exactly K
//                     is written and every later write/fsync/rename/remove
//                     silently pretends success while touching nothing —
//                     the process "runs on" but, like a killed one, leaves
//                     only the first K logical bytes behind.  Recovery is
//                     then exercised against an arbitrary cut point.
//
// The singleton is thread-safe: arming/disarming and the fault counters
// are mutex-protected, and the armed flag is an atomic so the disarmed
// fast path takes no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>

namespace pufatt::support {

/// Which operations fail, and how (see the header comment).
struct FaultPlan {
  std::uint64_t short_write_at = 0;
  std::uint64_t short_write_keep = 0;  ///< bytes the short write still lands
  std::uint64_t fsync_error_at = 0;
  std::uint64_t rename_error_at = 0;
  std::uint64_t torn_rename_at = 0;
  std::uint64_t crash_after_bytes = 0;
};

class FaultyFile {
 public:
  static FaultyFile& instance();

  /// Arms `plan` and resets every counter.  Tests must disarm() (or use
  /// ScopedFaultPlan) before letting store objects destruct normally.
  void arm(const FaultPlan& plan);
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// True once crash_after_bytes was reached; later ops are no-ops.
  bool crashed() const;
  /// Cumulative payload bytes accepted by io_fwrite since arm().
  std::uint64_t bytes_written() const;

 private:
  friend std::FILE* io_fopen(const char* path, const char* mode);
  friend std::size_t io_fwrite(const void* data, std::size_t size,
                               std::FILE* file);
  friend int io_fflush(std::FILE* file);
  friend int io_fsync(int fd);
  friend int io_rename(const char* from, const char* to);
  friend int io_remove(const char* path);

  FaultyFile() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  FaultPlan plan_;
  bool crashed_ = false;
  std::uint64_t bytes_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t renames_ = 0;
};

/// RAII arm/disarm, so a throwing test cannot leak an armed injector into
/// the next test's (or a destructor's) file ops.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) {
    FaultyFile::instance().arm(plan);
  }
  ~ScopedFaultPlan() { FaultyFile::instance().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

// --- the wrappers the store's file ops go through ---------------------------

/// fopen(path, mode), except after a simulated crash — a killed process
/// creates no files, so the stream returned then is /dev/null and the
/// path never appears on disk.
std::FILE* io_fopen(const char* path, const char* mode);

/// fwrite(data, 1, size, file) with fault injection; returns bytes
/// accepted (short on an injected short write; `size` under a simulated
/// crash, where the bytes silently do not land).
std::size_t io_fwrite(const void* data, std::size_t size, std::FILE* file);

/// fflush with crash suppression (a killed process flushes nothing new).
int io_fflush(std::FILE* file);

/// fsync(fd); -1/EIO when injected, silent no-op after a simulated crash.
int io_fsync(int fd);

/// rename(from, to); injectable error / torn-source variants, suppressed
/// (pretend success) after a simulated crash.
int io_rename(const char* from, const char* to);

/// remove(path); suppressed after a simulated crash — a killed process
/// deletes nothing, so compaction's segment deletion must not either.
int io_remove(const char* path);

}  // namespace pufatt::support
