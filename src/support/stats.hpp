// Streaming statistics and integer histograms used by every experiment
// harness (inter/intra Hamming-distance studies, cycle-count distributions,
// attack success rates).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pufatt::support {

/// Welford online mean/variance plus min/max tracking.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 if fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric bucket edges shared by every log-scale histogram in the tree
/// (service latency histograms, the obs MetricRegistry histograms).
/// Bucket i counts values in [upper_edge(i-1), upper_edge(i)) with
/// upper_edge(i) = first_edge * base^i; the last bucket is unbounded.
/// Edges are computed by repeated multiplication, not pow(), so bucket
/// boundaries are bit-identical everywhere — the service's JSON snapshots
/// are byte-stable contracts.
struct LogScale {
  double first_edge = 100.0;  ///< upper edge of bucket 0
  double base = 4.0;          ///< geometric growth per bucket
  std::size_t buckets = 8;

  /// Upper edge of `bucket`; +infinity for the last bucket.
  double upper_edge(std::size_t bucket) const;
  /// Index of the bucket containing `value`.
  std::size_t bucket_for(double value) const;

  bool operator==(const LogScale& other) const {
    return first_edge == other.first_edge && base == other.base &&
           buckets == other.buckets;
  }
};

/// Smallest bucket index such that at least `q * total` of the mass lies
/// at or below it (the quantile rule both Histogram and the log-scale
/// histograms use).  Returns 0 on an empty histogram.
std::size_t bucket_quantile(const std::uint64_t* counts, std::size_t num_bins,
                            std::uint64_t total, double q);

/// Histogram over the integers [0, num_bins).  Out-of-range samples are
/// clamped into the closest bin and counted in `clamped()` so that harness
/// code can detect mis-sized histograms.
class Histogram {
 public:
  explicit Histogram(std::size_t num_bins);

  void add(std::size_t value);

  std::size_t num_bins() const { return bins_.size(); }
  std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
  std::uint64_t total() const { return total_; }
  std::uint64_t clamped() const { return clamped_; }

  double mean() const;
  double stddev() const;
  /// Fraction of samples falling in bin i.
  double fraction(std::size_t i) const;
  /// Smallest v such that at least q of the mass lies at bins <= v.
  std::size_t quantile(double q) const;

  /// Renders an ASCII bar chart (one row per non-empty bin), used by the
  /// figure-reproduction benches to mirror the paper's histograms.
  std::string render(const std::string& label, std::size_t max_width = 60) const;

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t clamped_ = 0;
};

}  // namespace pufatt::support
