// Streaming statistics and integer histograms used by every experiment
// harness (inter/intra Hamming-distance studies, cycle-count distributions,
// attack success rates).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pufatt::support {

/// Welford online mean/variance plus min/max tracking.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 if fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram over the integers [0, num_bins).  Out-of-range samples are
/// clamped into the closest bin and counted in `clamped()` so that harness
/// code can detect mis-sized histograms.
class Histogram {
 public:
  explicit Histogram(std::size_t num_bins);

  void add(std::size_t value);

  std::size_t num_bins() const { return bins_.size(); }
  std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
  std::uint64_t total() const { return total_; }
  std::uint64_t clamped() const { return clamped_; }

  double mean() const;
  double stddev() const;
  /// Fraction of samples falling in bin i.
  double fraction(std::size_t i) const;
  /// Smallest v such that at least q of the mass lies at bins <= v.
  std::size_t quantile(double q) const;

  /// Renders an ASCII bar chart (one row per non-empty bin), used by the
  /// figure-reproduction benches to mirror the paper's histograms.
  std::string render(const std::string& label, std::size_t max_width = 60) const;

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t clamped_ = 0;
};

}  // namespace pufatt::support
