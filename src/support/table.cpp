#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace pufatt::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    out << "\n";
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace pufatt::support
