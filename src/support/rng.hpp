// Deterministic, portable random number generation.
//
// All stochastic components of the simulator (process variation sampling,
// evaluation noise, arbiter metastability, protocol nonces) draw from these
// generators so that every experiment is reproducible from a single seed on
// any platform.  std:: distributions are deliberately avoided: their output
// is implementation-defined and would make cross-platform regression tests
// impossible.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace pufatt::support {

/// SplitMix64: used for seeding and for cheap stateless hashing of seeds.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next();

  /// One-shot stateless mix of a 64-bit value (useful for deriving
  /// independent sub-seeds from (seed, index) pairs).
  static std::uint64_t mix(std::uint64_t x);

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna).  Fast, high-quality, 256-bit state.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64,
  /// as recommended by the generator's authors.
  explicit Xoshiro256pp(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified with rejection).
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Standard normal deviate via Box-Muller (deterministic across
  /// platforms; caches the second deviate).
  double gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Standard normal deviate via the ziggurat method (Doornik's ZIGNOR
  /// layout, 128 layers): ~one next() plus a table compare per deviate —
  /// several times faster than gaussian(), which pays log/sqrt/sin/cos
  /// per pair.  Statistically exact, but a DIFFERENT stream from
  /// gaussian() (no cached second deviate, different draw counts), so the
  /// two samplers are not interchangeable mid-sequence; bulk noise fills
  /// (ChipInstance::sample_delays_batch) standardize on this one.
  double gaussian_fast();

  /// Bulk fill: out[i] = mean + stddev * N(0,1), exactly n gaussian_fast()
  /// deviates in order.
  void gaussian_fill(double* out, std::size_t n, double mean = 0.0,
                     double stddev = 1.0);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Derive an independent child generator (for per-object streams).
  Xoshiro256pp split();

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pufatt::support
