#include "support/bitvec.hpp"

#include <bit>
#include <stdexcept>

namespace pufatt::support {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t word_count(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVector::BitVector(std::size_t size)
    : size_(size), words_(word_count(size), 0) {}

BitVector::BitVector(std::size_t size, std::uint64_t value)
    : size_(size), words_(word_count(size), 0) {
  if (!words_.empty()) {
    words_[0] = value;
    mask_tail();
  }
}

BitVector BitVector::from_string(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitVector::from_string: bad character");
    }
    // bits[0] is the most significant bit.
    v.set(bits.size() - 1 - i, c == '1');
  }
  return v;
}

bool BitVector::get(std::size_t i) const {
  check_index(i);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVector::set(std::size_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVector::flip(std::size_t i) {
  check_index(i);
  words_[i / kWordBits] ^= 1ULL << (i % kWordBits);
}

std::size_t BitVector::popcount() const {
  std::size_t total = 0;
  for (const auto word : words_) total += std::popcount(word);
  return total;
}

std::size_t BitVector::hamming_distance(const BitVector& other) const {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::hamming_distance: size mismatch");
  }
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += std::popcount(words_[w] ^ other.words_[w]);
  }
  return total;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator^=: size mismatch");
  }
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator&=: size mismatch");
  }
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator|=: size mismatch");
  }
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

BitVector BitVector::slice(std::size_t offset, std::size_t count) const {
  if (offset + count > size_) {
    throw std::out_of_range("BitVector::slice: out of range");
  }
  BitVector out(count);
  for (std::size_t i = 0; i < count; ++i) out.set(i, get(offset + i));
  return out;
}

BitVector BitVector::concat(const BitVector& hi) const {
  BitVector out(size_ + hi.size_);
  for (std::size_t i = 0; i < size_; ++i) out.set(i, get(i));
  for (std::size_t i = 0; i < hi.size_; ++i) out.set(size_ + i, hi.get(i));
  return out;
}

std::uint64_t BitVector::to_u64() const {
  return words_.empty() ? 0 : words_[0];
}

std::string BitVector::to_string() const {
  std::string out(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) out[size_ - 1 - i] = '1';
  }
  return out;
}

void BitVector::set_word(std::size_t i, std::uint64_t value) {
  if (i >= words_.size()) {
    throw std::out_of_range("BitVector::set_word: index out of range");
  }
  words_[i] = value;
  if (i + 1 == words_.size()) mask_tail();
}

void BitVector::mask_tail() {
  const std::size_t tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

void BitVector::check_index(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitVector: index out of range");
}

void transpose_64x64(std::uint64_t m[64]) {
  // Hacker's Delight recursive block swap: at block size j, exchange the
  // high-j columns of the low-j rows with the low-j columns of the high-j
  // rows within every 2j x 2j tile.  6 stages x 32 swaps, all word ops.
  std::uint64_t mask = 0x00000000FFFFFFFFULL;
  for (std::size_t j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (std::size_t k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = (m[k] ^ (m[k | j] << j)) & ~mask;
      m[k] ^= t;
      m[k | j] ^= t >> j;
    }
  }
}

void pack_bit_columns(const BitVector* vecs, std::size_t count,
                      std::size_t nbits, std::uint64_t* out,
                      std::size_t stride) {
  if (count > 64) {
    throw std::invalid_argument("pack_bit_columns: more than 64 lanes");
  }
  for (std::size_t l = 0; l < count; ++l) {
    if (vecs[l].size() != nbits) {
      throw std::invalid_argument("pack_bit_columns: wrong vector width");
    }
  }
  std::uint64_t m[64];
  const std::size_t nblocks = (nbits + 63) / 64;
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    for (std::size_t l = 0; l < 64; ++l) {
      m[l] = l < count && blk < vecs[l].words().size() ? vecs[l].word(blk) : 0;
    }
    transpose_64x64(m);
    const std::size_t lim = std::min<std::size_t>(64, nbits - blk * 64);
    for (std::size_t k = 0; k < lim; ++k) {
      out[(blk * 64 + k) * stride] = m[k];
    }
  }
}

void unpack_bit_columns(const std::uint64_t* in, std::size_t nbits,
                        std::size_t stride, BitVector* vecs,
                        std::size_t count) {
  if (count > 64) {
    throw std::invalid_argument("unpack_bit_columns: more than 64 lanes");
  }
  for (std::size_t l = 0; l < count; ++l) {
    if (vecs[l].size() != nbits) {
      throw std::invalid_argument("unpack_bit_columns: wrong vector width");
    }
  }
  std::uint64_t m[64];
  const std::size_t nblocks = (nbits + 63) / 64;
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t lim = std::min<std::size_t>(64, nbits - blk * 64);
    for (std::size_t k = 0; k < 64; ++k) {
      m[k] = k < lim ? in[(blk * 64 + k) * stride] : 0;
    }
    transpose_64x64(m);
    for (std::size_t l = 0; l < count; ++l) {
      vecs[l].set_word(blk, m[l]);
    }
  }
}

}  // namespace pufatt::support
