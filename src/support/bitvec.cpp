#include "support/bitvec.hpp"

#include <bit>
#include <stdexcept>

namespace pufatt::support {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t word_count(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVector::BitVector(std::size_t size)
    : size_(size), words_(word_count(size), 0) {}

BitVector::BitVector(std::size_t size, std::uint64_t value)
    : size_(size), words_(word_count(size), 0) {
  if (!words_.empty()) {
    words_[0] = value;
    mask_tail();
  }
}

BitVector BitVector::from_string(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitVector::from_string: bad character");
    }
    // bits[0] is the most significant bit.
    v.set(bits.size() - 1 - i, c == '1');
  }
  return v;
}

bool BitVector::get(std::size_t i) const {
  check_index(i);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVector::set(std::size_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVector::flip(std::size_t i) {
  check_index(i);
  words_[i / kWordBits] ^= 1ULL << (i % kWordBits);
}

std::size_t BitVector::popcount() const {
  std::size_t total = 0;
  for (const auto word : words_) total += std::popcount(word);
  return total;
}

std::size_t BitVector::hamming_distance(const BitVector& other) const {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::hamming_distance: size mismatch");
  }
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += std::popcount(words_[w] ^ other.words_[w]);
  }
  return total;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator^=: size mismatch");
  }
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator&=: size mismatch");
  }
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator|=: size mismatch");
  }
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

BitVector BitVector::slice(std::size_t offset, std::size_t count) const {
  if (offset + count > size_) {
    throw std::out_of_range("BitVector::slice: out of range");
  }
  BitVector out(count);
  for (std::size_t i = 0; i < count; ++i) out.set(i, get(offset + i));
  return out;
}

BitVector BitVector::concat(const BitVector& hi) const {
  BitVector out(size_ + hi.size_);
  for (std::size_t i = 0; i < size_; ++i) out.set(i, get(i));
  for (std::size_t i = 0; i < hi.size_; ++i) out.set(size_ + i, hi.get(i));
  return out;
}

std::uint64_t BitVector::to_u64() const {
  return words_.empty() ? 0 : words_[0];
}

std::string BitVector::to_string() const {
  std::string out(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) out[size_ - 1 - i] = '1';
  }
  return out;
}

void BitVector::mask_tail() {
  const std::size_t tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

void BitVector::check_index(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitVector: index out of range");
}

}  // namespace pufatt::support
