// Durability helpers shared by every layer that persists files.
//
// POSIX fsync covers a file's *bytes*; the directory entry that names the
// file (after create, rename, or delete) lives in the directory and needs
// its own fsync.  Atomic-snapshot writers (temp file + rename) must
// therefore fsync the temp file *before* the rename — or a power loss can
// make the rename durable while the data blocks are not, exposing a
// named-but-empty file — and fsync the parent directory *after*.
//
// All helpers are best-effort: filesystems that refuse O_RDONLY directory
// fsync (or files that vanished meanwhile) are silently tolerated, the
// same policy as stdio-based writers that cannot observe fsync errors on
// close.
#pragma once

#include <string>

namespace pufatt::support {

/// fsyncs the file at `path` (opens it read-only just for the fsync).
void fsync_path(const std::string& path);

/// fsyncs the directory at `dir` so created/renamed/deleted entries in it
/// are durable.
void fsync_dir(const std::string& dir);

/// fsyncs the directory containing `path` (".": no separator in `path`).
void fsync_parent_dir(const std::string& path);

}  // namespace pufatt::support
