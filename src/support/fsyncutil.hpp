// Durability helpers shared by every layer that persists files.
//
// POSIX fsync covers a file's *bytes*; the directory entry that names the
// file (after create, rename, or delete) lives in the directory and needs
// its own fsync.  Atomic-snapshot writers (temp file + rename) must
// therefore fsync the temp file *before* the rename — or a power loss can
// make the rename durable while the data blocks are not, exposing a
// named-but-empty file — and fsync the parent directory *after*.
//
// The plain helpers are best-effort: filesystems that refuse O_RDONLY
// directory fsync (or files that vanished meanwhile) are silently
// tolerated, the same policy as stdio-based writers that cannot observe
// fsync errors on close.  try_fsync_path() is the checked variant for the
// one place best-effort is wrong — syncing a snapshot temp file before
// the rename that publishes it, where an unreported fsync failure would
// let a torn snapshot become the named truth.
//
// All helpers go through support::io_fsync, so fault-injection tests can
// schedule fsync failures here too.
#pragma once

#include <string>

namespace pufatt::support {

/// fsyncs the file at `path` (opens it read-only just for the fsync).
void fsync_path(const std::string& path);

/// Like fsync_path but reports failure: false when the file cannot be
/// opened or fsync returns an error (including an injected EIO).
bool try_fsync_path(const std::string& path);

/// fsyncs the directory at `dir` so created/renamed/deleted entries in it
/// are durable.
void fsync_dir(const std::string& dir);

/// fsyncs the directory containing `path` (".": no separator in `path`).
void fsync_parent_dir(const std::string& path);

}  // namespace pufatt::support
