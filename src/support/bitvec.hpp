// Dynamic bit vector with the operations PUF work needs constantly:
// XOR, Hamming weight/distance, slicing, word import/export, hex formatting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pufatt::support {

/// A fixed-length sequence of bits (length chosen at construction).
/// Bit 0 is the least significant bit of word 0.
class BitVector {
 public:
  BitVector() = default;

  /// All-zero vector of `size` bits.
  explicit BitVector(std::size_t size);

  /// Vector of `size` bits initialized from the low bits of `value`.
  BitVector(std::size_t size, std::uint64_t value);

  /// Builds from a string of '0'/'1' characters, most significant bit first
  /// (so "1010" has bit 3 = 1, bit 1 = 1).  Throws std::invalid_argument on
  /// any other character.
  static BitVector from_string(const std::string& bits);

  /// Builds a `size`-bit vector with uniformly random contents drawn by
  /// calling `next_word()` for each 64-bit chunk.
  template <typename Rng>
  static BitVector random(std::size_t size, Rng& rng) {
    BitVector v(size);
    for (auto& word : v.words_) word = rng.next();
    v.mask_tail();
    return v;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Number of set bits.
  std::size_t popcount() const;

  /// Hamming distance to another vector of the same size.
  /// Throws std::invalid_argument on size mismatch.
  std::size_t hamming_distance(const BitVector& other) const;

  /// Bitwise operations (sizes must match).
  BitVector& operator^=(const BitVector& other);
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }
  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }

  bool operator==(const BitVector& other) const = default;

  /// Returns bits [offset, offset+count) as a new vector.
  BitVector slice(std::size_t offset, std::size_t count) const;

  /// Concatenation: result holds *this in the low bits, `hi` above them.
  BitVector concat(const BitVector& hi) const;

  /// Low min(size, 64) bits as a word.
  std::uint64_t to_u64() const;

  /// Raw 64-bit words (little-endian bit order, tail bits zero).
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// MSB-first '0'/'1' string.
  std::string to_string() const;

  /// Parity (XOR of all bits).
  bool parity() const { return popcount() % 2 != 0; }

 private:
  void mask_tail();
  void check_index(std::size_t i) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pufatt::support
