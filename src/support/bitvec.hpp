// Dynamic bit vector with the operations PUF work needs constantly:
// XOR, Hamming weight/distance, slicing, word import/export, hex formatting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pufatt::support {

/// A fixed-length sequence of bits (length chosen at construction).
/// Bit 0 is the least significant bit of word 0.
class BitVector {
 public:
  BitVector() = default;

  /// All-zero vector of `size` bits.
  explicit BitVector(std::size_t size);

  /// Vector of `size` bits initialized from the low bits of `value`.
  BitVector(std::size_t size, std::uint64_t value);

  /// Builds from a string of '0'/'1' characters, most significant bit first
  /// (so "1010" has bit 3 = 1, bit 1 = 1).  Throws std::invalid_argument on
  /// any other character.
  static BitVector from_string(const std::string& bits);

  /// Builds a `size`-bit vector with uniformly random contents drawn by
  /// calling `next_word()` for each 64-bit chunk.
  template <typename Rng>
  static BitVector random(std::size_t size, Rng& rng) {
    BitVector v(size);
    for (auto& word : v.words_) word = rng.next();
    v.mask_tail();
    return v;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Number of set bits.
  std::size_t popcount() const;

  /// Hamming distance to another vector of the same size.
  /// Throws std::invalid_argument on size mismatch.
  std::size_t hamming_distance(const BitVector& other) const;

  /// Bitwise operations (sizes must match).
  BitVector& operator^=(const BitVector& other);
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }
  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }

  bool operator==(const BitVector& other) const = default;

  /// Returns bits [offset, offset+count) as a new vector.
  BitVector slice(std::size_t offset, std::size_t count) const;

  /// Concatenation: result holds *this in the low bits, `hi` above them.
  BitVector concat(const BitVector& hi) const;

  /// Low min(size, 64) bits as a word.
  std::uint64_t to_u64() const;

  /// Raw 64-bit words (little-endian bit order, tail bits zero).
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Word `i` (bits [64*i, 64*i+64)); reads past size() are zero-filled by
  /// construction, indexes past words().size() are an error.
  std::uint64_t word(std::size_t i) const { return words_[i]; }

  /// Overwrites word `i`; bits beyond size() in the last word are masked
  /// off so the tail-is-zero invariant every word-wise consumer relies on
  /// (popcount, hamming_distance, operator==) survives bulk imports.
  void set_word(std::size_t i, std::uint64_t value);

  /// MSB-first '0'/'1' string.
  std::string to_string() const;

  /// Parity (XOR of all bits).
  bool parity() const { return popcount() % 2 != 0; }

 private:
  void mask_tail();
  void check_index(std::size_t i) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// In-place transpose of a 64x64 bit matrix held as 64 row words: bit c of
/// row r moves to bit r of row c.  This is the primitive behind bit-sliced
/// ("64 lanes per word") evaluation — packing 64 same-length BitVectors
/// into per-bit lane words and back is a sequence of these block
/// transposes instead of 4096 single-bit probes.
void transpose_64x64(std::uint64_t m[64]);

/// Packs one block of up to 64 equal-length BitVectors into bit-column
/// words: for every bit index i in [0, nbits), `out[i * stride]` receives
/// the word whose bit l is `vecs[l].get(i)`.  Lanes beyond `count` are
/// zero.  Every vector must have exactly `nbits` bits
/// (std::invalid_argument otherwise); `count` must be <= 64.
void pack_bit_columns(const BitVector* vecs, std::size_t count,
                      std::size_t nbits, std::uint64_t* out,
                      std::size_t stride);

/// Inverse of pack_bit_columns: reads the word at `in[i * stride]` for
/// every bit index i in [0, nbits) and writes bit i of vecs[0..count).
/// Every destination vector must have exactly `nbits` bits; `count` must
/// be <= 64.  Lane bits beyond `count` in the input words are ignored.
void unpack_bit_columns(const std::uint64_t* in, std::size_t nbits,
                        std::size_t stride, BitVector* vecs,
                        std::size_t count);

}  // namespace pufatt::support
