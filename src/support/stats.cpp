#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace pufatt::support {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double LogScale::upper_edge(std::size_t bucket) const {
  if (bucket + 1 >= buckets) return std::numeric_limits<double>::infinity();
  double edge = first_edge;
  for (std::size_t i = 0; i < bucket; ++i) edge *= base;
  return edge;
}

std::size_t LogScale::bucket_for(double value) const {
  double edge = first_edge;
  for (std::size_t i = 0; i + 1 < buckets; ++i) {
    if (value < edge) return i;
    edge *= base;
  }
  return buckets - 1;
}

std::size_t bucket_quantile(const std::uint64_t* counts, std::size_t num_bins,
                            std::uint64_t total, double q) {
  if (total == 0 || num_bins == 0) return 0;
  const double target = q * static_cast<double>(total);
  double acc = 0.0;
  for (std::size_t i = 0; i < num_bins; ++i) {
    acc += static_cast<double>(counts[i]);
    if (acc >= target) return i;
  }
  return num_bins - 1;
}

Histogram::Histogram(std::size_t num_bins) : bins_(num_bins, 0) {}

void Histogram::add(std::size_t value) {
  if (bins_.empty()) return;
  if (value >= bins_.size()) {
    value = bins_.size() - 1;
    ++clamped_;
  }
  ++bins_[value];
  ++total_;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    sum += static_cast<double>(i) * static_cast<double>(bins_[i]);
  }
  return sum / static_cast<double>(total_);
}

double Histogram::stddev() const {
  if (total_ == 0) return 0.0;
  const double mu = mean();
  double sum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double d = static_cast<double>(i) - mu;
    sum += d * d * static_cast<double>(bins_[i]);
  }
  return std::sqrt(sum / static_cast<double>(total_));
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bins_.at(i)) / static_cast<double>(total_);
}

std::size_t Histogram::quantile(double q) const {
  return bucket_quantile(bins_.data(), bins_.size(), total_, q);
}

std::string Histogram::render(const std::string& label,
                              std::size_t max_width) const {
  std::ostringstream out;
  out << label << "  (n=" << total_ << ", mean=" << mean()
      << ", sd=" << stddev() << ")\n";
  std::uint64_t peak = 0;
  for (const auto b : bins_) peak = std::max(peak, b);
  if (peak == 0) peak = 1;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    const auto width = static_cast<std::size_t>(
        static_cast<double>(bins_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out << "  " << (i < 10 ? " " : "") << i << " | "
        << std::string(std::max<std::size_t>(width, 1), '#') << "  "
        << bins_[i] << "\n";
  }
  return out.str();
}

}  // namespace pufatt::support
