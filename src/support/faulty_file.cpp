#include "support/faulty_file.hpp"

#include <cerrno>
#include <cstdio>

#include <unistd.h>

namespace pufatt::support {

FaultyFile& FaultyFile::instance() {
  static FaultyFile singleton;
  return singleton;
}

void FaultyFile::arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
  crashed_ = false;
  bytes_ = 0;
  writes_ = 0;
  fsyncs_ = 0;
  renames_ = 0;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultyFile::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  plan_ = FaultPlan{};
  crashed_ = false;
}

bool FaultyFile::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

std::uint64_t FaultyFile::bytes_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::FILE* io_fopen(const char* path, const char* mode) {
  FaultyFile& ff = FaultyFile::instance();
  if (ff.armed()) {
    std::lock_guard<std::mutex> lock(ff.mutex_);
    if (ff.crashed_) {
      // A killed process creates no files.  Hand back a /dev/null stream
      // so the caller's later (suppressed) writes have somewhere to not
      // go, without a new segment/tmp file ever appearing on disk.
      return std::fopen("/dev/null", mode);
    }
  }
  return std::fopen(path, mode);
}

std::size_t io_fwrite(const void* data, std::size_t size, std::FILE* file) {
  FaultyFile& ff = FaultyFile::instance();
  if (!ff.armed()) {
    return std::fwrite(data, 1, size, file);
  }
  std::lock_guard<std::mutex> lock(ff.mutex_);
  if (ff.crashed_) {
    return size;  // pretend success; a killed process persists nothing new
  }
  ff.writes_ += 1;
  if (ff.plan_.crash_after_bytes != 0 &&
      ff.bytes_ + size >= ff.plan_.crash_after_bytes) {
    const std::size_t keep =
        static_cast<std::size_t>(ff.plan_.crash_after_bytes - ff.bytes_);
    if (keep > 0) {
      std::fwrite(data, 1, keep, file);
    }
    ff.bytes_ = ff.plan_.crash_after_bytes;
    ff.crashed_ = true;
    return size;  // the "process" does not notice the kill
  }
  if (ff.plan_.short_write_at != 0 && ff.writes_ == ff.plan_.short_write_at) {
    const std::size_t keep =
        ff.plan_.short_write_keep < size
            ? static_cast<std::size_t>(ff.plan_.short_write_keep)
            : size;
    if (keep > 0) {
      std::fwrite(data, 1, keep, file);
    }
    ff.bytes_ += keep;
    return keep;
  }
  const std::size_t wrote = std::fwrite(data, 1, size, file);
  ff.bytes_ += wrote;
  return wrote;
}

int io_fflush(std::FILE* file) {
  FaultyFile& ff = FaultyFile::instance();
  if (ff.armed()) {
    std::lock_guard<std::mutex> lock(ff.mutex_);
    if (ff.crashed_) {
      return 0;
    }
  }
  return std::fflush(file);
}

int io_fsync(int fd) {
  FaultyFile& ff = FaultyFile::instance();
  if (ff.armed()) {
    std::lock_guard<std::mutex> lock(ff.mutex_);
    if (ff.crashed_) {
      return 0;
    }
    ff.fsyncs_ += 1;
    if (ff.plan_.fsync_error_at != 0 &&
        ff.fsyncs_ == ff.plan_.fsync_error_at) {
      errno = EIO;
      return -1;
    }
  }
  return ::fsync(fd);
}

int io_rename(const char* from, const char* to) {
  FaultyFile& ff = FaultyFile::instance();
  if (ff.armed()) {
    std::lock_guard<std::mutex> lock(ff.mutex_);
    if (ff.crashed_) {
      return 0;
    }
    ff.renames_ += 1;
    if (ff.plan_.rename_error_at != 0 &&
        ff.renames_ == ff.plan_.rename_error_at) {
      errno = EIO;
      return -1;
    }
    if (ff.plan_.torn_rename_at != 0 &&
        ff.renames_ == ff.plan_.torn_rename_at) {
      // Power-loss image: the rename became durable before the source's
      // data blocks did, so the named file survives with only part of
      // its contents.
      std::FILE* probe = std::fopen(from, "rb");
      long half = 0;
      if (probe != nullptr) {
        std::fseek(probe, 0, SEEK_END);
        half = std::ftell(probe) / 2;
        std::fclose(probe);
      }
      ::truncate(from, half);
      return std::rename(from, to);
    }
  }
  return std::rename(from, to);
}

int io_remove(const char* path) {
  FaultyFile& ff = FaultyFile::instance();
  if (ff.armed()) {
    std::lock_guard<std::mutex> lock(ff.mutex_);
    if (ff.crashed_) {
      return 0;
    }
  }
  return std::remove(path);
}

}  // namespace pufatt::support
