// Minimal ASCII table printer: every bench binary prints its results as a
// table mirroring the corresponding table/figure in the paper.
#pragma once

#include <string>
#include <vector>

namespace pufatt::support {

/// Accumulates rows of strings and renders them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the row may have fewer cells than the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string num(double value, int precision = 2);

  /// Renders the table with a header separator line.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pufatt::support
