#include "support/rng.hpp"

#include <bit>
#include <cmath>

namespace pufatt::support {

namespace {

// Ziggurat layout for the standard normal (Doornik, "An improved ziggurat
// method to generate normal random samples", 2005): 128 layers of equal
// area kZigV under exp(-x^2/2), tail cut at kZigR.  Built once at load
// from the same libm the rest of the generator suite already relies on.
constexpr int kZigLayers = 128;
constexpr double kZigR = 3.442619855899;
constexpr double kZigV = 9.91256303526217e-3;

struct ZigTables {
  double x[kZigLayers + 1];  ///< layer right edges; x[0] spans the base box
  double ratio[kZigLayers];  ///< x[i+1]/x[i]: the rejection-free bound
  ZigTables() {
    x[0] = kZigV / std::exp(-0.5 * kZigR * kZigR);
    x[1] = kZigR;
    x[kZigLayers] = 0.0;
    for (int i = 2; i < kZigLayers; ++i) {
      x[i] = std::sqrt(-2.0 * std::log(kZigV / x[i - 1] +
                                       std::exp(-0.5 * x[i - 1] * x[i - 1])));
    }
    for (int i = 0; i < kZigLayers; ++i) ratio[i] = x[i + 1] / x[i];
  }
};
const ZigTables kZig;

}  // namespace

std::uint64_t SplitMix64::next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  return mix(state_);
}

std::uint64_t SplitMix64::mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // An all-zero state is a fixed point of xoshiro; SplitMix64 cannot emit
  // four consecutive zeros, so no further check is needed.
}

std::uint64_t Xoshiro256pp::next() {
  const std::uint64_t result = std::rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Xoshiro256pp::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256pp::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256pp::uniform_u64(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling on the top bits: unbiased and portable.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256pp::gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 6.283185307179586476925286766559 * u2;
  cached_gaussian_ = radius * std::sin(angle);
  have_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Xoshiro256pp::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

double Xoshiro256pp::gaussian_fast() {
  for (;;) {
    // One next() yields both the layer index (low 7 bits) and the signed
    // position u in [-1, 1) (top 53 bits) — disjoint bit ranges, so the
    // two are independent.
    const std::uint64_t bits = next();
    const int layer = static_cast<int>(bits & (kZigLayers - 1));
    const double u =
        2.0 * (static_cast<double>(bits >> 11) * 0x1.0p-53) - 1.0;
    if (std::abs(u) < kZig.ratio[layer]) return u * kZig.x[layer];  // ~97.5%
    if (layer == 0) {
      // Tail beyond kZigR (Marsaglia's exponential-majorant method).
      double tx;
      double ty;
      do {
        double u1 = 0.0;
        do { u1 = uniform(); } while (u1 <= 0.0);
        double u2 = 0.0;
        do { u2 = uniform(); } while (u2 <= 0.0);
        tx = std::log(u1) / kZigR;
        ty = std::log(u2);
      } while (-2.0 * ty < tx * tx);
      return u < 0.0 ? tx - kZigR : kZigR - tx;
    }
    // Wedge between layers: accept against the true density gap.
    const double val = u * kZig.x[layer];
    const double f0 =
        std::exp(-0.5 * (kZig.x[layer] * kZig.x[layer] - val * val));
    const double f1 =
        std::exp(-0.5 * (kZig.x[layer + 1] * kZig.x[layer + 1] - val * val));
    if (f1 + uniform() * (f0 - f1) < 1.0) return val;
  }
}

void Xoshiro256pp::gaussian_fill(double* out, std::size_t n, double mean,
                                 double stddev) {
  for (std::size_t i = 0; i < n; ++i) out[i] = mean + stddev * gaussian_fast();
}

bool Xoshiro256pp::bernoulli(double p) { return uniform() < p; }

Xoshiro256pp Xoshiro256pp::split() { return Xoshiro256pp(next()); }

}  // namespace pufatt::support
