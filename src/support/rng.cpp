#include "support/rng.hpp"

#include <bit>
#include <cmath>

namespace pufatt::support {

std::uint64_t SplitMix64::next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  return mix(state_);
}

std::uint64_t SplitMix64::mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // An all-zero state is a fixed point of xoshiro; SplitMix64 cannot emit
  // four consecutive zeros, so no further check is needed.
}

std::uint64_t Xoshiro256pp::next() {
  const std::uint64_t result = std::rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Xoshiro256pp::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256pp::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256pp::uniform_u64(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling on the top bits: unbiased and portable.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256pp::gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 6.283185307179586476925286766559 * u2;
  cached_gaussian_ = radius * std::sin(angle);
  have_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Xoshiro256pp::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool Xoshiro256pp::bernoulli(double p) { return uniform() < p; }

Xoshiro256pp Xoshiro256pp::split() { return Xoshiro256pp(next()); }

}  // namespace pufatt::support
