#include "support/fsyncutil.hpp"

#include <fcntl.h>
#include <unistd.h>

namespace pufatt::support {

void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

void fsync_dir(const std::string& dir) { fsync_path(dir); }

void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  fsync_dir(slash == std::string::npos ? "." : path.substr(0, slash));
}

}  // namespace pufatt::support
