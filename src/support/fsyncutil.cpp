#include "support/fsyncutil.hpp"

#include <fcntl.h>
#include <unistd.h>

#include "support/faulty_file.hpp"

namespace pufatt::support {

void fsync_path(const std::string& path) { (void)try_fsync_path(path); }

bool try_fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return false;
  }
  const int rc = io_fsync(fd);
  ::close(fd);
  return rc == 0;
}

void fsync_dir(const std::string& dir) { fsync_path(dir); }

void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  fsync_dir(slash == std::string::npos ? "." : path.substr(0, slash));
}

}  // namespace pufatt::support
