# Thread-count determinism check for `pufatt-cli gen-crps`: the CSV must be
# byte-identical whether the shards run on 1 worker or 3 (the shard RNGs and
# block boundaries are thread-count independent by construction).  700 CRPs
# = three blocks of 256 including an uneven tail.
#
# Invoked by ctest with -DCLI=<pufatt-cli> -DOUT1=... -DOUT2=....
execute_process(COMMAND ${CLI} gen-crps 77 700 1 ${OUT1}
                RESULT_VARIABLE r1)
execute_process(COMMAND ${CLI} gen-crps 77 700 3 ${OUT2}
                RESULT_VARIABLE r2)
if(NOT r1 EQUAL 0 OR NOT r2 EQUAL 0)
  message(FATAL_ERROR "gen-crps exited nonzero (1-thread: ${r1}, "
                      "3-thread: ${r2})")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT1} ${OUT2}
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "gen-crps output differs between 1 and 3 threads")
endif()
