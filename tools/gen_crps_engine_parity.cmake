# Engine-independence check for `pufatt-cli gen-crps --engine=...`: the
# scalar reference, the SoA batch engine and the bit-sliced engine must all
# emit byte-identical CSVs.  The batch_seed draw and the per-lane RNG
# derivation happen before engine dispatch, and the exactness contract makes
# every engine compute the same settle-time doubles, so any divergence here
# is a kernel bug, not noise.  300 CRPs = one full 256-block (2400 raw
# lanes, well past the 64-lane bit-slice threshold) plus an uneven tail
# block of 44.
#
# Invoked by ctest with -DCLI=<pufatt-cli> -DOUTDIR=<dir>.
foreach(engine scalar batch bitslice)
  execute_process(COMMAND ${CLI} gen-crps 77 300 2
                          ${OUTDIR}/gen_crps_${engine}.csv
                          --engine=${engine}
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "gen-crps --engine=${engine} exited ${rc}")
  endif()
endforeach()
foreach(engine batch bitslice)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          ${OUTDIR}/gen_crps_scalar.csv
                          ${OUTDIR}/gen_crps_${engine}.csv
                  RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
            "gen-crps --engine=${engine} output differs from scalar")
  endif()
endforeach()
