# End-to-end observability pipeline check: a traced serve-demo run must
# produce (a) a Chrome trace_event file that trace-report can parse and
# summarize into the expected stages, and (b) a metrics snapshot carrying
# the service counters.  This is the operator workflow from the README,
# run small.
#
# Invoked by ctest with -DCLI=<pufatt-cli> -DTRACE=... -DJSONL=...
# -DMETRICS=....
execute_process(COMMAND ${CLI} serve-demo 2 12 3
                        --trace-out=${TRACE}
                        --trace-jsonl=${JSONL}
                        --metrics-out=${METRICS}
                RESULT_VARIABLE demo_result
                OUTPUT_VARIABLE demo_output)
if(NOT demo_result EQUAL 0)
  message(FATAL_ERROR "traced serve-demo exited ${demo_result}")
endif()

foreach(out ${TRACE} ${JSONL} ${METRICS})
  if(NOT EXISTS ${out})
    message(FATAL_ERROR "serve-demo did not write ${out}")
  endif()
endforeach()

file(READ ${METRICS} metrics_json)
foreach(metric service.submitted service.accepted service.cache.misses
               service.latency_us.accepted sim.batches)
  if(NOT metrics_json MATCHES "\"${metric}\"")
    message(FATAL_ERROR "metrics snapshot lacks ${metric}: ${metrics_json}")
  endif()
endforeach()

# trace-report must digest the trace_event format (not just our JSONL).
foreach(input ${TRACE} ${JSONL})
  execute_process(COMMAND ${CLI} trace-report ${input}
                  RESULT_VARIABLE report_result
                  OUTPUT_VARIABLE report)
  if(NOT report_result EQUAL 0)
    message(FATAL_ERROR "trace-report ${input} exited ${report_result}")
  endif()
  foreach(stage pool.job pool.queue_wait pool.verify cache.acquire
                cache.build session.run session.attempt sim.run_batch
                channel_rtt_us delta_margin_us)
    if(NOT report MATCHES "${stage}")
      message(FATAL_ERROR "trace-report on ${input} lacks ${stage}:\n${report}")
    endif()
  endforeach()
endforeach()
