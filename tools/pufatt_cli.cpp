// pufatt-cli: operator tooling around the library.
//
//   pufatt-cli enroll <chip-seed> <record.bin>     manufacture + enroll a die
//   pufatt-cli inspect <record.bin>                summarize a record
//   pufatt-cli attest <chip-seed> <record.bin>     run one attestation
//   pufatt-cli disasm <record.bin>                 list the attested program
//
// The "device" is simulated (chip-seed = fab lottery), but the data flow is
// the real deployment one: enrollment produces a record file, the verifier
// later loads it and talks to the device.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/protocol.hpp"
#include "core/serialize.hpp"
#include "cpu/disassembler.hpp"
#include "ecc/reed_muller.hpp"

using namespace pufatt;

namespace {

const ecc::ReedMuller1& code() {
  static const ecc::ReedMuller1 instance(5);
  return instance;
}

int cmd_enroll(std::uint64_t chip_seed, const std::string& path) {
  const auto profile = core::DeviceProfile::standard();
  const alupuf::PufDevice device(profile.puf_config, chip_seed, code());
  // Ship a deterministic demo firmware image.
  std::vector<std::uint32_t> firmware(2500);
  for (std::size_t i = 0; i < firmware.size(); ++i) {
    firmware[i] = static_cast<std::uint32_t>(
        support::SplitMix64::mix(chip_seed + i));
  }
  const auto record = core::enroll(
      device, profile, core::make_enrolled_image(profile, firmware));
  core::save_record_file(path, record);
  std::printf("enrolled chip %llu -> %s\n",
              static_cast<unsigned long long>(chip_seed), path.c_str());
  std::printf("  attested words : %zu\n", record.enrolled_image.size());
  std::printf("  honest cycles  : %llu\n",
              static_cast<unsigned long long>(record.honest_cycles));
  std::printf("  base clock     : %.1f MHz\n", record.profile.base_clock_mhz);
  return 0;
}

int cmd_inspect(const std::string& path) {
  const auto record = core::load_record_file(path);
  std::printf("enrollment record %s\n", path.c_str());
  std::printf("  PUF width        : %zu bits\n",
              record.profile.puf_config.width);
  std::printf("  delay table      : %zu gates\n",
              record.model.intrinsic_ps.size());
  std::printf("  SWAT rounds      : %u (PUF every %u)\n",
              record.profile.swat.rounds, record.profile.swat.puf_interval);
  std::printf("  attested region  : %u words\n",
              record.profile.swat.attest_words);
  std::printf("  honest cycles    : %llu\n",
              static_cast<unsigned long long>(record.honest_cycles));
  std::printf("  base clock       : %.1f MHz\n",
              record.profile.base_clock_mhz);
  return 0;
}

int cmd_attest(std::uint64_t chip_seed, const std::string& path) {
  const auto record = core::load_record_file(path);
  const alupuf::PufDevice device(record.profile.puf_config, chip_seed, code());
  const core::Verifier verifier(record, code());
  support::Xoshiro256pp rng(support::SplitMix64::mix(chip_seed));
  core::CpuProver prover(device, record, core::CpuProver::Variant::kHonest,
                         chip_seed ^ 0xA77E57);
  const core::Channel channel;
  const auto request = verifier.make_request(rng);
  const auto outcome = prover.respond(request);
  const auto result = verifier.verify(
      request, outcome.response,
      outcome.compute_us +
          channel.round_trip_us(8, outcome.response.wire_bytes()));
  std::printf("attestation of chip %llu against %s: %s\n",
              static_cast<unsigned long long>(chip_seed), path.c_str(),
              core::to_string(result.status));
  std::printf("  elapsed %.0f us, deadline %.0f us, %zu helper words\n",
              result.elapsed_us, result.deadline_us,
              outcome.response.helper_words.size());
  return result.accepted() ? 0 : 2;
}

int cmd_disasm(const std::string& path) {
  const auto record = core::load_record_file(path);
  // The program occupies the image up to the first halt; list a prefix.
  std::vector<std::uint32_t> prefix;
  for (const auto word : record.enrolled_image) {
    prefix.push_back(word);
    try {
      if (cpu::decode(word).op == cpu::Opcode::kHalt) break;
    } catch (const std::invalid_argument&) {
      break;  // data region reached
    }
  }
  std::fputs(cpu::disassemble_program(prefix).c_str(), stdout);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: pufatt-cli enroll <chip-seed> <record.bin>\n"
               "       pufatt-cli inspect <record.bin>\n"
               "       pufatt-cli attest <chip-seed> <record.bin>\n"
               "       pufatt-cli disasm <record.bin>\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "enroll" && argc == 4) {
      return cmd_enroll(std::strtoull(argv[2], nullptr, 0), argv[3]);
    }
    if (cmd == "inspect" && argc == 3) return cmd_inspect(argv[2]);
    if (cmd == "attest" && argc == 4) {
      return cmd_attest(std::strtoull(argv[2], nullptr, 0), argv[3]);
    }
    if (cmd == "disasm" && argc == 3) return cmd_disasm(argv[2]);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
