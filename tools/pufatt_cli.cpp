// pufatt-cli: operator tooling around the library.
//
//   pufatt-cli enroll <chip-seed> <record.bin>     manufacture + enroll a die
//   pufatt-cli inspect <record.bin>                summarize a record
//   pufatt-cli attest <chip-seed> <record.bin>     run one attestation
//   pufatt-cli disasm <record.bin>                 list the attested program
//   pufatt-cli serve-demo [workers] [sessions] [devices]
//              [--trace-out=<f>] [--trace-jsonl=<f>] [--metrics-out=<f>]
//              [--trace-sample=<r>]                 run the concurrent service
//   pufatt-cli serve <endpoint> [--workers=N] [--queue=N] [--devices=N]
//              [--fleet-seed=S] [--idle-timeout-ms=X] [--max-jobs=N]
//              [--trace-out=<f>] [--trace-jsonl=<f>] [--metrics-out=<f>]
//              [--trace-sample=<r>] [--metrics-jsonl=<f>]
//              [--stats-interval-ms=X]             serve attestation over a
//                                                  socket (tcp:HOST:PORT,
//                                                  port 0 = ephemeral, or
//                                                  unix:PATH) until SIGINT
//                                                  or N verdicts
//   pufatt-cli loadgen <endpoint> [--connections=N] [--jobs=N] [--devices=N]
//              [--max-busy-retries=N] [--max-retry-wait-ms=X]
//              [--trace-out=<f>] [--trace-jsonl=<f>] [--trace-sample=<r>]
//                                                  drive a simulated fleet
//                                                  against a running server
//   pufatt-cli fleet-stats <endpoint> [--watch-ms=X] [--samples=N]
//                                                  poll a live server's stats
//                                                  frame (one-shot JSON, or
//                                                  interval mode with delta
//                                                  rates)
//   pufatt-cli trace-report <trace-file>...        aggregate an exported
//                                                  trace; N files (client +
//                                                  server) are merged into
//                                                  cross-process timelines
//   pufatt-cli gen-crps <chip-seed> <count> <threads> <out.csv>
//              [--engine={auto,scalar,batch,bitslice}]
//                                                  dump protocol CRPs (batched)
//   pufatt-cli store-inspect <store-dir>           recover + summarize a store
//                                                  (sharded stores print every
//                                                  shard plus fleet totals)
//   pufatt-cli store-compact <store-dir> [--segment-bytes=<n>]
//                                                  fold the WAL into a snapshot
//   pufatt-cli store-replicate <primary-dir> <follower-dir>
//                                                  ship the primary's WAL tail
//                                                  to a follower (incremental)
//   pufatt-cli store-promote <follower-dir> [--from=<primary-dir>]
//                                                  fail over: optional final
//                                                  ship, then recover the
//                                                  follower as the new store
//
// The "device" is simulated (chip-seed = fab lottery), but the data flow is
// the real deployment one: enrollment produces a record file, the verifier
// later loads it and talks to the device.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "adversary/tournament.hpp"
#include "alupuf/pipeline.hpp"
#include "core/distributed.hpp"
#include "core/protocol.hpp"
#include "core/serialize.hpp"
#include "cpu/disassembler.hpp"
#include "ecc/reed_muller.hpp"
#include "net/fleet.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_merge.hpp"
#include "obs/trace_read.hpp"
#include "service/device_registry.hpp"
#include "service/emulator_cache.hpp"
#include "service/verifier_pool.hpp"
#include "store/records.hpp"
#include "store/recovery.hpp"
#include "store/replication.hpp"
#include "store/sharded_store.hpp"
#include "store/verifier_store.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

using namespace pufatt;

namespace {

const ecc::ReedMuller1& code() {
  static const ecc::ReedMuller1 instance(5);
  return instance;
}

int usage() {
  std::fprintf(stderr,
               "usage: pufatt-cli enroll <chip-seed> <record.bin>\n"
               "       pufatt-cli inspect <record.bin>\n"
               "       pufatt-cli attest <chip-seed> <record.bin>\n"
               "       pufatt-cli disasm <record.bin>\n"
               "       pufatt-cli serve-demo [workers] [sessions] [devices]\n"
               "                  [--trace-out=<trace.json>]   Chrome "
               "trace_event export\n"
               "                  [--trace-jsonl=<spans.jsonl>] line-oriented "
               "span export\n"
               "                  [--metrics-out=<metrics.json>] registry "
               "snapshot\n"
               "                  [--trace-sample=<rate>]      root-span "
               "sampling in [0,1]\n"
               "       pufatt-cli serve <endpoint> [--workers=<n>] "
               "[--queue=<n>]\n"
               "                  [--devices=<n>] [--fleet-seed=<s>]\n"
               "                  [--idle-timeout-ms=<x>] [--max-jobs=<n>]\n"
               "                  [--trace-out=<f>] [--trace-jsonl=<f>]\n"
               "                  [--metrics-out=<f>] [--trace-sample=<r>]\n"
               "                  [--metrics-jsonl=<f>] "
               "[--stats-interval-ms=<x>]\n"
               "       pufatt-cli loadgen <endpoint> [--connections=<n>] "
               "[--jobs=<n>]\n"
               "                  [--devices=<n>] [--max-busy-retries=<n>]\n"
               "                  [--max-retry-wait-ms=<x>] "
               "[--trace-out=<f>]\n"
               "                  [--trace-jsonl=<f>] [--trace-sample=<r>]\n"
               "       pufatt-cli fleet-stats <endpoint> [--watch-ms=<x>] "
               "[--samples=<n>]\n"
               "       pufatt-cli trace-report <trace-file>...\n"
               "       pufatt-cli gen-crps <chip-seed> <count> <threads> "
               "<out.csv>\n"
               "                  [--engine={auto,scalar,batch,bitslice}]  "
               "timing kernel\n"
               "       pufatt-cli attack-matrix [--quick] [--seed=<s>] "
               "[--threads=<n>]\n"
               "                  [--engine={auto,scalar,batch,bitslice}] "
               "[--out=<matrix.json>]\n"
               "       pufatt-cli store-inspect <store-dir>\n"
               "       pufatt-cli store-compact <store-dir> "
               "[--segment-bytes=<n>]\n"
               "       pufatt-cli store-replicate <primary-dir> "
               "<follower-dir>\n"
               "       pufatt-cli store-promote <follower-dir> "
               "[--from=<primary-dir>]\n");
  return 64;
}

/// Strict decimal/hex u64 parse; rejects trailing garbage, empty strings
/// and overflow ("12x" or "" must not silently read as 0).
bool parse_u64(const char* text, std::uint64_t& value) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 0);
  if (errno != 0 || end == text || *end != '\0') return false;
  value = parsed;
  return true;
}

int bad_argument(const char* what, const char* got) {
  std::fprintf(stderr, "error: malformed %s '%s'\n", what, got);
  return usage();
}

/// Strict engine-selector parse: exact names only, same reject-don't-guess
/// contract as parse_u64.  All engines produce byte-identical output (the
/// exactness contract has a crosscheck gate), so the flag only trades speed.
bool parse_engine(const std::string& name, timingsim::BatchEngine& engine) {
  if (name == "auto") {
    engine = timingsim::BatchEngine::kAuto;
  } else if (name == "scalar") {
    engine = timingsim::BatchEngine::kScalar;
  } else if (name == "batch") {
    engine = timingsim::BatchEngine::kBatch;
  } else if (name == "bitslice") {
    engine = timingsim::BatchEngine::kBitslice;
  } else {
    return false;
  }
  return true;
}

const char* engine_name(timingsim::BatchEngine engine) {
  switch (engine) {
    case timingsim::BatchEngine::kScalar:
      return "scalar";
    case timingsim::BatchEngine::kBatch:
      return "batch";
    case timingsim::BatchEngine::kBitslice:
      return "bitslice";
    default:
      return "auto";
  }
}

/// Strict double parse, same contract as parse_u64.
bool parse_f64(const char* text, double& value) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  value = parsed;
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), out) == content.size();
  std::fclose(out);
  if (!ok) std::fprintf(stderr, "error: short write to '%s'\n", path.c_str());
  return ok;
}

bool read_file(const std::string& path, std::string& content) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return false;
  }
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    content.append(buffer, got);
  }
  const bool ok = std::ferror(in) == 0;
  std::fclose(in);
  if (!ok) std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
  return ok;
}

int cmd_enroll(std::uint64_t chip_seed, const std::string& path) {
  const auto profile = core::DeviceProfile::standard();
  const alupuf::PufDevice device(profile.puf_config, chip_seed, code());
  // Ship a deterministic demo firmware image.
  std::vector<std::uint32_t> firmware(2500);
  for (std::size_t i = 0; i < firmware.size(); ++i) {
    firmware[i] = static_cast<std::uint32_t>(
        support::SplitMix64::mix(chip_seed + i));
  }
  const auto record = core::enroll(
      device, profile, core::make_enrolled_image(profile, firmware));
  core::save_record_file(path, record);
  std::printf("enrolled chip %llu -> %s\n",
              static_cast<unsigned long long>(chip_seed), path.c_str());
  std::printf("  attested words : %zu\n", record.enrolled_image.size());
  std::printf("  honest cycles  : %llu\n",
              static_cast<unsigned long long>(record.honest_cycles));
  std::printf("  base clock     : %.1f MHz\n", record.profile.base_clock_mhz);
  return 0;
}

int cmd_inspect(const std::string& path) {
  const auto record = core::load_record_file(path);
  std::printf("enrollment record %s\n", path.c_str());
  std::printf("  PUF width        : %zu bits\n",
              record.profile.puf_config.width);
  std::printf("  delay table      : %zu gates\n",
              record.model.intrinsic_ps.size());
  std::printf("  SWAT rounds      : %u (PUF every %u)\n",
              record.profile.swat.rounds, record.profile.swat.puf_interval);
  std::printf("  attested region  : %u words\n",
              record.profile.swat.attest_words);
  std::printf("  honest cycles    : %llu\n",
              static_cast<unsigned long long>(record.honest_cycles));
  std::printf("  base clock       : %.1f MHz\n",
              record.profile.base_clock_mhz);
  return 0;
}

int cmd_attest(std::uint64_t chip_seed, const std::string& path) {
  const auto record = core::load_record_file(path);
  const alupuf::PufDevice device(record.profile.puf_config, chip_seed, code());
  const core::Verifier verifier(record, code());
  support::Xoshiro256pp rng(support::SplitMix64::mix(chip_seed));
  core::CpuProver prover(device, record, core::CpuProver::Variant::kHonest,
                         chip_seed ^ 0xA77E57);
  const core::Channel channel;
  const auto request = verifier.make_request(rng);
  const auto outcome = prover.respond(request);
  const auto result = verifier.verify(
      request, outcome.response,
      outcome.compute_us +
          channel.round_trip_us(8, outcome.response.wire_bytes()));
  std::printf("attestation of chip %llu against %s: %s\n",
              static_cast<unsigned long long>(chip_seed), path.c_str(),
              core::to_string(result.status));
  std::printf("  elapsed %.0f us, deadline %.0f us, %zu helper words\n",
              result.elapsed_us, result.deadline_us,
              outcome.response.helper_words.size());
  return result.accepted() ? 0 : 2;
}

int cmd_disasm(const std::string& path) {
  const auto record = core::load_record_file(path);
  // The program occupies the image up to the first halt; list a prefix.
  std::vector<std::uint32_t> prefix;
  for (const auto word : record.enrolled_image) {
    prefix.push_back(word);
    try {
      if (cpu::decode(word).op == cpu::Opcode::kHalt) break;
    } catch (const std::invalid_argument&) {
      break;  // data region reached
    }
  }
  std::fputs(cpu::disassemble_program(prefix).c_str(), stdout);
  return 0;
}

/// Observability outputs shared by serve-demo, serve and loadgen; all
/// optional.  serve additionally honours the live-telemetry pair
/// (metrics_jsonl + stats_interval_ms).
struct ServeDemoObs {
  std::string trace_out;      ///< Chrome trace_event JSON
  std::string trace_jsonl;    ///< line-oriented span export
  std::string metrics_out;    ///< registry snapshot JSON
  std::string metrics_jsonl;  ///< periodic stats snapshots (serve only)
  double trace_sample = 1.0;
  double stats_interval_ms = 250.0;

  bool tracing() const {
    return !trace_out.empty() || !trace_jsonl.empty() || !metrics_out.empty();
  }
};

// serve-demo: stand up the whole concurrent service in-process — enroll a
// small fleet, register it, then pump attestation jobs through the worker
// pool over a mildly lossy simulated radio and print the metrics.  One
// device answers with a tampered image so the rejected path shows up too.
int cmd_serve_demo(std::uint64_t workers, std::uint64_t sessions,
                   std::uint64_t devices, const ServeDemoObs& obs_out) {
  if (workers == 0 || sessions == 0 || devices == 0) {
    std::fprintf(stderr, "error: workers, sessions and devices must be > 0\n");
    return usage();
  }
  auto profile = core::DistributedParams::small_profile();

  std::printf("enrolling %llu devices...\n",
              static_cast<unsigned long long>(devices));
  support::Xoshiro256pp rng(0x5E47EDE40);
  std::vector<std::uint32_t> firmware(600);
  for (auto& w : firmware) w = static_cast<std::uint32_t>(rng.next());
  const auto image = core::make_enrolled_image(profile, firmware);

  service::DeviceRegistry registry;
  struct Fleet {
    std::unique_ptr<alupuf::PufDevice> device;
    core::EnrollmentRecord record;  ///< what the prover actually runs
    std::string id;
  };
  std::vector<Fleet> fleet(devices);
  for (std::uint64_t d = 0; d < devices; ++d) {
    fleet[d].id = "device-" + std::to_string(d);
    fleet[d].device = std::make_unique<alupuf::PufDevice>(
        profile.puf_config, 0xD1CE0000 + d, code());
    auto record = core::enroll(*fleet[d].device, profile, image);
    registry.store(fleet[d].id, record);
    fleet[d].record = std::move(record);
  }
  // The last device is compromised: it runs a tampered image against its
  // own (honest) enrollment record.
  auto& infected = fleet.back();
  for (std::size_t w = 700; w < 760 && w < infected.record.enrolled_image.size();
       ++w) {
    infected.record.enrolled_image[w] ^= 0xBAD0BAD0u;
  }

  service::EmulatorCache cache(registry, code(), devices);
  service::PoolConfig config;
  config.workers = workers;
  config.queue_capacity = 2 * workers;
  if (obs_out.tracing()) {
    // One tracer serves both layers: the pool parents its spans explicitly,
    // and the timing kernels' global-tracer spans land in the same export.
    obs::global_tracer().clear();
    obs::global_registry().reset();
    obs::set_global_trace(true, obs_out.trace_sample);
    config.tracer = &obs::global_tracer();
  }

  // Per-device accepted/rejected tallies, keyed by round-robin index.
  struct Tally {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
  };
  std::mutex tally_mutex;
  std::vector<Tally> tally(devices);
  service::VerifierPool pool(
      cache, config, [&](const service::JobResult& result) {
        std::lock_guard<std::mutex> lock(tally_mutex);
        auto& t = tally[result.tag % devices];
        if (result.outcome == service::JobOutcome::kAccepted) ++t.accepted;
        if (result.outcome == service::JobOutcome::kRejected) ++t.rejected;
      });

  core::FaultParams faults;
  faults.loss_prob = 0.02;

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t busy = 0;
  for (std::uint64_t s = 0; s < sessions; ++s) {
    const auto& target = fleet[s % devices];
    service::AttestationJob job;
    job.device_id = target.id;
    job.faults = faults;
    job.channel_seed = 0xC4A2 + 31 * s;
    job.rng_seed = 0x9E0 + 17 * s;
    job.tag = s;
    // Each job owns its prover (seeded per job): jobs never share mutable
    // prover state, and the same-device lease already serializes access to
    // the shared PufDevice underneath.
    auto prover = std::make_shared<core::CpuProver>(
        *target.device, target.record, core::CpuProver::Variant::kHonest,
        job.rng_seed ^ 0xF00D);
    job.responder = [prover](const core::AttestationRequest& request) {
      auto outcome = prover->respond(request);
      return core::ProverReply{std::move(outcome.response),
                               outcome.compute_us};
    };
    // Offered load exceeds capacity on purpose: show the backpressure
    // path, then retry the job after the suggested wait.
    auto submitted = pool.submit(job);
    while (submitted.status == service::SubmitStatus::kRejectedBusy) {
      ++busy;
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<long>(submitted.retry_after_us)));
      submitted = pool.submit(job);
    }
  }
  pool.drain();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto snap = pool.metrics_snapshot();

  bool exports_ok = true;
  if (obs_out.tracing()) {
    obs::set_global_trace(false);
    service::publish_metrics(snap, cache.counters(), obs::global_registry());
    if (!obs_out.metrics_out.empty()) {
      exports_ok &= write_file(obs_out.metrics_out,
                               obs::global_registry().snapshot_json() + "\n");
    }
    auto& tracer = obs::global_tracer();
    if (!obs_out.trace_out.empty()) {
      exports_ok &= write_file(obs_out.trace_out, tracer.to_trace_event());
    }
    if (!obs_out.trace_jsonl.empty()) {
      exports_ok &= write_file(obs_out.trace_jsonl, tracer.to_jsonl());
    }
    std::printf("trace: %zu spans recorded, %llu dropped (sample rate %g)\n",
                tracer.records().size(),
                static_cast<unsigned long long>(tracer.dropped()),
                obs_out.trace_sample);
  }

  std::printf("\n%llu sessions on %llu workers over %llu devices "
              "in %.2f s (%.1f sessions/s)\n",
              static_cast<unsigned long long>(sessions),
              static_cast<unsigned long long>(workers),
              static_cast<unsigned long long>(devices), wall_s,
              static_cast<double>(sessions) / wall_s);
  std::printf("client-side busy retries: %llu\n\n",
              static_cast<unsigned long long>(busy));
  std::fputs(snap.format().c_str(), stdout);

  // The security invariant: the tampered (last) device is NEVER accepted,
  // and if round-robin dispatch reached it at all, it was caught at least
  // once.  Honest devices may occasionally false-reject — that is the
  // PUF's intrinsic FNR (an availability cost the paper quantifies), not
  // a service defect — so it is reported, not failed on.
  const std::uint64_t infected_sessions = sessions / devices;
  const auto& infected_tally = tally.back();
  std::uint64_t honest_false_rejects = 0;
  for (std::uint64_t d = 0; d + 1 < devices; ++d) {
    honest_false_rejects += tally[d].rejected;
  }
  if (honest_false_rejects > 0) {
    std::printf("\nhonest false rejections (PUF noise): %llu\n",
                static_cast<unsigned long long>(honest_false_rejects));
  }
  const bool infected_ok =
      infected_tally.accepted == 0 &&
      (infected_sessions == 0 || infected_tally.rejected > 0);
  const bool ok = infected_ok && exports_ok &&
                  snap.accepted + snap.rejected + snap.inconclusive == sessions;
  std::printf("\n[%s] all sessions accounted; tampered device never "
              "accepted (%llu/%llu of its sessions rejected)\n",
              ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(infected_tally.rejected),
              static_cast<unsigned long long>(infected_sessions));
  return ok ? 0 : 1;
}

/// Nearest-rank percentile over a sorted sample; 0 on empty input.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// serve: the real network front end — SimFleet behind an AttestationServer
// on a TCP or Unix endpoint, until SIGINT/SIGTERM (or --max-jobs verdicts,
// for scripted runs).  The counterpart of `loadgen` below; together they
// are the two-terminal quickstart in the README.

std::atomic<bool> g_serve_interrupted{false};

void serve_signal_handler(int) { g_serve_interrupted.store(true); }

int cmd_serve(const net::Endpoint& endpoint, std::uint64_t workers,
              std::uint64_t queue, std::uint64_t devices,
              std::uint64_t fleet_seed, double idle_timeout_ms,
              std::uint64_t max_jobs, const ServeDemoObs& obs_out) {
  if (workers == 0 || devices == 0) {
    std::fprintf(stderr, "error: workers and devices must be > 0\n");
    return usage();
  }

  std::printf("enrolling %llu simulated devices...\n",
              static_cast<unsigned long long>(devices));
  std::fflush(stdout);
  net::SimFleet fleet(devices, fleet_seed);
  service::EmulatorCache cache(fleet.registry(), fleet.code(), fleet.size());

  net::ServerConfig config;
  config.endpoint = endpoint;
  config.pool.workers = workers;
  config.pool.queue_capacity = queue != 0 ? queue : 2 * workers;
  config.idle_timeout_ms = idle_timeout_ms;
  if (obs_out.tracing()) {
    // Same single-tracer setup as serve-demo: loop spans (net.*), pool
    // spans (pool.*, session.*) and any global-tracer store spans all
    // land in one export.
    obs::global_tracer().clear();
    obs::global_registry().reset();
    obs::set_global_trace(true, obs_out.trace_sample);
    config.tracer = &obs::global_tracer();
    config.pool.tracer = &obs::global_tracer();
  }
  // The stats frame and the metrics ticker work with or without tracing.
  config.registry = &obs::global_registry();
  config.metrics_jsonl = obs_out.metrics_jsonl;
  config.stats_interval_ms = obs_out.stats_interval_ms;
  net::AttestationServer server(
      cache,
      [&fleet](const net::JobRequest& request) {
        return fleet.responder_for(request.device_id, request.rng_seed);
      },
      config);

  // Scripts (and humans) need the resolved ephemeral port before any
  // client can connect, so this line prints — flushed — before serving.
  std::printf("listening on %s (%llu workers, queue %zu)\n",
              server.bound_endpoint().describe().c_str(),
              static_cast<unsigned long long>(workers),
              config.pool.queue_capacity);
  std::fflush(stdout);

  g_serve_interrupted.store(false);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);

  std::thread runner([&server] { server.run(); });
  for (;;) {
    if (g_serve_interrupted.load()) break;
    if (max_jobs != 0 && server.counters().verdicts_sent >= max_jobs) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  runner.join();

  bool exports_ok = true;
  if (obs_out.tracing()) {
    obs::set_global_trace(false);
    service::publish_metrics(server.pool().metrics_snapshot(),
                             cache.counters(), obs::global_registry());
    if (!obs_out.metrics_out.empty()) {
      exports_ok &= write_file(obs_out.metrics_out,
                               obs::global_registry().snapshot_json() + "\n");
    }
    auto& tracer = obs::global_tracer();
    if (!obs_out.trace_out.empty()) {
      exports_ok &= write_file(obs_out.trace_out, tracer.to_trace_event());
    }
    if (!obs_out.trace_jsonl.empty()) {
      exports_ok &= write_file(obs_out.trace_jsonl, tracer.to_jsonl());
    }
    std::printf("trace: %zu spans recorded, %llu dropped (sample rate %g)\n",
                tracer.records().size(),
                static_cast<unsigned long long>(tracer.dropped()),
                obs_out.trace_sample);
  }

  const auto c = server.counters();
  std::printf("served: %llu connections, %llu requests, %llu verdicts\n"
              "shed:   %llu busy replies, %llu idle evictions, %llu write-cap"
              ", %llu dropped verdicts\n"
              "errors: %llu framing, %llu payload\n",
              static_cast<unsigned long long>(c.accepted),
              static_cast<unsigned long long>(c.requests),
              static_cast<unsigned long long>(c.verdicts_sent),
              static_cast<unsigned long long>(c.busy_replies),
              static_cast<unsigned long long>(c.idle_evicted),
              static_cast<unsigned long long>(c.writeq_shed),
              static_cast<unsigned long long>(c.replies_dropped),
              static_cast<unsigned long long>(c.decode_errors),
              static_cast<unsigned long long>(c.payload_errors));
  return exports_ok ? 0 : 1;
}

int cmd_loadgen(const net::Endpoint& endpoint, std::uint64_t connections,
                std::uint64_t jobs_per_connection, std::uint64_t devices,
                std::uint64_t max_busy_retries, double max_retry_wait_ms,
                const ServeDemoObs& obs_out) {
  if (connections == 0 || jobs_per_connection == 0 || devices == 0) {
    std::fprintf(stderr,
                 "error: connections, jobs and devices must be > 0\n");
    return usage();
  }

  net::LoadGenConfig config;
  config.endpoint = endpoint;
  config.connections = connections;
  config.jobs_per_connection = jobs_per_connection;
  config.devices = devices;
  config.max_busy_retries = max_busy_retries;
  config.max_retry_wait_ms = max_retry_wait_ms;

  // The client side of a cross-process trace: a *local* tracer (its id
  // space must be independent of any server in this process), exported
  // for `trace-report <client.jsonl> <server.jsonl>`.
  obs::Tracer tracer;
  if (obs_out.tracing()) {
    tracer.set_sample_rate(obs_out.trace_sample);
    tracer.set_enabled(true);
    config.tracer = &tracer;
  }

  std::printf("driving %llu connections x %llu jobs against %s...\n",
              static_cast<unsigned long long>(connections),
              static_cast<unsigned long long>(jobs_per_connection),
              endpoint.describe().c_str());
  std::fflush(stdout);

  net::LoadGenerator generator(config);
  const auto report = generator.run();

  if (obs_out.tracing()) {
    tracer.set_enabled(false);
    bool exports_ok = true;
    if (!obs_out.trace_out.empty()) {
      exports_ok &= write_file(obs_out.trace_out, tracer.to_trace_event());
    }
    if (!obs_out.trace_jsonl.empty()) {
      exports_ok &= write_file(obs_out.trace_jsonl, tracer.to_jsonl());
    }
    std::printf("trace: %zu spans recorded, %llu dropped (sample rate %g)\n",
                tracer.records().size(),
                static_cast<unsigned long long>(tracer.dropped()),
                obs_out.trace_sample);
    if (!exports_ok) return 1;
  }

  std::vector<double> latencies;
  latencies.reserve(report.by_job.size());
  for (const auto& verdict : report.by_job) {
    if (verdict.completed) latencies.push_back(verdict.latency_us);
  }
  std::sort(latencies.begin(), latencies.end());

  std::printf(
      "verdicts: %llu/%zu (%llu accepted, %llu rejected, %llu inconclusive, "
      "%llu unknown)\n"
      "backpressure: %llu busy replies obeyed, %llu jobs exhausted retries\n"
      "failures: %llu connect, %llu disconnect, %llu decode, %llu error "
      "replies\n"
      "wall: %.2fs  goodput: %.1f verdicts/s  latency p50/p95: %.1f/%.1f ms\n",
      static_cast<unsigned long long>(report.verdicts), report.jobs,
      static_cast<unsigned long long>(report.accepted),
      static_cast<unsigned long long>(report.rejected),
      static_cast<unsigned long long>(report.inconclusive),
      static_cast<unsigned long long>(report.unknown_device),
      static_cast<unsigned long long>(report.busy_replies),
      static_cast<unsigned long long>(report.retries_exhausted),
      static_cast<unsigned long long>(report.connect_failures),
      static_cast<unsigned long long>(report.disconnects),
      static_cast<unsigned long long>(report.decode_errors),
      static_cast<unsigned long long>(report.error_replies), report.wall_s,
      report.goodput_per_s(), percentile(latencies, 0.5) / 1e3,
      percentile(latencies, 0.95) / 1e3);
  return report.verdicts == report.jobs ? 0 : 1;
}

// trace-report: aggregate an exported trace (either format) into
// per-stage latency percentiles.  Host-time stages (queue wait, emulator
// build, verify, ...) come from span durations; the channel RTT and the
// delta-margin column come from the simulated timings the session spans
// carry as notes — margin = deadline_us - elapsed_us is the headroom the
// paper's timing bound had on each verified attempt, the first number to
// look at when honest devices start false-rejecting.
int cmd_trace_report(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) return 1;
  const auto spans = obs::read_trace(text);
  if (spans.empty()) {
    std::fprintf(stderr, "error: no spans in '%s'\n", path.c_str());
    return 1;
  }

  struct Stage {
    std::vector<double> dur_us;
    std::vector<double> margins_us;  ///< deadline - elapsed, where noted
  };
  std::map<std::string, Stage> stages;
  std::vector<double> rtt_us;  ///< simulated RTT of delivered attempts
  for (const auto& span : spans) {
    Stage& stage = stages[span.name];
    stage.dur_us.push_back(span.dur_us);
    if (span.notes.count("deadline_us") != 0) {
      stage.margins_us.push_back(span.note_or("deadline_us", 0.0) -
                                 span.note_or("elapsed_us", 0.0));
    }
    if (span.name == "session.attempt" &&
        span.note_or("delivered", 0.0) != 0.0) {
      rtt_us.push_back(span.note_or("elapsed_us", 0.0));
    }
  }

  std::printf("trace report: %zu spans, %zu stages (%s)\n\n", spans.size(),
              stages.size(), path.c_str());
  std::printf("%-18s %7s %10s %10s %10s %10s %16s\n", "stage", "count",
              "p50_us", "p90_us", "p99_us", "max_us", "delta_margin_p50");
  for (auto& [name, stage] : stages) {
    std::sort(stage.dur_us.begin(), stage.dur_us.end());
    std::printf("%-18s %7zu %10.1f %10.1f %10.1f %10.1f", name.c_str(),
                stage.dur_us.size(), percentile(stage.dur_us, 0.5),
                percentile(stage.dur_us, 0.9), percentile(stage.dur_us, 0.99),
                stage.dur_us.back());
    if (stage.margins_us.empty()) {
      std::printf(" %16s\n", "-");
    } else {
      std::sort(stage.margins_us.begin(), stage.margins_us.end());
      std::printf(" %16.1f\n", percentile(stage.margins_us, 0.5));
    }
  }

  // The span durations above are host time; these two are the simulated
  // protocol clock, which is what the delta bound actually constrains.
  std::sort(rtt_us.begin(), rtt_us.end());
  std::printf("\nchannel_rtt_us (simulated, delivered attempts): "
              "count=%zu p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
              rtt_us.size(), percentile(rtt_us, 0.5), percentile(rtt_us, 0.9),
              percentile(rtt_us, 0.99), rtt_us.empty() ? 0.0 : rtt_us.back());

  std::vector<double> margins;
  for (const auto& [name, stage] : stages) {
    margins.insert(margins.end(), stage.margins_us.begin(),
                   stage.margins_us.end());
  }
  std::sort(margins.begin(), margins.end());
  const std::size_t violations = static_cast<std::size_t>(
      std::lower_bound(margins.begin(), margins.end(), 0.0) - margins.begin());
  std::printf("delta_margin_us (deadline - elapsed, verified attempts): "
              "count=%zu min=%.1f p10=%.1f p50=%.1f violations=%zu\n",
              margins.size(), margins.empty() ? 0.0 : margins.front(),
              percentile(margins, 0.1), percentile(margins, 0.5), violations);
  return 0;
}

// trace-report with N files: the cross-process merge (obs/trace_merge).
// Client and server exports join on trace id; each joined verdict's
// client latency is decomposed into wire RTT / queue wait / verify /
// store fsync, with per-stage percentiles and the same δ-margin
// violation table the single-file report prints.
int cmd_trace_merge_report(const std::vector<std::string>& paths) {
  std::vector<obs::TraceFile> files;
  for (const auto& path : paths) {
    std::string text;
    if (!read_file(path, text)) return 1;
    obs::TraceFile file;
    file.label = path;
    file.spans = obs::read_trace(text);
    files.push_back(std::move(file));
  }
  auto report = obs::merge_traces(files);

  std::printf("trace merge: %zu files, %zu spans\n", report.files,
              report.spans);
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::printf("  [%zu] %s: %zu spans\n", i, files[i].label.c_str(),
                files[i].spans.size());
  }

  std::printf("\n%-18s %7s %10s %10s %10s %10s\n", "stage", "count", "p50_us",
              "p90_us", "p99_us", "max_us");
  for (auto& [name, durs] : report.stage_us) {
    std::sort(durs.begin(), durs.end());
    std::printf("%-18s %7zu %10.1f %10.1f %10.1f %10.1f\n", name.c_str(),
                durs.size(), percentile(durs, 0.5), percentile(durs, 0.9),
                percentile(durs, 0.99), durs.back());
  }

  std::printf("\ncross-process verdicts: joined %zu/%zu client roots "
              "(%.1f%%), %zu server roots\n",
              report.joined, report.client_roots,
              100.0 * report.join_fraction(), report.server_roots);

  struct Column {
    const char* name;
    std::vector<double> values;
  };
  Column columns[] = {{"client_total", {}}, {"server_total", {}},
                      {"wire_rtt", {}},     {"queue_wait", {}},
                      {"verify", {}},       {"store_fsync", {}}};
  std::vector<double> margins;
  for (const auto& verdict : report.verdicts) {
    if (!verdict.joined) continue;
    columns[0].values.push_back(verdict.client_us);
    columns[1].values.push_back(verdict.server_us);
    columns[2].values.push_back(verdict.wire_rtt_us);
    columns[3].values.push_back(verdict.queue_us);
    columns[4].values.push_back(verdict.verify_us);
    columns[5].values.push_back(verdict.store_fsync_us);
    margins.insert(margins.end(), verdict.margins_us.begin(),
                   verdict.margins_us.end());
  }
  std::printf("%-18s %7s %10s %10s %10s %10s\n", "verdict stage", "count",
              "p50_us", "p90_us", "p99_us", "max_us");
  for (auto& column : columns) {
    std::sort(column.values.begin(), column.values.end());
    std::printf("%-18s %7zu %10.1f %10.1f %10.1f %10.1f\n", column.name,
                column.values.size(), percentile(column.values, 0.5),
                percentile(column.values, 0.9), percentile(column.values, 0.99),
                column.values.empty() ? 0.0 : column.values.back());
  }

  const std::size_t shown = std::min<std::size_t>(report.verdicts.size(), 16);
  std::printf("\nper-verdict timeline (first %zu of %zu):\n", shown,
              report.verdicts.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& v = report.verdicts[i];
    if (v.joined) {
      std::printf("  trace=%llu outcome=%.0f client=%.1fus = wire %.1f + "
                  "queue %.1f + verify %.1f (fsync %.1f) busy=%.0f\n",
                  static_cast<unsigned long long>(v.trace), v.outcome,
                  v.client_us, v.wire_rtt_us, v.queue_us, v.verify_us,
                  v.store_fsync_us, v.busy_retries);
    } else {
      std::printf("  trace=%llu outcome=%.0f client=%.1fus (no server half)\n",
                  static_cast<unsigned long long>(v.trace), v.outcome,
                  v.client_us);
    }
  }

  std::sort(margins.begin(), margins.end());
  const std::size_t violations = static_cast<std::size_t>(
      std::lower_bound(margins.begin(), margins.end(), 0.0) - margins.begin());
  std::printf("\ndelta_margin_us (deadline - elapsed, joined verdicts): "
              "count=%zu min=%.1f p10=%.1f p50=%.1f violations=%zu\n",
              margins.size(), margins.empty() ? 0.0 : margins.front(),
              percentile(margins, 0.1), percentile(margins, 0.5), violations);
  return 0;
}

// fleet-stats: poll a live server's kStatsRequest admin frame.  One-shot
// mode prints the raw byte-stable JSON (scriptable: pipe into jq); watch
// mode samples every --watch-ms and prints delta rates, the "top" view
// of a running fleet.

/// One stats round trip over a polled non-blocking socket.  Returns false
/// on any transport or framing failure.
bool stats_roundtrip(int fd, net::FrameDecoder& decoder, std::uint64_t tag,
                     double timeout_ms, std::string& json) {
  const auto bytes = net::encode_stats_request(net::StatsRequest{tag});
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ::pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, static_cast<int>(timeout_ms)) <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  std::vector<net::FrameDecoder::Frame> frames;
  for (;;) {
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      if (!decoder.feed(buf, static_cast<std::size_t>(n), frames)) {
        return false;
      }
      for (const auto& frame : frames) {
        if (frame.type != net::MsgType::kStatsReply) continue;
        const auto reply = net::decode_stats_reply(frame.payload);
        if (reply.tag != tag) continue;
        json = reply.stats_json;
        return true;
      }
      frames.clear();
      continue;
    }
    if (n == 0) return false;  // server closed on us
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      ::pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(timeout_ms)) <= 0) return false;
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
}

int cmd_fleet_stats(const net::Endpoint& endpoint, double watch_ms,
                    std::uint64_t samples) {
  net::Fd fd;
  try {
    fd = net::connect_to(endpoint);
  } catch (const net::NetError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  net::FrameDecoder decoder;

  if (watch_ms <= 0.0) {  // one-shot: raw JSON, nothing else on stdout
    std::string json;
    if (!stats_roundtrip(fd.get(), decoder, 0xF1EE7, 5'000.0, json)) {
      std::fprintf(stderr, "error: stats request failed\n");
      return 1;
    }
    std::printf("%s\n", json.c_str());
    return 0;
  }

  g_serve_interrupted.store(false);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);

  const auto section_num = [](const obs::JsonValue& doc, const char* section,
                              const char* key) {
    const auto* s = doc.get(section);
    return s != nullptr ? s->number_or(key, 0.0) : 0.0;
  };
  std::printf("%10s %12s %10s %12s %12s %8s %8s\n", "t_s", "verdicts/s",
              "busy/s", "bytes_in/s", "bytes_out/s", "queue", "conns");
  std::fflush(stdout);

  obs::JsonValue prev;
  std::uint64_t prev_ns = 0;
  const std::uint64_t start_ns = obs::monotonic_ns();
  for (std::uint64_t s = 0; samples == 0 || s < samples; ++s) {
    if (g_serve_interrupted.load()) break;
    std::string json;
    if (!stats_roundtrip(fd.get(), decoder, 0xF1EE7 + s, 5'000.0, json)) {
      std::fprintf(stderr, "error: stats request failed (server gone?)\n");
      return 1;
    }
    const std::uint64_t now = obs::monotonic_ns();
    obs::JsonValue doc;
    try {
      doc = obs::parse_json(json);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: malformed stats JSON: %s\n", e.what());
      return 1;
    }
    if (prev_ns != 0) {
      const double dt_s = static_cast<double>(now - prev_ns) / 1e9;
      const auto rate = [&](const char* section, const char* key) {
        return dt_s > 0.0 ? (section_num(doc, section, key) -
                             section_num(prev, section, key)) /
                                dt_s
                          : 0.0;
      };
      std::printf("%10.2f %12.1f %10.1f %12.0f %12.0f %8.0f %8.0f\n",
                  static_cast<double>(now - start_ns) / 1e9,
                  rate("net", "verdicts_sent"), rate("net", "busy_replies"),
                  rate("net", "bytes_in"), rate("net", "bytes_out"),
                  section_num(doc, "pool", "queue_depth"),
                  section_num(doc, "net", "open_connections"));
      std::fflush(stdout);
    }
    prev = std::move(doc);
    prev_ns = now;
    if (samples == 0 || s + 1 < samples) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(watch_ms * 1e3)));
    }
  }
  return 0;
}

// gen-crps: dump protocol-level CRPs (64-bit challenge -> obfuscated
// response) over the batched device path — query_batch on fixed-size shards
// pulled by a small worker pool.  Shard boundaries and shard RNGs depend
// only on (chip-seed, shard index), never on the thread count, so the same
// invocation produces byte-identical CSVs at any parallelism (there is a
// ctest comparing 1 vs 3 threads).
int cmd_gen_crps(std::uint64_t chip_seed, std::uint64_t count,
                 std::uint64_t threads, const std::string& path,
                 timingsim::BatchEngine engine) {
  if (count == 0 || threads == 0) {
    std::fprintf(stderr, "error: count and threads must be > 0\n");
    return usage();
  }
  const auto profile = core::DeviceProfile::standard();
  const alupuf::PufDevice device(profile.puf_config, chip_seed, code());
  const auto env = variation::Environment::nominal();
  device.prewarm(env);  // fill per-env caches before going multi-threaded

  constexpr std::size_t kBlock = 256;  // determinism unit
  const auto n = static_cast<std::size_t>(count);
  std::vector<std::uint64_t> challenges(n);
  std::vector<std::uint64_t> responses(n);
  const std::size_t workers =
      std::min<std::size_t>(threads, (n + kBlock - 1) / kBlock);
  std::vector<alupuf::AluPufBatchScratch> scratch(workers);
  support::parallel_blocks(
      n, kBlock, workers,
      [&](std::size_t shard, std::size_t begin, std::size_t end,
          std::size_t slot) {
        // Same shard-generator derivation as the mlattack dataset builders.
        support::Xoshiro256pp rng(support::SplitMix64::mix(
            chip_seed ^ (0xA5A5A5A5A5A5A5A5ULL + shard)));
        for (std::size_t i = begin; i < end; ++i) challenges[i] = rng.next();
        const auto outputs =
            device.query_batch(challenges.data() + begin, end - begin, env,
                               rng, nullptr, &scratch[slot], engine);
        for (std::size_t i = begin; i < end; ++i) {
          responses[i] = outputs[i - begin].z.to_u64();
        }
      });

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(out, "challenge_hex,response_hex\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::fprintf(out, "%016llx,%08llx\n",
                 static_cast<unsigned long long>(challenges[i]),
                 static_cast<unsigned long long>(responses[i]));
  }
  std::fclose(out);
  std::printf(
      "wrote %zu CRPs (chip %llu, %zu worker(s), block %zu, engine %s) -> "
      "%s\n",
      n, static_cast<unsigned long long>(chip_seed), workers, kBlock,
      engine_name(engine), path.c_str());
  return 0;
}

// Read-only recovery + summary of one plain store directory (a standalone
// store, or one shard of a sharded one).
int inspect_one_store(const std::string& dir) {
  const auto state = store::recover(dir);
  const auto& stats = state.stats;
  std::printf("store %s\n", dir.c_str());
  if (stats.snapshot_present) {
    std::printf("  snapshot        : %llu bytes, WAL watermark %llu\n",
                static_cast<unsigned long long>(stats.snapshot_bytes),
                static_cast<unsigned long long>(stats.snapshot_watermark));
  } else {
    std::printf("  snapshot        : none\n");
  }
  std::printf("  WAL             : %zu segment(s), %llu bytes%s\n",
              stats.wal_segments,
              static_cast<unsigned long long>(stats.wal_bytes),
              stats.torn_tail ? ", torn tail (tolerated)" : "");
  if (stats.wal_segments_skipped > 0) {
    std::printf("  stale segments  : %zu skipped (at/below the snapshot "
                "watermark; deleted on next open)\n",
                stats.wal_segments_skipped);
  }
  std::printf("  records replayed: %zu\n", stats.records_replayed);
  for (const auto& [type, count] : stats.records_by_type) {
    std::printf("    %-13s : %zu\n", store::record_type_name(type), count);
  }
  std::printf("  devices         : %zu enrolled, %zu with CRP databases\n",
              stats.devices, stats.crp_devices);
  std::printf("  CRP entries left: %zu\n", stats.crp_remaining);
  for (const auto& id : state.ledger->device_ids()) {
    std::printf("    %-13s : %zu unused\n", id.c_str(),
                *state.ledger->remaining(id));
  }
  return 0;
}

// store-inspect: run recovery read-only and print what it saw — the first
// tool to reach for after an unclean shutdown ("did the log survive, how
// many records, is the tail torn, what state comes back").  A sharded
// store (directory with a store.shards manifest) prints every shard in
// order plus fleet totals.
int cmd_store_inspect(const std::string& dir) {
  if (!std::filesystem::exists(dir)) {
    std::fprintf(stderr, "error: no such store directory '%s'\n", dir.c_str());
    return 1;
  }
  std::size_t shards = 0;
  if (!store::ShardedVerifierStore::read_manifest(dir, shards)) {
    return inspect_one_store(dir);
  }
  std::printf("sharded store %s: %zu shard(s)\n", dir.c_str(), shards);
  std::size_t devices = 0, crp_devices = 0, crp_remaining = 0, records = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    std::printf("\n[shard %zu]\n", i);
    const std::string shard = store::ShardedVerifierStore::shard_dir(dir, i);
    const int rc = inspect_one_store(shard);
    if (rc != 0) return rc;
    const auto state = store::recover(shard);
    devices += state.stats.devices;
    crp_devices += state.stats.crp_devices;
    crp_remaining += state.stats.crp_remaining;
    records += state.stats.records_replayed;
  }
  std::printf("\n[fleet] %zu device(s) across %zu shard(s), %zu with CRP "
              "databases, %zu CRP entries left, %zu record(s) replayed\n",
              devices, shards, crp_devices, crp_remaining, records);
  return 0;
}

void print_replication_status(const char* label,
                              const store::ReplicationStatus& status) {
  std::printf("%s: applied_through %llu record(s), cursor %llu@%llu, "
              "watermark %llu, shipped %llu byte(s) (%llu this round), "
              "%llu snapshot copy(ies)\n",
              label,
              static_cast<unsigned long long>(status.applied_records),
              static_cast<unsigned long long>(status.segment),
              static_cast<unsigned long long>(status.offset),
              static_cast<unsigned long long>(status.snapshot_watermark),
              static_cast<unsigned long long>(status.shipped_bytes),
              static_cast<unsigned long long>(status.lag_bytes),
              static_cast<unsigned long long>(status.snapshot_copies));
}

// store-replicate: one incremental shipping round from a primary store
// directory into a follower directory.  Run it repeatedly (e.g. from
// cron) to keep the follower's staleness bounded; run store-promote on
// the follower when the primary is lost.
int cmd_store_replicate(const std::string& primary,
                        const std::string& follower) {
  if (!std::filesystem::exists(primary)) {
    std::fprintf(stderr, "error: no such store directory '%s'\n",
                 primary.c_str());
    return 1;
  }
  std::size_t shards = 0;
  if (store::ShardedVerifierStore::read_manifest(primary, shards)) {
    store::StoreReplica replica(primary, follower);
    const auto statuses = replica.ship();
    std::printf("replicated %s -> %s (%zu shard(s))\n", primary.c_str(),
                follower.c_str(), shards);
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      const std::string label = "  shard " + std::to_string(i);
      print_replication_status(label.c_str(), statuses[i]);
    }
    return 0;
  }
  store::ShardFollower shard_follower(primary, follower);
  const auto status = shard_follower.ship();
  std::printf("replicated %s -> %s\n", primary.c_str(), follower.c_str());
  print_replication_status("  store", status);
  return 0;
}

// store-promote: fail over to a follower directory.  With --from= the
// primary is still reachable and a final shipping round narrows the loss
// window to whatever the primary never made durable; without it, the
// follower is promoted as-is (the primary is gone).
int cmd_store_promote(const std::string& follower, const std::string& from) {
  if (!std::filesystem::exists(follower)) {
    std::fprintf(stderr, "error: no such store directory '%s'\n",
                 follower.c_str());
    return 1;
  }
  std::size_t shards = 0;
  if (store::ShardedVerifierStore::read_manifest(follower, shards)) {
    std::unique_ptr<store::ShardedVerifierStore> promoted;
    if (!from.empty()) {
      store::StoreReplica replica(from, follower);
      promoted = replica.promote();
    } else {
      store::ShardedStoreOptions options;
      options.shards = 0;  // the manifest knows
      promoted = store::ShardedVerifierStore::open(follower, options);
    }
    std::printf("promoted %s: %zu shard(s), %zu device(s), %zu CRP "
                "entries left\n",
                follower.c_str(), promoted->shard_count(),
                promoted->device_count(), promoted->total_crp_remaining());
    return 0;
  }
  std::unique_ptr<store::VerifierStore> promoted;
  if (!from.empty()) {
    store::ShardFollower shard_follower(from, follower);
    shard_follower.ship();
    promoted = shard_follower.promote();
  } else {
    promoted = store::VerifierStore::open(follower);
  }
  std::printf("promoted %s: %zu device(s), %zu CRP entries left, WAL at "
              "segment %llu\n",
              follower.c_str(), promoted->registry().size(),
              promoted->crp_ledger().total_remaining(),
              static_cast<unsigned long long>(
                  promoted->wal().current_segment_index()));
  return 0;
}

// store-compact: recover, fold everything into a fresh snapshot, restart
// the log.  Safe on a live directory only if the owning process is down
// (the store assumes single-process ownership).
int cmd_store_compact(const std::string& dir, std::uint64_t segment_bytes) {
  if (!std::filesystem::exists(dir)) {
    std::fprintf(stderr, "error: no such store directory '%s'\n", dir.c_str());
    return 1;
  }
  store::StoreOptions options;
  if (segment_bytes > 0) {
    options.wal.segment_bytes = static_cast<std::size_t>(segment_bytes);
  }
  const auto db = store::VerifierStore::open(dir, options);
  const auto& before = db->recovery_stats();
  std::printf("compacting %s: %zu WAL segment(s), %llu bytes, "
              "%zu record(s) folded\n",
              dir.c_str(), before.wal_segments,
              static_cast<unsigned long long>(before.wal_bytes),
              before.records_replayed);
  db->compact();
  std::printf("  snapshot        : %llu bytes\n",
              static_cast<unsigned long long>(
                  std::filesystem::file_size(store::snapshot_path(dir))));
  std::printf("  WAL restarted at segment %llu\n",
              static_cast<unsigned long long>(
                  db->wal().current_segment_index()));
  std::printf("  devices         : %zu enrolled, %zu CRP entries left\n",
              db->registry().size(), db->crp_ledger().total_remaining());
  return 0;
}

// attack-matrix: run the adversary-lab tournament (src/adversary) over the
// standard variant x attack roster and print the matrix.  The regression
// gates live in bench/attack_matrix; this subcommand is the exploration
// face — pick a seed, an engine, a thread count, and look at the numbers.
int cmd_attack_matrix(bool quick, std::uint64_t seed, std::uint64_t threads,
                      timingsim::BatchEngine engine, const std::string& out) {
  adversary::TournamentConfig config;
  if (quick) {
    config.budgets = {256, 1024};
    config.test_queries = 600;
    config.replay_rounds = 16;
  } else {
    config.budgets = {1000, 4000, 12000};
    config.test_queries = 2000;
    config.replay_rounds = 40;
  }
  config.threads = static_cast<std::size_t>(threads);
  config.seed = seed;
  config.engine = engine;

  adversary::LabParams params;
  if (quick) {
    params.logreg.epochs = 25;
    params.mlp.epochs = 15;
    params.cmaes.cmaes.max_generations = 80;
    params.cmaes.cmaes.patience = 20;
    params.cmaes.fitness_subsample = 2000;
  }

  adversary::Tournament tournament(config);
  adversary::add_standard_lab(tournament, params);
  std::printf("attack matrix: %zu variants x %zu attacks, %zu budgets "
              "(%s mode), seed %llu, engine %s\n\n",
              tournament.variant_count(), tournament.attack_count(),
              config.budgets.size(), quick ? "quick" : "full",
              static_cast<unsigned long long>(seed), engine_name(engine));
  const auto result = tournament.run();

  support::Table table({"variant", "attack", "budget", "queries", "train acc",
                        "test acc / replay"});
  for (const adversary::Cell& cell : result.cells) {
    for (const adversary::AttackReport& r : cell.reports) {
      table.add_row({cell.variant, cell.attack, std::to_string(r.budget),
                     std::to_string(r.queries_used),
                     support::Table::num(r.train_accuracy, 3),
                     support::Table::num(r.test_accuracy, 3) +
                         (r.replay_acceptance >= 0.0 ? " (replay)" : "")});
    }
  }
  std::printf("%s", table.render().c_str());

  if (!out.empty()) {
    if (!write_file(out, adversary::matrix_json(result))) return 1;
    std::printf("\nwrote %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "enroll") {
      if (argc != 4) return usage();
      std::uint64_t seed = 0;
      if (!parse_u64(argv[2], seed)) return bad_argument("chip-seed", argv[2]);
      return cmd_enroll(seed, argv[3]);
    }
    if (cmd == "inspect") {
      return argc == 3 ? cmd_inspect(argv[2]) : usage();
    }
    if (cmd == "attest") {
      if (argc != 4) return usage();
      std::uint64_t seed = 0;
      if (!parse_u64(argv[2], seed)) return bad_argument("chip-seed", argv[2]);
      return cmd_attest(seed, argv[3]);
    }
    if (cmd == "disasm") {
      return argc == 3 ? cmd_disasm(argv[2]) : usage();
    }
    if (cmd == "serve-demo") {
      ServeDemoObs obs_out;
      std::vector<const char*> positional;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
          positional.push_back(argv[i]);
          continue;
        }
        const auto eq = arg.find('=');
        const std::string flag = arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (flag == "--trace-out" || flag == "--trace-jsonl" ||
            flag == "--metrics-out") {
          if (value.empty()) {
            std::fprintf(stderr, "error: %s needs a file path\n", flag.c_str());
            return usage();
          }
          (flag == "--trace-out"     ? obs_out.trace_out
           : flag == "--trace-jsonl" ? obs_out.trace_jsonl
                                     : obs_out.metrics_out) = value;
        } else if (flag == "--trace-sample") {
          if (!parse_f64(value.c_str(), obs_out.trace_sample) ||
              obs_out.trace_sample < 0.0 || obs_out.trace_sample > 1.0) {
            return bad_argument("sample rate (want [0,1])", value.c_str());
          }
        } else {
          // An operator mistyping --trace-ot must get a hard error, not a
          // silently untraced run.
          std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
          return usage();
        }
      }
      if (positional.size() > 3) return usage();
      std::uint64_t workers = 4, sessions = 32, devices = 6;
      if (positional.size() > 0 && !parse_u64(positional[0], workers)) {
        return bad_argument("worker count", positional[0]);
      }
      if (positional.size() > 1 && !parse_u64(positional[1], sessions)) {
        return bad_argument("session count", positional[1]);
      }
      if (positional.size() > 2 && !parse_u64(positional[2], devices)) {
        return bad_argument("device count", positional[2]);
      }
      return cmd_serve_demo(workers, sessions, devices, obs_out);
    }
    if (cmd == "serve" || cmd == "loadgen" || cmd == "fleet-stats") {
      // Shared shape: one positional endpoint, then --key=value flags with
      // the serve-demo strictness (unknown flag or malformed value = 64).
      std::string endpoint_spec;
      std::map<std::string, std::string> flags;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
          if (!endpoint_spec.empty()) return usage();
          endpoint_spec = arg;
          continue;
        }
        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq + 1 == arg.size()) {
          std::fprintf(stderr, "error: %s needs a value\n",
                       arg.substr(0, eq).c_str());
          return usage();
        }
        flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
      if (endpoint_spec.empty()) return usage();

      net::Endpoint endpoint;
      try {
        endpoint = net::Endpoint::parse(endpoint_spec);
      } catch (const net::NetError&) {
        return bad_argument("endpoint (want tcp:HOST:PORT or unix:PATH)",
                            endpoint_spec.c_str());
      }

      const auto take_u64 = [&](const char* name, std::uint64_t& value) {
        const auto it = flags.find(name);
        if (it == flags.end()) return true;
        const bool ok = parse_u64(it->second.c_str(), value);
        if (!ok) bad_argument(name, it->second.c_str());
        flags.erase(it);
        return ok;
      };
      const auto take_f64 = [&](const char* name, double& value) {
        const auto it = flags.find(name);
        if (it == flags.end()) return true;
        const bool ok =
            parse_f64(it->second.c_str(), value) && value >= 0.0;
        if (!ok) bad_argument(name, it->second.c_str());
        flags.erase(it);
        return ok;
      };
      const auto take_str = [&](const char* name, std::string& value) {
        const auto it = flags.find(name);
        if (it == flags.end()) return;
        value = it->second;
        flags.erase(it);
      };
      const auto reject_leftovers = [&] {
        if (flags.empty()) return false;
        std::fprintf(stderr, "error: unknown flag '--%s'\n",
                     flags.begin()->first.c_str());
        return true;
      };
      // Sample rates are f64 flags with an extra upper bound.
      const auto take_sample = [&](double& value) {
        if (!take_f64("trace-sample", value)) return false;
        if (value > 1.0) {
          bad_argument("trace-sample (want [0,1])", "");
          return false;
        }
        return true;
      };

      if (cmd == "serve") {
        std::uint64_t workers = 4, queue = 0, devices = 8;
        std::uint64_t fleet_seed = 0x5E47EDE40, max_jobs = 0;
        double idle_timeout_ms = 30'000.0;
        ServeDemoObs obs_out;
        take_str("trace-out", obs_out.trace_out);
        take_str("trace-jsonl", obs_out.trace_jsonl);
        take_str("metrics-out", obs_out.metrics_out);
        take_str("metrics-jsonl", obs_out.metrics_jsonl);
        if (!take_u64("workers", workers) || !take_u64("queue", queue) ||
            !take_u64("devices", devices) ||
            !take_u64("fleet-seed", fleet_seed) ||
            !take_u64("max-jobs", max_jobs) ||
            !take_f64("idle-timeout-ms", idle_timeout_ms) ||
            !take_f64("stats-interval-ms", obs_out.stats_interval_ms) ||
            !take_sample(obs_out.trace_sample)) {
          return 64;
        }
        if (reject_leftovers()) return usage();
        return cmd_serve(endpoint, workers, queue, devices, fleet_seed,
                         idle_timeout_ms, max_jobs, obs_out);
      }

      if (cmd == "fleet-stats") {
        double watch_ms = 0.0;  // 0 = one-shot raw JSON
        std::uint64_t samples = 0;
        if (!take_f64("watch-ms", watch_ms) || !take_u64("samples", samples)) {
          return 64;
        }
        if (reject_leftovers()) return usage();
        return cmd_fleet_stats(endpoint, watch_ms, samples);
      }

      std::uint64_t connections = 16, jobs = 4, devices = 8;
      std::uint64_t max_busy_retries = 64;
      double max_retry_wait_ms = 50.0;
      ServeDemoObs obs_out;
      take_str("trace-out", obs_out.trace_out);
      take_str("trace-jsonl", obs_out.trace_jsonl);
      if (!take_u64("connections", connections) || !take_u64("jobs", jobs) ||
          !take_u64("devices", devices) ||
          !take_u64("max-busy-retries", max_busy_retries) ||
          !take_f64("max-retry-wait-ms", max_retry_wait_ms) ||
          !take_sample(obs_out.trace_sample)) {
        return 64;
      }
      if (reject_leftovers()) return usage();
      return cmd_loadgen(endpoint, connections, jobs, devices,
                         max_busy_retries, max_retry_wait_ms, obs_out);
    }
    if (cmd == "trace-report") {
      if (argc < 3) return usage();
      std::vector<std::string> paths;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
          std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
          return usage();
        }
        paths.push_back(arg);
      }
      // One file keeps the original single-process report; two or more
      // run the cross-process merge (client + server exports).
      return paths.size() == 1 ? cmd_trace_report(paths[0].c_str())
                               : cmd_trace_merge_report(paths);
    }
    if (cmd == "gen-crps") {
      if (argc != 6 && argc != 7) return usage();
      std::uint64_t seed = 0, count = 0, threads = 0;
      if (!parse_u64(argv[2], seed)) return bad_argument("chip-seed", argv[2]);
      if (!parse_u64(argv[3], count)) return bad_argument("count", argv[3]);
      if (!parse_u64(argv[4], threads)) {
        return bad_argument("thread count", argv[4]);
      }
      auto engine = timingsim::BatchEngine::kAuto;
      if (argc == 7) {
        const std::string arg = argv[6];
        const std::string prefix = "--engine=";
        if (arg.rfind(prefix, 0) != 0 ||
            !parse_engine(arg.substr(prefix.size()), engine)) {
          return bad_argument("engine (want auto/scalar/batch/bitslice)",
                              arg.c_str());
        }
      }
      return cmd_gen_crps(seed, count, threads, argv[5], engine);
    }
    if (cmd == "store-inspect") {
      if (argc != 3) return usage();
      const std::string arg = argv[2];
      if (arg.rfind("--", 0) == 0) {
        std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
        return usage();
      }
      return cmd_store_inspect(arg);
    }
    if (cmd == "store-compact") {
      std::string dir;
      std::uint64_t segment_bytes = 0;  // 0 = keep the default
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--segment-bytes=", 0) == 0) {
          const std::string value = arg.substr(16);
          if (!parse_u64(value.c_str(), segment_bytes) || segment_bytes == 0) {
            return bad_argument("segment size (want > 0)", value.c_str());
          }
        } else if (arg.rfind("--", 0) == 0) {
          std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
          return usage();
        } else if (dir.empty()) {
          dir = arg;
        } else {
          return usage();
        }
      }
      if (dir.empty()) return usage();
      return cmd_store_compact(dir, segment_bytes);
    }
    if (cmd == "store-replicate") {
      if (argc != 4) return usage();
      for (int i = 2; i < 4; ++i) {
        if (std::string(argv[i]).rfind("--", 0) == 0) {
          std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
          return usage();
        }
      }
      return cmd_store_replicate(argv[2], argv[3]);
    }
    if (cmd == "store-promote") {
      std::string dir;
      std::string from;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--from=", 0) == 0) {
          from = arg.substr(7);
          if (from.empty()) {
            std::fprintf(stderr, "error: --from needs a directory\n");
            return usage();
          }
        } else if (arg.rfind("--", 0) == 0) {
          std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
          return usage();
        } else if (dir.empty()) {
          dir = arg;
        } else {
          return usage();
        }
      }
      if (dir.empty()) return usage();
      return cmd_store_promote(dir, from);
    }
    if (cmd == "attack-matrix") {
      bool quick = false;
      std::uint64_t seed = 0xA17AC4ULL;  // the bench's fixed matrix seed
      std::uint64_t threads = 1;
      auto engine = timingsim::BatchEngine::kAuto;
      std::string out;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
          quick = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
          const std::string value = arg.substr(7);
          if (!parse_u64(value.c_str(), seed)) {
            return bad_argument("seed", value.c_str());
          }
        } else if (arg.rfind("--threads=", 0) == 0) {
          const std::string value = arg.substr(10);
          if (!parse_u64(value.c_str(), threads) || threads == 0) {
            return bad_argument("thread count (want > 0)", value.c_str());
          }
        } else if (arg.rfind("--engine=", 0) == 0) {
          if (!parse_engine(arg.substr(9), engine)) {
            return bad_argument("engine (want auto/scalar/batch/bitslice)",
                                arg.c_str());
          }
        } else if (arg.rfind("--out=", 0) == 0) {
          out = arg.substr(6);
          if (out.empty()) {
            std::fprintf(stderr, "error: --out needs a file name\n");
            return usage();
          }
        } else {
          std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
          return usage();
        }
      }
      return cmd_attack_matrix(quick, seed, threads, engine, out);
    }
    if (cmd.empty()) return usage();
    std::fprintf(stderr, "error: unknown subcommand '%s'\n", cmd.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
