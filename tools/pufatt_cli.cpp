// pufatt-cli: operator tooling around the library.
//
//   pufatt-cli enroll <chip-seed> <record.bin>     manufacture + enroll a die
//   pufatt-cli inspect <record.bin>                summarize a record
//   pufatt-cli attest <chip-seed> <record.bin>     run one attestation
//   pufatt-cli disasm <record.bin>                 list the attested program
//   pufatt-cli serve-demo [workers] [sessions] [devices]
//                                                  run the concurrent service
//   pufatt-cli gen-crps <chip-seed> <count> <threads> <out.csv>
//                                                  dump protocol CRPs (batched)
//
// The "device" is simulated (chip-seed = fab lottery), but the data flow is
// the real deployment one: enrollment produces a record file, the verifier
// later loads it and talks to the device.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "alupuf/pipeline.hpp"
#include "core/distributed.hpp"
#include "core/protocol.hpp"
#include "core/serialize.hpp"
#include "cpu/disassembler.hpp"
#include "ecc/reed_muller.hpp"
#include "service/device_registry.hpp"
#include "service/emulator_cache.hpp"
#include "service/verifier_pool.hpp"
#include "support/parallel.hpp"

using namespace pufatt;

namespace {

const ecc::ReedMuller1& code() {
  static const ecc::ReedMuller1 instance(5);
  return instance;
}

int usage() {
  std::fprintf(stderr,
               "usage: pufatt-cli enroll <chip-seed> <record.bin>\n"
               "       pufatt-cli inspect <record.bin>\n"
               "       pufatt-cli attest <chip-seed> <record.bin>\n"
               "       pufatt-cli disasm <record.bin>\n"
               "       pufatt-cli serve-demo [workers] [sessions] [devices]\n"
               "       pufatt-cli gen-crps <chip-seed> <count> <threads> "
               "<out.csv>\n");
  return 64;
}

/// Strict decimal/hex u64 parse; rejects trailing garbage, empty strings
/// and overflow ("12x" or "" must not silently read as 0).
bool parse_u64(const char* text, std::uint64_t& value) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 0);
  if (errno != 0 || end == text || *end != '\0') return false;
  value = parsed;
  return true;
}

int bad_argument(const char* what, const char* got) {
  std::fprintf(stderr, "error: malformed %s '%s'\n", what, got);
  return usage();
}

int cmd_enroll(std::uint64_t chip_seed, const std::string& path) {
  const auto profile = core::DeviceProfile::standard();
  const alupuf::PufDevice device(profile.puf_config, chip_seed, code());
  // Ship a deterministic demo firmware image.
  std::vector<std::uint32_t> firmware(2500);
  for (std::size_t i = 0; i < firmware.size(); ++i) {
    firmware[i] = static_cast<std::uint32_t>(
        support::SplitMix64::mix(chip_seed + i));
  }
  const auto record = core::enroll(
      device, profile, core::make_enrolled_image(profile, firmware));
  core::save_record_file(path, record);
  std::printf("enrolled chip %llu -> %s\n",
              static_cast<unsigned long long>(chip_seed), path.c_str());
  std::printf("  attested words : %zu\n", record.enrolled_image.size());
  std::printf("  honest cycles  : %llu\n",
              static_cast<unsigned long long>(record.honest_cycles));
  std::printf("  base clock     : %.1f MHz\n", record.profile.base_clock_mhz);
  return 0;
}

int cmd_inspect(const std::string& path) {
  const auto record = core::load_record_file(path);
  std::printf("enrollment record %s\n", path.c_str());
  std::printf("  PUF width        : %zu bits\n",
              record.profile.puf_config.width);
  std::printf("  delay table      : %zu gates\n",
              record.model.intrinsic_ps.size());
  std::printf("  SWAT rounds      : %u (PUF every %u)\n",
              record.profile.swat.rounds, record.profile.swat.puf_interval);
  std::printf("  attested region  : %u words\n",
              record.profile.swat.attest_words);
  std::printf("  honest cycles    : %llu\n",
              static_cast<unsigned long long>(record.honest_cycles));
  std::printf("  base clock       : %.1f MHz\n",
              record.profile.base_clock_mhz);
  return 0;
}

int cmd_attest(std::uint64_t chip_seed, const std::string& path) {
  const auto record = core::load_record_file(path);
  const alupuf::PufDevice device(record.profile.puf_config, chip_seed, code());
  const core::Verifier verifier(record, code());
  support::Xoshiro256pp rng(support::SplitMix64::mix(chip_seed));
  core::CpuProver prover(device, record, core::CpuProver::Variant::kHonest,
                         chip_seed ^ 0xA77E57);
  const core::Channel channel;
  const auto request = verifier.make_request(rng);
  const auto outcome = prover.respond(request);
  const auto result = verifier.verify(
      request, outcome.response,
      outcome.compute_us +
          channel.round_trip_us(8, outcome.response.wire_bytes()));
  std::printf("attestation of chip %llu against %s: %s\n",
              static_cast<unsigned long long>(chip_seed), path.c_str(),
              core::to_string(result.status));
  std::printf("  elapsed %.0f us, deadline %.0f us, %zu helper words\n",
              result.elapsed_us, result.deadline_us,
              outcome.response.helper_words.size());
  return result.accepted() ? 0 : 2;
}

int cmd_disasm(const std::string& path) {
  const auto record = core::load_record_file(path);
  // The program occupies the image up to the first halt; list a prefix.
  std::vector<std::uint32_t> prefix;
  for (const auto word : record.enrolled_image) {
    prefix.push_back(word);
    try {
      if (cpu::decode(word).op == cpu::Opcode::kHalt) break;
    } catch (const std::invalid_argument&) {
      break;  // data region reached
    }
  }
  std::fputs(cpu::disassemble_program(prefix).c_str(), stdout);
  return 0;
}

// serve-demo: stand up the whole concurrent service in-process — enroll a
// small fleet, register it, then pump attestation jobs through the worker
// pool over a mildly lossy simulated radio and print the metrics.  One
// device answers with a tampered image so the rejected path shows up too.
int cmd_serve_demo(std::uint64_t workers, std::uint64_t sessions,
                   std::uint64_t devices) {
  if (workers == 0 || sessions == 0 || devices == 0) {
    std::fprintf(stderr, "error: workers, sessions and devices must be > 0\n");
    return usage();
  }
  auto profile = core::DistributedParams::small_profile();

  std::printf("enrolling %llu devices...\n",
              static_cast<unsigned long long>(devices));
  support::Xoshiro256pp rng(0x5E47EDE40);
  std::vector<std::uint32_t> firmware(600);
  for (auto& w : firmware) w = static_cast<std::uint32_t>(rng.next());
  const auto image = core::make_enrolled_image(profile, firmware);

  service::DeviceRegistry registry;
  struct Fleet {
    std::unique_ptr<alupuf::PufDevice> device;
    core::EnrollmentRecord record;  ///< what the prover actually runs
    std::string id;
  };
  std::vector<Fleet> fleet(devices);
  for (std::uint64_t d = 0; d < devices; ++d) {
    fleet[d].id = "device-" + std::to_string(d);
    fleet[d].device = std::make_unique<alupuf::PufDevice>(
        profile.puf_config, 0xD1CE0000 + d, code());
    auto record = core::enroll(*fleet[d].device, profile, image);
    registry.store(fleet[d].id, record);
    fleet[d].record = std::move(record);
  }
  // The last device is compromised: it runs a tampered image against its
  // own (honest) enrollment record.
  auto& infected = fleet.back();
  for (std::size_t w = 700; w < 760 && w < infected.record.enrolled_image.size();
       ++w) {
    infected.record.enrolled_image[w] ^= 0xBAD0BAD0u;
  }

  service::EmulatorCache cache(registry, code(), devices);
  service::PoolConfig config;
  config.workers = workers;
  config.queue_capacity = 2 * workers;

  // Per-device accepted/rejected tallies, keyed by round-robin index.
  struct Tally {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
  };
  std::mutex tally_mutex;
  std::vector<Tally> tally(devices);
  service::VerifierPool pool(
      cache, config, [&](const service::JobResult& result) {
        std::lock_guard<std::mutex> lock(tally_mutex);
        auto& t = tally[result.tag % devices];
        if (result.outcome == service::JobOutcome::kAccepted) ++t.accepted;
        if (result.outcome == service::JobOutcome::kRejected) ++t.rejected;
      });

  core::FaultParams faults;
  faults.loss_prob = 0.02;

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t busy = 0;
  for (std::uint64_t s = 0; s < sessions; ++s) {
    const auto& target = fleet[s % devices];
    service::AttestationJob job;
    job.device_id = target.id;
    job.faults = faults;
    job.channel_seed = 0xC4A2 + 31 * s;
    job.rng_seed = 0x9E0 + 17 * s;
    job.tag = s;
    // Each job owns its prover (seeded per job): jobs never share mutable
    // prover state, and the same-device lease already serializes access to
    // the shared PufDevice underneath.
    auto prover = std::make_shared<core::CpuProver>(
        *target.device, target.record, core::CpuProver::Variant::kHonest,
        job.rng_seed ^ 0xF00D);
    job.responder = [prover](const core::AttestationRequest& request) {
      auto outcome = prover->respond(request);
      return core::ProverReply{std::move(outcome.response),
                               outcome.compute_us};
    };
    // Offered load exceeds capacity on purpose: show the backpressure
    // path, then retry the job after the suggested wait.
    auto submitted = pool.submit(job);
    while (submitted.status == service::SubmitStatus::kRejectedBusy) {
      ++busy;
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<long>(submitted.retry_after_us)));
      submitted = pool.submit(job);
    }
  }
  pool.drain();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto snap = pool.metrics_snapshot();
  std::printf("\n%llu sessions on %llu workers over %llu devices "
              "in %.2f s (%.1f sessions/s)\n",
              static_cast<unsigned long long>(sessions),
              static_cast<unsigned long long>(workers),
              static_cast<unsigned long long>(devices), wall_s,
              static_cast<double>(sessions) / wall_s);
  std::printf("client-side busy retries: %llu\n\n",
              static_cast<unsigned long long>(busy));
  std::fputs(snap.format().c_str(), stdout);

  // The security invariant: the tampered (last) device is NEVER accepted,
  // and if round-robin dispatch reached it at all, it was caught at least
  // once.  Honest devices may occasionally false-reject — that is the
  // PUF's intrinsic FNR (an availability cost the paper quantifies), not
  // a service defect — so it is reported, not failed on.
  const std::uint64_t infected_sessions = sessions / devices;
  const auto& infected_tally = tally.back();
  std::uint64_t honest_false_rejects = 0;
  for (std::uint64_t d = 0; d + 1 < devices; ++d) {
    honest_false_rejects += tally[d].rejected;
  }
  if (honest_false_rejects > 0) {
    std::printf("\nhonest false rejections (PUF noise): %llu\n",
                static_cast<unsigned long long>(honest_false_rejects));
  }
  const bool infected_ok =
      infected_tally.accepted == 0 &&
      (infected_sessions == 0 || infected_tally.rejected > 0);
  const bool ok = infected_ok &&
                  snap.accepted + snap.rejected + snap.inconclusive == sessions;
  std::printf("\n[%s] all sessions accounted; tampered device never "
              "accepted (%llu/%llu of its sessions rejected)\n",
              ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(infected_tally.rejected),
              static_cast<unsigned long long>(infected_sessions));
  return ok ? 0 : 1;
}

// gen-crps: dump protocol-level CRPs (64-bit challenge -> obfuscated
// response) over the batched device path — query_batch on fixed-size shards
// pulled by a small worker pool.  Shard boundaries and shard RNGs depend
// only on (chip-seed, shard index), never on the thread count, so the same
// invocation produces byte-identical CSVs at any parallelism (there is a
// ctest comparing 1 vs 3 threads).
int cmd_gen_crps(std::uint64_t chip_seed, std::uint64_t count,
                 std::uint64_t threads, const std::string& path) {
  if (count == 0 || threads == 0) {
    std::fprintf(stderr, "error: count and threads must be > 0\n");
    return usage();
  }
  const auto profile = core::DeviceProfile::standard();
  const alupuf::PufDevice device(profile.puf_config, chip_seed, code());
  const auto env = variation::Environment::nominal();
  device.prewarm(env);  // fill per-env caches before going multi-threaded

  constexpr std::size_t kBlock = 256;  // determinism unit
  const auto n = static_cast<std::size_t>(count);
  std::vector<std::uint64_t> challenges(n);
  std::vector<std::uint64_t> responses(n);
  const std::size_t workers =
      std::min<std::size_t>(threads, (n + kBlock - 1) / kBlock);
  std::vector<alupuf::AluPufBatchScratch> scratch(workers);
  support::parallel_blocks(
      n, kBlock, workers,
      [&](std::size_t shard, std::size_t begin, std::size_t end,
          std::size_t slot) {
        // Same shard-generator derivation as the mlattack dataset builders.
        support::Xoshiro256pp rng(support::SplitMix64::mix(
            chip_seed ^ (0xA5A5A5A5A5A5A5A5ULL + shard)));
        for (std::size_t i = begin; i < end; ++i) challenges[i] = rng.next();
        const auto outputs =
            device.query_batch(challenges.data() + begin, end - begin, env,
                               rng, nullptr, &scratch[slot]);
        for (std::size_t i = begin; i < end; ++i) {
          responses[i] = outputs[i - begin].z.to_u64();
        }
      });

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(out, "challenge_hex,response_hex\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::fprintf(out, "%016llx,%08llx\n",
                 static_cast<unsigned long long>(challenges[i]),
                 static_cast<unsigned long long>(responses[i]));
  }
  std::fclose(out);
  std::printf("wrote %zu CRPs (chip %llu, %zu worker(s), block %zu) -> %s\n",
              n, static_cast<unsigned long long>(chip_seed), workers, kBlock,
              path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "enroll") {
      if (argc != 4) return usage();
      std::uint64_t seed = 0;
      if (!parse_u64(argv[2], seed)) return bad_argument("chip-seed", argv[2]);
      return cmd_enroll(seed, argv[3]);
    }
    if (cmd == "inspect") {
      return argc == 3 ? cmd_inspect(argv[2]) : usage();
    }
    if (cmd == "attest") {
      if (argc != 4) return usage();
      std::uint64_t seed = 0;
      if (!parse_u64(argv[2], seed)) return bad_argument("chip-seed", argv[2]);
      return cmd_attest(seed, argv[3]);
    }
    if (cmd == "disasm") {
      return argc == 3 ? cmd_disasm(argv[2]) : usage();
    }
    if (cmd == "serve-demo") {
      if (argc > 5) return usage();
      std::uint64_t workers = 4, sessions = 32, devices = 6;
      if (argc > 2 && !parse_u64(argv[2], workers)) {
        return bad_argument("worker count", argv[2]);
      }
      if (argc > 3 && !parse_u64(argv[3], sessions)) {
        return bad_argument("session count", argv[3]);
      }
      if (argc > 4 && !parse_u64(argv[4], devices)) {
        return bad_argument("device count", argv[4]);
      }
      return cmd_serve_demo(workers, sessions, devices);
    }
    if (cmd == "gen-crps") {
      if (argc != 6) return usage();
      std::uint64_t seed = 0, count = 0, threads = 0;
      if (!parse_u64(argv[2], seed)) return bad_argument("chip-seed", argv[2]);
      if (!parse_u64(argv[3], count)) return bad_argument("count", argv[3]);
      if (!parse_u64(argv[4], threads)) {
        return bad_argument("thread count", argv[4]);
      }
      return cmd_gen_crps(seed, count, threads, argv[5]);
    }
    if (cmd.empty()) return usage();
    std::fprintf(stderr, "error: unknown subcommand '%s'\n", cmd.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
