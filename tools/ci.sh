#!/usr/bin/env bash
# Pre-merge gate: configure, build, and test the four supported trees.
#
#   build         plain (PUFATT_TRACE=ON by default)
#   build-asan    AddressSanitizer + UBSan   (-DPUFATT_SANITIZE=ON)
#   build-tsan    ThreadSanitizer           (-DPUFATT_TSAN=ON)
#   build-notrace tracing compiled out      (-DPUFATT_TRACE=OFF)
#
# Every tree runs the full ctest suite *including* the bench-labeled
# smokes (service_throughput_smoke, sim_engine_smoke, micro_perf_smoke,
# obs_overhead_smoke, net_throughput_smoke, attack_matrix_quick), so the
# stable-schema BENCH_*.json writers and the tracing overhead gates are
# exercised under each sanitizer too.  attack_matrix_quick runs the whole
# adversary-lab roster (bench/attack_matrix --quick) with shrunk budgets
# and relaxed accuracy gates, but still asserts the matrix is byte-stable
# across thread counts and invariant across the scalar/SoA/bit-sliced
# timing engines.  sim_engine_smoke additionally gates the bit-sliced
# engine (zero divergence vs scalar, engine-invariant CRP digests), and
# gen_crps_engine_parity re-derives the same contract at the CLI layer:
# gen-crps output must be byte-identical across --engine=scalar/batch/
# bitslice.  The TSan tree in particular covers the socket front end's
# cross-thread seams — event-loop wakeups, pool-completion posts back onto
# the loop thread, server/loadgen counter handoff (tests/net_test.cpp) —
# and the shard workers' concurrent use of one prewarmed device through
# the bit-sliced and scalar eval paths.
#
# The plain (and sanitizer) trees also run the cross-process tracing
# fixture trace_merge_pipeline: traced serve + traced loadgen as two OS
# processes over a Unix socket, one live fleet-stats poll mid-flight, then
# `trace-report <client> <server>` must join 100% of wire verdicts into
# linked timelines.  On build-notrace that fixture (and trace_pipeline) is
# not registered, and the span-dependent gtests in trace_merge_test.cpp
# GTEST_SKIP themselves — the wire-format and interop tests still run, so
# the no-trace tree keeps proving the traced/untraced byte compatibility.
#
# Each tree then reruns the torture-labeled seeded kill-and-recover loop
# (tests/store_torture.cpp) with a second seed: random fault points over
# an append workload, gating that follower promotion stays byte-identical
# to direct crash recovery under plain, ASan, TSan, and no-trace builds.
# Tune with TORTURE_ITERS / TORTURE_SEED.
#
# Usage: tools/ci.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
TORTURE_ITERS="${TORTURE_ITERS:-12}"
TORTURE_SEED="${TORTURE_SEED:-49537}"

run_tree() {
  local tree="$1"
  shift
  echo "=== ${tree}: configure ($*) ==="
  cmake -B "${tree}" -S . "$@"
  echo "=== ${tree}: build ==="
  cmake --build "${tree}" -j "${JOBS}"
  echo "=== ${tree}: ctest ==="
  # ${arr[@]+...} keeps `set -u` happy on bash < 4.4 when no args given.
  (cd "${tree}" && ctest --output-on-failure -j "${JOBS}" \
      ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"})
  echo "=== ${tree}: kill-and-recover torture (seed ${TORTURE_SEED}, ${TORTURE_ITERS} iters) ==="
  (cd "${tree}" && \
      STORE_TORTURE_ITERS="${TORTURE_ITERS}" \
      STORE_TORTURE_SEED="${TORTURE_SEED}" \
      ctest --output-on-failure -L torture)
}

CTEST_ARGS=("$@")

run_tree build
run_tree build-asan -DPUFATT_SANITIZE=ON
run_tree build-tsan -DPUFATT_TSAN=ON
# The store's span instrumentation compiles to no-ops here; this leg keeps
# the subsystem (and everything else) honest about not *requiring* tracing.
run_tree build-notrace -DPUFATT_TRACE=OFF

echo "=== ci.sh: all trees green ==="
