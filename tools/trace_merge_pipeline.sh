#!/usr/bin/env bash
# Cross-process distributed-tracing pipeline check (DESIGN.md §16): a
# traced serve and a traced loadgen run as two separate processes (their
# tracers have fully independent span-id spaces), join only through the
# wire trace context, and `trace-report <client> <server>` must stitch
# every wire verdict back into one linked timeline.
#
# Also exercises the live-telemetry path end to end: one fleet-stats
# poll over the same socket while the server is up, and the serve-side
# metrics JSONL ticker.
#
# Usage: trace_merge_pipeline.sh <pufatt-cli> <outdir>
set -euo pipefail

CLI="$1"
OUTDIR="$2"
SOCK="${OUTDIR}/trace_merge.sock"
CONNECTIONS=4
JOBS_PER_CONN=6
DEVICES=4
TOTAL_JOBS=$((CONNECTIONS * JOBS_PER_CONN))

mkdir -p "${OUTDIR}"
rm -f "${SOCK}" "${OUTDIR}"/trace_merge_{client,server}.jsonl \
      "${OUTDIR}/trace_merge_metrics.jsonl"

"${CLI}" serve "unix:${SOCK}" --workers=2 --devices=${DEVICES} \
    --max-jobs=${TOTAL_JOBS} \
    --trace-jsonl="${OUTDIR}/trace_merge_server.jsonl" \
    --metrics-jsonl="${OUTDIR}/trace_merge_metrics.jsonl" \
    --stats-interval-ms=25 &
SERVE_PID=$!
trap 'kill "${SERVE_PID}" 2>/dev/null || true' EXIT

# The server enrolls its fleet before binding; wait for the socket.
for _ in $(seq 1 200); do
  [ -S "${SOCK}" ] && break
  sleep 0.05
done
[ -S "${SOCK}" ] || { echo "server never bound ${SOCK}"; exit 1; }

# One live stats poll mid-flight: byte-stable JSON with all three sections.
STATS="$("${CLI}" fleet-stats "unix:${SOCK}")"
case "${STATS}" in
  *'"net"'*'"pool"'*'"registry"'*) ;;
  *) echo "fleet-stats snapshot malformed: ${STATS}"; exit 1 ;;
esac

"${CLI}" loadgen "unix:${SOCK}" --connections=${CONNECTIONS} \
    --jobs=${JOBS_PER_CONN} --devices=${DEVICES} \
    --trace-jsonl="${OUTDIR}/trace_merge_client.jsonl"

# --max-jobs makes the server drain and exit on its own after the last
# verdict; its exit status covers the export writes.
wait "${SERVE_PID}"
trap - EXIT

[ -s "${OUTDIR}/trace_merge_metrics.jsonl" ] || {
  echo "metrics ticker wrote nothing"; exit 1;
}

REPORT="$("${CLI}" trace-report "${OUTDIR}/trace_merge_client.jsonl" \
                                "${OUTDIR}/trace_merge_server.jsonl")"
echo "${REPORT}"

# The acceptance bar: every wire verdict reconstructs into a linked
# cross-process timeline (>= 99% required, and with known devices and no
# sampling this run must join all of them).
case "${REPORT}" in
  *"joined ${TOTAL_JOBS}/${TOTAL_JOBS} client roots (100.0%)"*) ;;
  *) echo "merge did not join all ${TOTAL_JOBS} verdicts"; exit 1 ;;
esac
